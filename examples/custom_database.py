"""Bring your own database: run the pipeline against a SQLite file you
built yourself, with your own train pairs for the dynamic few-shot library.

This is the real-world adoption path the paper emphasizes (no post-training
needed): point the system at a database, give it a handful of historical
question/SQL pairs, and ask questions.

Run with:  python examples/custom_database.py
"""

import sqlite3

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.build import Benchmark, BuiltDatabase
from repro.datasets.types import Example, ValueMention
from repro.llm.simulated import SimulatedLLM
from repro.schema.introspect import introspect_sqlite


def build_my_database() -> sqlite3.Connection:
    """A small observatory database, as a user might have on disk."""
    connection = sqlite3.connect(":memory:")
    connection.executescript(
        """
        CREATE TABLE Telescope (
            TelescopeID INTEGER PRIMARY KEY,
            Name TEXT,
            Site TEXT,
            MirrorM REAL
        );
        CREATE TABLE Observation (
            ObsID INTEGER PRIMARY KEY,
            TelescopeID INTEGER,
            Target TEXT,
            Night DATE,
            SeeingArcsec REAL,
            FOREIGN KEY (TelescopeID) REFERENCES Telescope(TelescopeID)
        );
        """
    )
    telescopes = [
        (1, "AURORA NORTH", "MAUNA SUMMIT", 8.2),
        (2, "AURORA SOUTH", "CERRO ALTO", 8.2),
        (3, "PATHFINDER", "CERRO ALTO", 3.6),
    ]
    observations = [
        (1, 1, "M31", "2023-09-14", 0.6),
        (2, 1, "VEGA", "2023-09-15", 0.8),
        (3, 2, "M31", "2023-09-15", 0.7),
        (4, 2, "SN2023A", "2023-10-02", 1.1),
        (5, 3, "M31", "2023-10-02", 1.9),
        (6, 3, "VEGA", "2023-10-03", None),
    ]
    connection.executemany("INSERT INTO Telescope VALUES (?,?,?,?)", telescopes)
    connection.executemany("INSERT INTO Observation VALUES (?,?,?,?,?)", observations)
    connection.commit()
    return connection


def main() -> None:
    connection = build_my_database()

    # 1. Introspect the live database into a schema model (what the
    #    Preprocessing stage would do against a BIRD database directory).
    schema = introspect_sqlite(connection, name="observatory")
    print("Introspected schema:")
    for table in schema.tables:
        print(f"  {table.name}: {', '.join(table.column_names)}")

    # 2. Wrap it as a one-database Benchmark with historical train pairs.
    train = [
        Example(
            question_id="obs:train:1",
            db_id="observatory",
            question="How many observations targeted M31?",
            gold_sql=(
                "SELECT COUNT(*) FROM Observation "
                "WHERE Observation.Target = 'M31'"
            ),
            template_id="obs:count_target",
            value_mentions=(ValueMention("M31", "M31", "Observation", "Target"),),
        ),
        Example(
            question_id="obs:train:2",
            db_id="observatory",
            question="Which telescopes are at Cerro Alto?",
            gold_sql=(
                "SELECT Telescope.Name FROM Telescope "
                "WHERE Telescope.Site = 'CERRO ALTO'"
            ),
            template_id="obs:list_site",
            value_mentions=(
                ValueMention("Cerro Alto", "CERRO ALTO", "Telescope", "Site"),
            ),
        ),
    ]
    benchmark = Benchmark(
        name="observatory",
        databases={
            "observatory": BuiltDatabase(schema=schema, connection=connection)
        },
        train=train,
    )

    # 3. Build the pipeline and ask a new question.  Note the dirty value:
    #    the question says "Mauna Summit" while the database stores
    #    'MAUNA SUMMIT' — values retrieval + agent alignment bridge it.
    pipeline = OpenSearchSQL(
        benchmark, SimulatedLLM(seed=0), PipelineConfig(n_candidates=7)
    )
    question = Example(
        question_id="obs:q:1",
        db_id="observatory",
        question="How many observations were made by telescopes at Mauna Summit?",
        # COUNT over a qualified column (not COUNT(*)) so the SQL-Like
        # skeleton keeps the Observation table in scope after joins are
        # stripped — the same convention the paper's Listing 5 uses.
        gold_sql=(
            "SELECT COUNT(T1.ObsID) FROM Observation AS T1 "
            "INNER JOIN Telescope AS T2 ON T1.TelescopeID = T2.TelescopeID "
            "WHERE T2.Site = 'MAUNA SUMMIT'"
        ),
        difficulty="moderate",
        template_id="obs:count_target",
        value_mentions=(
            ValueMention("Mauna Summit", "MAUNA SUMMIT", "Telescope", "Site"),
        ),
    )
    result = pipeline.answer(question)
    print(f"\nQ: {question.question}")
    print(f"-> {result.final_sql}")
    outcome = pipeline.executor("observatory").execute(result.final_sql)
    print(f"result rows: {outcome.rows}")

    extraction = result.extraction
    print("\nWhat extraction retrieved:")
    for value in extraction.values[:4]:
        print(f"  {value.render()}  (similarity {value.score:.2f})")


if __name__ == "__main__":
    main()
