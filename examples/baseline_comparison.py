"""Compare OpenSearch-SQL against the paper's baselines on one workload.

A fast version of the Table 2 bench: every baseline plus our pipeline on a
stratified mini-dev subset, printed as a leaderboard.

Run with:  python examples/baseline_comparison.py
"""

from repro.baselines.systems import all_baselines
from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.bird import build_bird_like, mini_dev
from repro.evaluation.report import format_table
from repro.evaluation.runner import evaluate_pipeline, evaluate_system
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O


def main() -> None:
    benchmark = build_bird_like()
    examples = mini_dev(benchmark, size=100)
    print(f"Evaluating on {len(examples)} stratified mini-dev questions...\n")

    rows = []
    for system in all_baselines(benchmark):
        report = evaluate_system(system, benchmark, examples)
        rows.append([system.name, report.ex, report.r_ves])
        print(f"  done: {system.name}")

    pipeline = OpenSearchSQL(
        benchmark, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=21)
    )
    ours = evaluate_pipeline(pipeline, examples, name="OpenSearch-SQL + GPT-4o")
    rows.append([ours.system, ours.ex, ours.r_ves])
    print(f"  done: {ours.system}\n")

    rows.sort(key=lambda row: row[1])
    print(format_table(["Method", "EX", "R-VES"], rows, title="Leaderboard"))


if __name__ == "__main__":
    main()
