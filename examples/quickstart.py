"""Quickstart: build the BIRD-like benchmark, run OpenSearch-SQL on a few
dev questions, and print what the pipeline produced.

Run with:  python examples/quickstart.py
"""

from repro import (
    GPT_4O,
    OpenSearchSQL,
    PipelineConfig,
    SimulatedLLM,
    build_bird_like,
    evaluate_pipeline,
)


def main() -> None:
    print("Building the BIRD-like benchmark (8 domains)...")
    benchmark = build_bird_like()
    stats = benchmark.statistics
    print(
        f"  {stats['databases']} databases, {stats['tables']} tables, "
        f"{stats['train']}/{stats['dev']}/{stats['test']} train/dev/test questions"
    )

    print("Preprocessing (value indexes + self-taught few-shot library)...")
    pipeline = OpenSearchSQL(
        benchmark,
        SimulatedLLM(GPT_4O, seed=0),
        PipelineConfig(n_candidates=9),
    )

    print("\nAnswering five dev questions:\n")
    for example in benchmark.dev[:5]:
        result = pipeline.answer(example)
        gold = pipeline.executor(example.db_id).execute(example.gold_sql)
        predicted = pipeline.executor(example.db_id).execute(result.final_sql)
        status = "CORRECT" if predicted.rows == gold.rows else "different result"
        print(f"Q: {example.question}")
        if example.evidence:
            print(f"   evidence: {example.evidence}")
        print(f"   -> {result.final_sql}")
        print(f"   [{status}]\n")

    print("Scoring 40 dev questions (EX / R-VES)...")
    report = evaluate_pipeline(pipeline, benchmark.dev[:40])
    print(f"  EX   : {report.ex:.1f}")
    print(f"  R-VES: {report.r_ves:.1f}")
    print(f"  by difficulty: {report.ex_by_difficulty()}")


if __name__ == "__main__":
    main()
