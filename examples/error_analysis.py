"""Failure analysis: run the pipeline over the dev split and break the
errors down by execution status, difficulty, trait and question family —
the view the paper's discussion sections reason from.

Run with:  python examples/error_analysis.py
"""

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.bird import build_bird_like, mini_dev
from repro.evaluation.analysis import analyze_failures
from repro.evaluation.runner import evaluate_pipeline
from repro.llm.simulated import SimulatedLLM


def main() -> None:
    benchmark = build_bird_like()
    examples = mini_dev(benchmark, size=150)
    pipeline = OpenSearchSQL(
        benchmark, SimulatedLLM(seed=0), PipelineConfig(n_candidates=15)
    )
    print(f"Evaluating {len(examples)} questions...")
    report = evaluate_pipeline(pipeline, examples)
    print(f"EX {report.ex:.1f}  (EX_G {report.ex_g:.1f}, EX_R {report.ex_r:.1f})\n")

    breakdown = analyze_failures(examples, report.scores)
    print(breakdown.render())

    print("\nFirst three failing questions:")
    failed = set(breakdown.failed_question_ids[:3])
    for example in examples:
        if example.question_id in failed:
            print(f"  [{example.difficulty}] {example.question}")


if __name__ == "__main__":
    main()
