"""Stage-by-stage walkthrough of the paper's running healthcare example.

Traces one challenging question (normal IgA level + date trick + DISTINCT)
through Extraction → Generation → Alignments → Refinement, printing what
each stage contributed — the reproduction of the paper's Figure 1 flow.

Run with:  python examples/healthcare_walkthrough.py
"""

from collections import Counter

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.bird import build_bird_like
from repro.llm.simulated import SimulatedLLM


def main() -> None:
    benchmark = build_bird_like()
    pipeline = OpenSearchSQL(
        benchmark, SimulatedLLM(seed=0), PipelineConfig(n_candidates=15)
    )

    pool = benchmark.dev + benchmark.train
    example = next(
        e for e in pool if e.template_id == "healthcare:normal_iga_after"
    )
    print("QUESTION :", example.question)
    print("EVIDENCE :", example.evidence)
    print("TRAITS   :", ", ".join(example.traits))
    print("GOLD     :", example.gold_sql)
    print()

    result = pipeline.answer(example)
    extraction = result.extraction

    print("=== Extraction " + "=" * 50)
    print("entities     :", extraction.entities[:6])
    print("values found :")
    for value in extraction.values[:5]:
        print(f"   {value.render()}  (similarity {value.score:.2f})")
    kept = [
        f"{t.name}({len(t.columns)} cols)" for t in extraction.schema.tables
    ]
    print("schema subset:", ", ".join(kept))
    print("SELECT hints :", extraction.select_hints[:3])
    print()

    print("=== Generation " + "=" * 50)
    print("first candidate SQL out of generation:")
    print("   #SQL:", result.generation_sql)
    print()

    print("=== Alignments + Refinement " + "=" * 37)
    statuses = Counter(
        c.outcome.status.value for c in result.refinement.candidates
    )
    print("candidate execution statuses:", dict(statuses))
    aligned_changed = sum(
        c.aligned_sql != c.raw_sql for c in result.refinement.candidates
    )
    corrected = sum(c.corrected for c in result.refinement.candidates)
    print(f"alignment rewrote {aligned_changed} candidates, "
          f"correction fixed {corrected}")
    print()

    print("=== Self-Consistency & Vote " + "=" * 37)
    print("FINAL    :", result.final_sql)
    executor = pipeline.executor(example.db_id)
    final = executor.execute(result.final_sql)
    gold = executor.execute(example.gold_sql)
    print("final rows:", final.rows[:3], " gold rows:", gold.rows[:3])
    print("verdict   :", "CORRECT" if final.rows == gold.rows else "WRONG")
    print()

    print("=== Cost accounting (Table 6 view) " + "=" * 30)
    for stage, summary in result.cost.summary().items():
        print(
            f"   {stage:12s} {summary['tokens']:6d} tokens, "
            f"{summary['calls']} calls, {summary['seconds']:.2f}s"
        )


if __name__ == "__main__":
    main()
