"""Table 2 — BIRD main results: EX (dev/test) and R-VES for every baseline
and for OpenSearch-SQL (with and without Self-Consistency & Vote).

Paper rows (dev EX): GPT-4 46.35 < DIN-SQL 50.72 < DAIL-SQL 54.76 <
MAC-SQL 57.56 < MCS-SQL 63.36 < CHESS 65.00 < Distillery 67.21 <
OpenSearch-SQL+GPT-4o 69.3 (67.8 without SC&Vote; +GPT-4 66.62).
Absolute numbers differ on our synthetic substrate; the bench asserts the
*shape*: the ordering of method groups and OpenSearch-SQL finishing on top.
"""

from _helpers import run_pipeline
from repro.baselines.systems import all_baselines
from repro.core.config import PipelineConfig
from repro.evaluation.report import format_table
from repro.evaluation.runner import evaluate_system
from repro.llm.skills import GPT_4, GPT_4O


def _compute(bird):
    dev, test = bird.dev, bird.test
    rows = []
    scores = {}
    for system in all_baselines(bird):
        dev_report = evaluate_system(system, bird, dev)
        test_report = evaluate_system(system, bird, test)
        rows.append(
            [system.name, dev_report.ex, test_report.ex, test_report.r_ves]
        )
        scores[system.name] = dev_report.ex

    ours = [
        ("OpenSearch-SQL + GPT-4", PipelineConfig(n_candidates=21), GPT_4),
        (
            "OpenSearch-SQL + GPT-4o w/o SC&Vote",
            PipelineConfig(use_self_consistency=False),
            GPT_4O,
        ),
        ("OpenSearch-SQL + GPT-4o", PipelineConfig(n_candidates=21), GPT_4O),
    ]
    for name, config, skill in ours:
        dev_report = run_pipeline(bird, dev, config, skill=skill, name=name)
        test_report = run_pipeline(bird, test, config, skill=skill, name=name)
        rows.append([name, dev_report.ex, test_report.ex, test_report.r_ves])
        scores[name] = dev_report.ex
    return rows, scores


def test_table2_bird_main_results(benchmark, bird):
    rows, scores = benchmark.pedantic(_compute, args=(bird,), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["Method", "EX dev", "EX test", "R-VES test"],
            rows,
            title="Table 2: EX and R-VES on the BIRD-like dev and test sets",
        )
    )

    # Shape assertions (who wins), with small-sample slack.
    slack = 4.0
    assert scores["GPT-4"] <= scores["MCS-SQL + GPT-4"] + slack
    assert scores["GPT-4"] <= scores["Distillery + GPT-4o (ft)"]
    assert scores["DIN-SQL + GPT-4"] <= scores["MCS-SQL + GPT-4"] + slack
    assert scores["MAC-SQL + GPT-4"] <= scores["Distillery + GPT-4o (ft)"] + slack
    assert scores["MCS-SQL + GPT-4"] <= scores["OpenSearch-SQL + GPT-4o"] + slack
    assert scores["CHESS"] <= scores["OpenSearch-SQL + GPT-4o"] + slack

    # OpenSearch-SQL leads the board (the paper's headline claim).
    best_baseline = max(
        v for k, v in scores.items() if not k.startswith("OpenSearch")
    )
    assert scores["OpenSearch-SQL + GPT-4o"] >= best_baseline - slack

    # SC&Vote adds on top of the single-SQL configuration.
    assert (
        scores["OpenSearch-SQL + GPT-4o w/o SC&Vote"]
        <= scores["OpenSearch-SQL + GPT-4o"] + 1.0
    )
