"""Live-mutation certification: drift at every request boundary.

Not a paper table: this bench certifies the live-data layer's
robustness contract.  A routed serving run is interleaved with seeded
catalog mutations (value churn, added/dropped columns, renamed tables)
at request boundaries — after each mutation the engine's caches are
invalidated and the crash-safe :class:`~repro.livedata.reindex.
ReindexWorker` re-embeds the mutated database's artifacts — then
simulated SIGKILLs are enumerated at every reindex-checkpoint append
boundary (:func:`~repro.livedata.driftfuzz.run_drift_fuzz`).  The
certification asserts, for the whole campaign:

1. **zero stale serves** — no answer completes against a catalog that
   moved under it undetected (``stale_served`` ends at exactly 0; the
   epoch guard turns every such race into a typed
   ``StaleCatalogError`` + one bounded retry);
2. **zero double-reindexes** — the checkpoint carries exactly one
   ``done`` record per ``(db_id, epoch)``; a replayed bump is a typed
   ``DoubleReindexError``, never a second billed pass;
3. **byte-identical kill/resume** — a reindex worker killed at any
   checkpoint append boundary (clean or torn mid-line) resumes to a
   checkpoint file byte-identical to an uninterrupted reindex;
4. **determinism** — two campaigns with the same seed produce
   byte-identical outcome documents (CI also diffs two CLI
   invocations of ``repro drift-fuzz --out``).

Uses the five-database ``cluster-smoke`` profile.  Sizes shrink under
``REPRO_SERVING_SMOKE=1`` for CI.
"""

import json
import os

from repro.livedata.driftfuzz import DriftFuzzConfig, run_drift_fuzz

SMOKE = bool(int(os.environ.get("REPRO_SERVING_SMOKE", "0")))
REQUESTS = 6 if SMOKE else 10
DISTINCT = 4 if SMOKE else 5
MUTATE_EVERY = 2 if SMOKE else 1
LIMIT = 4 if SMOKE else None


def _config():
    return DriftFuzzConfig(
        requests=REQUESTS,
        distinct=DISTINCT,
        seed=0,
        candidates=3,
        routing=True,
        mutate_every=MUTATE_EVERY,
        limit=LIMIT,
    )


def _compute(tmp_dir):
    first = run_drift_fuzz(_config(), tmp_dir / "run1")
    second = run_drift_fuzz(_config(), tmp_dir / "run2")
    return {"first": first, "second": second}


def test_drift_robustness_certification(benchmark, tmp_path):
    runs = benchmark.pedantic(_compute, args=(tmp_path,), rounds=1, iterations=1)
    result = runs["first"]

    # The campaign actually drifted: mutations landed, every one was
    # reindexed, and the kill enumeration covered both cut shapes.
    assert result.mutations, "no mutations applied"
    assert len(result.reindexes) == len(result.mutations)
    kinds = {o.kind for o in result.outcomes}
    assert kinds >= {"clean", "torn"}, kinds
    assert result.cut_points > 0

    # 1. Zero stale serves — and every stale race that was detected got
    # retried rather than served.
    assert result.stale_serves == 0, result.livedata
    assert result.livedata.get("stale_retried", 0) <= result.livedata.get(
        "stale_detected", 0
    )

    # Journal commits carry the epoch stamps the mutations produced, so
    # `repro recover` on this journal would refuse cross-epoch replay.
    assert result.epoch_stamps, "no schema_epoch stamps journaled"

    # 2. Zero double-reindexes.
    assert result.duplicate_done == 0

    # 3. Every simulated SIGKILL resumed byte-identically (or refused a
    # completed checkpoint with the typed already-done outcome).
    by_class: dict = {}
    for outcome in result.outcomes:
        by_class.setdefault(outcome.outcome, []).append(outcome.cut)
    assert "diverged" not in by_class, by_class["diverged"]
    assert "traceback" not in by_class, by_class["traceback"]
    assert by_class.get("already-done"), "full-length cut never enumerated"
    assert result.ok, [o.to_dict() for o in result.outcomes if not o.ok]

    # 4. Same seed, same world: the full outcome documents are
    # byte-identical across two independent campaigns.
    first_doc = json.dumps(result.to_dict(), sort_keys=True)
    second_doc = json.dumps(runs["second"].to_dict(), sort_keys=True)
    assert first_doc == second_doc

    summary = result.summary()
    print()
    print(
        f"campaign    : {summary['requests']} requests, "
        f"{summary['mutations']} mutations, {summary['reindexes']} reindexes"
    )
    print(
        f"kill cuts   : {summary['cuts']} over "
        f"{summary['append_boundaries']} append boundaries "
        f"({json.dumps(summary['outcomes'], sort_keys=True)})"
    )
    print(
        f"certified   : stale_serves=0, double_reindexes=0, "
        f"catchup {summary['catchup_seconds']}s (virtual)"
    )
