"""Table 6 — execution cost: per-module time and tokens.

Paper reports per-question ranges: Extraction 4-9s / 5000-10000 tokens,
Generation 5-15s / 4000-8000 tokens, Refinement 0-25s / 0-5000 tokens,
Alignments 0-15s / 500-2000 tokens, whole pipeline 7-60s / 9000-25000
tokens.  Our simulated decode latencies reproduce the *relative* cost
structure: generation dominates tokens (beam search), retrieval and the
vote are nearly free, alignments only fire when needed.
"""

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.evaluation.report import format_table
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O


def _compute(bird, bird_mini):
    pipeline = OpenSearchSQL(
        bird, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=21)
    )
    totals = {}
    for example in bird_mini:
        result = pipeline.answer(example)
        for stage, cost in result.cost.stages.items():
            agg = totals.setdefault(
                stage, {"seconds": 0.0, "tokens": 0, "calls": 0}
            )
            agg["seconds"] += cost.total_seconds
            agg["tokens"] += cost.total_tokens
            agg["calls"] += cost.calls
    n = len(bird_mini)
    rows = []
    for stage in ("extraction", "generation", "alignments", "refinement"):
        agg = totals.get(stage, {"seconds": 0.0, "tokens": 0, "calls": 0})
        rows.append(
            [stage, agg["seconds"] / n, agg["tokens"] / n, agg["calls"] / n]
        )
    total_seconds = sum(t["seconds"] for t in totals.values()) / n
    total_tokens = sum(t["tokens"] for t in totals.values()) / n
    rows.append(["pipeline", total_seconds, total_tokens, sum(
        t["calls"] for t in totals.values()
    ) / n])
    return rows, totals, n


def test_table6_execution_cost(benchmark, bird, bird_mini):
    rows, totals, n = benchmark.pedantic(
        _compute, args=(bird, bird_mini), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["Modular", "Time(s)/q", "Tokens/q", "LLM calls/q"],
            rows,
            title=(
                "Table 6: per-question execution cost "
                "(paper: Extraction 4-9s/5-10k tok, Generation 5-15s/4-8k tok, "
                "Refinement 0-25s/0-5k tok, Pipeline 7-60s/9-25k tok)"
            ),
        )
    )

    per_q = {row[0]: row for row in rows}

    # Generation dominates completion tokens (beam search over 21 candidates).
    assert per_q["generation"][2] > per_q["refinement"][2]

    # Extraction carries the big schema prompt: thousands of tokens.
    assert per_q["extraction"][2] > 500

    # Refinement only pays when something needs correcting: fewer calls
    # than generation+extraction.
    assert per_q["refinement"][3] < per_q["extraction"][3] + per_q["generation"][3]

    # Whole pipeline lands in a plausible per-question band (simulated
    # decode seconds; the paper reports 7-60s).
    assert 1.0 < per_q["pipeline"][1] < 120.0
    assert 1_000 < per_q["pipeline"][2] < 60_000
