"""Real-SIGKILL reindex resume check (the `drift-robustness` CI job).

`bench_drift.py` certifies kill/resume by *simulating* SIGKILL —
truncating the checkpoint at every append boundary in-process.  This
script closes the remaining gap with one real kill across a real
process boundary:

1. build the uninterrupted reference checkpoint for a seeded mutation;
2. spawn a child process that replays the same seeded world but whose
   checkpoint writer SIGKILLs the process after N appends — a genuine
   power-cut mid-reindex, kernel-level, nothing flushed politely;
3. resume in this process with a fresh ``ReindexWorker`` over the
   child's remains (a *different* process recomputing from the same
   seeds — cross-process determinism is part of the claim);
4. assert the resumed checkpoint is byte-identical to the reference and
   passes the journal v2 integrity scan (``repro fsck``) clean.

Exit 0 and a ``CERTIFIED`` line on success; any divergence asserts.
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

KILL_AFTER_APPENDS = 3
SEED = 0


def build_world():
    from repro.core.config import PipelineConfig
    from repro.core.pipeline import OpenSearchSQL
    from repro.datasets.build import build_benchmark
    from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
    from repro.datasets.domains.hockey import DOMAIN as HOCKEY
    from repro.livedata.epoch import EpochRegistry
    from repro.livedata.mutations import MutationDriver
    from repro.llm.simulated import SimulatedLLM
    from repro.llm.skills import GPT_4O

    benchmark = build_benchmark(
        name="tiny",
        domains=[HEALTHCARE, HOCKEY],
        per_template_train=2,
        per_template_dev=1,
        per_template_test=1,
        seed=3,
    )
    pipeline = OpenSearchSQL(
        benchmark, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=3)
    )
    registry = EpochRegistry()
    driver = MutationDriver(benchmark, registry, seed=SEED)
    event = driver.mutate()
    return pipeline, registry, event


def reindex(checkpoint: Path, opener=open):
    from repro.livedata.reindex import ReindexWorker

    pipeline, registry, event = build_world()
    worker = ReindexWorker(pipeline, checkpoint, opener=opener, registry=registry)
    report = worker.reindex(event.db_id, epoch=event.epoch)
    worker.close()
    return report


def killing_opener(kill_after: int):
    """A checkpoint writer that SIGKILLs this process mid-reindex."""
    appends = 0

    def opener(path, mode="r", **kwargs):
        handle = open(path, mode, **kwargs)
        if "a" not in mode and "w" not in mode:
            return handle
        real_write = handle.write

        def write(data):
            nonlocal appends
            count = real_write(data)
            handle.flush()
            os.fsync(handle.fileno())
            appends += 1
            if appends >= kill_after:
                os.kill(os.getpid(), signal.SIGKILL)
            return count

        handle.write = write
        return handle

    return opener


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "child":
        # never returns: the writer SIGKILLs the process mid-checkpoint
        reindex(Path(sys.argv[2]), opener=killing_opener(KILL_AFTER_APPENDS))
        raise AssertionError("child survived its own SIGKILL")

    with tempfile.TemporaryDirectory(prefix="drift-sigkill-") as tmp:
        reference = Path(tmp) / "reference.jsonl"
        killed = Path(tmp) / "killed.jsonl"
        reindex(reference)
        ref_bytes = reference.read_bytes()

        child = subprocess.run(
            [sys.executable, __file__, "child", str(killed)],
            env=dict(os.environ),
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert child.returncode == -signal.SIGKILL, (
            f"child exited {child.returncode}, expected SIGKILL\n"
            f"{child.stdout}\n{child.stderr}"
        )
        cut = killed.read_bytes()
        assert cut, "the kill landed before the first append"
        assert cut != ref_bytes, "the kill landed after the checkpoint finished"
        assert ref_bytes.startswith(cut), "killed checkpoint is not a prefix"

        report = reindex(killed)  # fresh process-state resume
        assert killed.read_bytes() == ref_bytes, "resume diverged from reference"

        from repro.cli import main as repro_main

        fsck = repro_main(["fsck", "--journal", str(killed)], out=sys.stdout)
        assert fsck == 0, "fsck found damage in the resumed checkpoint"
        print(
            f"drift-sigkill: killed after {KILL_AFTER_APPENDS} appends "
            f"({len(cut)}/{len(ref_bytes)} bytes survived), resumed "
            f"{report.resumed_units} recorded units to a byte-identical "
            f"checkpoint, fsck clean — CERTIFIED"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
