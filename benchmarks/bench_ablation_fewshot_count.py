"""Ablation bench — number of few-shot examples N ∈ {0, 3, 5, 7, 9}.

The paper's implementation details (§4.1) state the few-shot count was
selected from this grid.  The mechanism: more shots raise the chance that
a same-family exemplar is in the prompt (MQs retrieval), which is where
most of the few-shot benefit comes from; returns diminish after ~5.
"""

from _helpers import run_pipeline
from repro.core.config import PipelineConfig
from repro.evaluation.report import format_table

COUNTS = (0, 3, 5, 7, 9)


def _compute(bird, bird_mini):
    curve = {}
    for k in COUNTS:
        config = PipelineConfig(
            n_candidates=21,
            n_few_shot=max(k, 1),
            fewshot_style="none" if k == 0 else "query_cot_sql",
        )
        curve[k] = run_pipeline(bird, bird_mini, config)
    return curve


def test_fewshot_count_sweep(benchmark, bird, bird_mini):
    curve = benchmark.pedantic(
        _compute, args=(bird, bird_mini), rounds=1, iterations=1
    )
    rows = [[f"N={k}", curve[k].ex_g, curve[k].ex] for k in COUNTS]
    print()
    print(
        format_table(
            ["Few-shot count", "EX_G", "EX"],
            rows,
            title="Ablation: number of dynamic few-shot examples (paper grid §4.1)",
        )
    )

    slack = 2.0
    # Zero shots is the weakest configuration.
    assert curve[0].ex_g <= min(curve[k].ex_g for k in COUNTS[1:]) + 1
    # The grid's interior (the paper picked 5) is at or near the optimum.
    best = max(curve[k].ex for k in COUNTS)
    assert curve[5].ex >= best - slack
    # Returns flatten: 9 shots are not materially better than 5.
    assert curve[9].ex <= curve[5].ex + slack
