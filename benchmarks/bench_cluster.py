"""Sharded-cluster certification: supervision, conservation, recovery.

Not a paper table: this bench certifies the PR-6 cluster properties on a
fixed seed, with real spawned worker processes.

**Supervised kill/restart.**  A Zipf-skewed workload is served twice —
once by a single in-process engine (the reference) and once by a 3-shard
:class:`~repro.serving.ShardCoordinator` whose busiest worker is
SIGKILLed after its second served result.  The run certifies:

1. **completion** — every request completes despite the kill; the
   supervisor detects the death and restarts the worker within its
   budget;
2. **conservation** — accept/commit accounting across the shard journal
   segments shows every workload seq committed exactly once
   (:class:`~repro.serving.ShardedJournalView` raises on double-serve);
3. **byte-identical recovery** — ``recover_run`` over the merged
   segment directory produces a deterministic report byte-identical to
   the undisturbed single-process run of the same seed;
4. **typed sheds** — re-running with ``restart_budget=0`` on a single
   shard turns the kill into a permanent death: in-flight requests shed
   with :class:`~repro.serving.ShardUnavailableError` (no hangs), and
   directory recovery still completes the run byte-identically.

Uses the five-database ``cluster-smoke`` profile so worker spawns stay
sub-second.  Sizes shrink under ``REPRO_SERVING_SMOKE=1`` for CI.
"""

import json
import os

from repro.serving import (
    ClusterConfig,
    ServingEngine,
    ServingJournal,
    ShardCoordinator,
    ShardUnavailableError,
    ShardedJournalView,
    assemble_report,
    recover_run,
    zipf_workload,
)
from repro.serving.cluster.config import build_worker_pipeline, resolve_benchmark

SMOKE = bool(int(os.environ.get("REPRO_SERVING_SMOKE", "0")))
SEED = 7
ZIPF_SKEW = 1.1
CANDIDATES = 3
SHARDS = 3
KILL_WORKER = 1  # owns the most traffic on this seed (verified below)
KILL_AFTER = 2
REQUESTS = 16 if SMOKE else 28


def _workload(benchmark):
    """One example per database, Zipf-sampled — spans multiple shards."""
    pool, seen = [], set()
    for example in benchmark.split("dev"):
        if example.db_id not in seen:
            seen.add(example.db_id)
            pool.append(example)
    return zipf_workload(pool, requests=REQUESTS, skew=ZIPF_SKEW, seed=SEED)


def _config(tmp_dir, name, **overrides):
    defaults = dict(
        shards=SHARDS,
        benchmark="cluster-smoke",
        candidates=CANDIDATES,
        seed=0,
        journal_dir=str(tmp_dir / name),
        backoff_base=0.05,
        restart_budget=1,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _reference_doc(tmp_dir, workload):
    config = _config(tmp_dir, "reference", shards=1)
    _, pipeline = build_worker_pipeline(config)
    journal = ServingJournal(tmp_dir / "reference" / "single.jsonl")
    with ServingEngine(
        pipeline, workers=1, result_cache_size=512, journal=journal
    ) as engine:
        engine.run(workload)
    _, clean = build_worker_pipeline(config)
    outcomes = recover_run(
        ServingJournal(tmp_dir / "reference" / "single.jsonl"), clean, workload
    )
    report = assemble_report(outcomes, workload, clean)
    return json.dumps(report.deterministic_dict(), sort_keys=True)


def _recovered_doc(config, workload):
    view = ShardedJournalView(config.journal_dir)
    _, clean = build_worker_pipeline(config)
    outcomes = recover_run(view, clean, workload)
    report = assemble_report(outcomes, workload, clean)
    return view, json.dumps(report.deterministic_dict(), sort_keys=True)


def _kill_run(tmp_dir, workload):
    """3-shard run with the busiest worker SIGKILLed mid-run."""
    config = _config(tmp_dir, "killed")
    killed = []

    def on_result(worker_id, results):
        if worker_id == KILL_WORKER and results >= KILL_AFTER and not killed:
            killed.append(worker_id)
            coordinator.kill_worker(worker_id)

    coordinator = ShardCoordinator(config, on_result=on_result)
    with coordinator:
        results = coordinator.run(workload)
        stats = coordinator.stats()
    return {
        "config": config,
        "results": results,
        "stats": stats.to_dict(),
        "killed": killed,
    }


def _shed_run(tmp_dir, workload):
    """Single shard, zero restart budget: the kill is permanent."""
    config = _config(
        tmp_dir, "shed", shards=1, restart_budget=0, request_timeout=60.0
    )
    killed = []

    def on_result(worker_id, results):
        if results >= KILL_AFTER and not killed:
            killed.append(worker_id)
            coordinator.kill_worker(worker_id)

    coordinator = ShardCoordinator(config, on_result=on_result)
    coordinator.start()
    futures = [
        coordinator.submit(example, seq=seq)
        for seq, example in enumerate(workload)
    ]
    served = sheds = 0
    for future in futures:
        try:
            future.result(timeout=60)
            served += 1
        except ShardUnavailableError:
            sheds += 1
    stats = coordinator.stats()
    coordinator.shutdown()
    return {
        "config": config,
        "served": served,
        "sheds": sheds,
        "stats": stats.to_dict(),
    }


def _compute(tmp_dir):
    benchmark = resolve_benchmark("cluster-smoke")
    workload = _workload(benchmark)
    return {
        "workload": workload,
        "reference": _reference_doc(tmp_dir, workload),
        "killed": _kill_run(tmp_dir, workload),
        "shed": _shed_run(tmp_dir, workload),
    }


def test_cluster_certification(benchmark, tmp_path):
    runs = benchmark.pedantic(_compute, args=(tmp_path,), rounds=1, iterations=1)
    workload = runs["workload"]

    # 1. Completion: the kill fired, the worker restarted, nothing lost.
    killed = runs["killed"]
    stats = killed["stats"]
    assert killed["killed"] == [KILL_WORKER], "the kill never fired"
    assert stats["deaths"] >= 1
    assert stats["restarts"] >= 1
    assert all(r is not None for r in killed["results"])
    assert stats["completed"] == len(workload)

    # 2. Conservation: every seq committed exactly once across segments
    # (the view raises DoubleServeError otherwise), accepts >= commits.
    view, recovered = _recovered_doc(killed["config"], workload)
    assert view.committed_seqs() == list(range(len(workload)))
    by_shard = view.committed_by_shard()
    assert sum(by_shard.values()) == len(workload)
    active = [shard for shard, count in by_shard.items() if count]
    assert len(active) >= 2, by_shard

    # 3. Byte-identical recovery vs the undisturbed single-process run.
    assert recovered == runs["reference"]

    # 4. Typed sheds under budget exhaustion — then recovery completes.
    shed = runs["shed"]
    assert shed["served"] >= 1
    assert shed["sheds"] >= 1
    assert shed["served"] + shed["sheds"] == len(workload)
    assert shed["stats"]["shed_unavailable"] == shed["sheds"]
    assert shed["stats"]["rebalances"] == 1
    _, shed_recovered = _recovered_doc(shed["config"], workload)
    assert shed_recovered == runs["reference"]

    print()
    print(
        f"cluster      : {SHARDS} shards, {len(workload)} requests, "
        f"worker {KILL_WORKER} SIGKILLed after {KILL_AFTER} results"
    )
    print(
        f"supervision  : {stats['deaths']} deaths, {stats['restarts']} "
        f"restarts, {stats['reroutes']} reroutes"
    )
    print(f"conservation : commits by shard {json.dumps(by_shard, sort_keys=True)}")
    print(
        f"sheds        : {shed['sheds']} typed ShardUnavailableError, "
        f"{shed['served']} served pre-kill"
    )
    print("recovery     : merged report byte-identical to single-process run")
