"""Chaos certification — the serving path under combined LLM + DB faults.

Not a paper table: this bench certifies the robustness properties of the
serving path (deadlines, database chaos, hedged execution) on a fixed
seed.  A Zipf-skewed workload is served twice — once fault-free, once
with chaos injected at ``RATE`` into the LLM transport and/or the SQL
executors (``CHAOS_MODE`` = ``llm`` | ``db`` | ``combined``) — and the
run certifies:

1. **containment** — every request completes with a PipelineResult
   (zero hangs, zero unhandled exceptions, ``failed == 0``);
2. **typed degradation** — every deadline-exceeded request carries a
   ``DEADLINE_EXCEEDED`` degradation event, and under a deliberately
   tight budget *all* requests degrade this way without a single raise;
3. **EX retention** — scored against gold with *clean* executors, chaos
   EX stays >= 80% of the fault-free EX (resilient transport + hedging
   + majority voting absorb the faults);
4. **hedging** — the hedge recovers at least half of the slow-query
   faults observed on primary executions;
5. **conserved accounting** — ``submitted == admitted + shed +
   rejected_*`` and ``admitted == completed + failed``, with the
   deadline counter reconciling against per-result flags, monotone in
   budget tightness;
6. **determinism** — two identical chaos runs produce identical final
   SQLs and identical fault logs.

The chaos engines run ``workers=1``: the LLM fault injector draws from
a sequential RNG, so thread scheduling would otherwise reorder its
fault sequence (the DB injector hashes ``(seed, sql, attempt)`` and is
schedule-independent; clean-run parallel determinism is certified by
``bench_serving.py``).

Sizes shrink under ``REPRO_SERVING_SMOKE=1`` so CI can run one mode per
matrix leg as a smoke test.
"""

import os

from dataclasses import replace

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.evaluation.metrics import execution_accuracy, score_example
from repro.evaluation.report import format_table
from repro.execution.chaos import DbFaultPlan, FaultInjectingExecutor
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.reliability import FaultInjectingLLM, FaultPlan, ResilientLLM
from repro.reliability.degradation import DegradationKind
from repro.reliability.stats import ReliabilityStats
from repro.serving import ServingEngine, zipf_workload

SMOKE = bool(int(os.environ.get("REPRO_SERVING_SMOKE", "0")))
#: which fault channels to open: "llm" | "db" | "combined"
MODE = os.environ.get("CHAOS_MODE", "combined")
RATE = 0.3
SEED = 0
ZIPF_SKEW = 1.2
LOAD = (18, 6) if SMOKE else (48, 12)
TIGHT_LOAD = (8, 4) if SMOKE else (12, 6)
#: generous virtual budget (seconds) — chaos alone should rarely trip it
DEADLINE = 900.0
#: tiny virtual budget — every request must degrade, none may raise
TIGHT_DEADLINE = 1e-6
HEDGE_THRESHOLD = 2.0  # below DbFaultPlan.slow_seconds (4.0)

#: The DB injector draws deterministically per distinct statement, and the
#: Zipf workload dedupes to only ~100 distinct statements — too few for
#: the default 7.5% slow band to reliably fire.  Doubling it gives the
#: hedging certification a meaningful sample without touching the other
#: fault kinds' draws (the slow band sits after them in draw order) and
#: without degrading the hedge attempts so often that races become coin
#: flips.
DB_PLAN = replace(DbFaultPlan.chaos(RATE), slow_query=0.15)

LLM_FAULTS = MODE in ("llm", "combined")
DB_FAULTS = MODE in ("db", "combined")


def _pipeline(bird):
    llm = SimulatedLLM(GPT_4O, seed=SEED)
    return OpenSearchSQL(bird, llm, PipelineConfig(n_candidates=11))


def _arm(pipeline):
    """Open the MODE's fault channels on a fresh pipeline.

    Returns the injectors' stats objects (None for closed channels).
    Must run before the engine is built so the engine's hedge wrapper
    composes *outside* the fault injector and races real faults.
    """
    llm_stats = None
    db_stats = None
    if LLM_FAULTS:
        injector = FaultInjectingLLM(
            pipeline.llm, FaultPlan.chaos(RATE), seed=SEED
        )
        pipeline.rebind_llm(ResilientLLM(injector, seed=SEED))
        llm_stats = injector.stats
    if DB_FAULTS:
        db_stats = ReliabilityStats()
        pipeline.set_executor_wrapper(
            lambda executor, db_id: FaultInjectingExecutor(
                executor, DB_PLAN, seed=SEED, stats=db_stats
            )
        )
    return llm_stats, db_stats


def _serve(bird, load, chaos, deadline):
    pipeline = _pipeline(bird)
    llm_stats, db_stats = _arm(pipeline) if chaos else (None, None)
    with ServingEngine(
        pipeline,
        workers=1,
        queue_capacity=len(load),
        deadline_seconds=deadline,
        hedge_threshold=HEDGE_THRESHOLD if (chaos and DB_FAULTS) else None,
    ) as engine:
        results = engine.run(load)
        stats = engine.stats()
    return {
        "results": results,
        "stats": stats,
        "llm": llm_stats,
        "db": db_stats,
        "hedge": engine.hedge_stats,
    }


def _score(bird, load, results):
    """EX over the served workload, judged with *clean* executors.

    The pipeline's own executors are fault-injected, so scoring must
    build untouched ones per database.
    """
    executors = {}
    scores = []
    for example, result in zip(load, results):
        executor = executors.get(example.db_id)
        if executor is None:
            executor = bird.database(example.db_id).executor()
            executors[example.db_id] = executor
        sql = result.final_sql if result is not None else None
        scores.append(score_example(example, sql, executor))
    return execution_accuracy(scores)


def _compute(bird):
    requests, distinct = LOAD
    load = zipf_workload(bird.dev[:distinct], requests, skew=ZIPF_SKEW, seed=SEED)

    runs = {
        "clean": _serve(bird, load, chaos=False, deadline=DEADLINE),
        "chaos": _serve(bird, load, chaos=True, deadline=DEADLINE),
        "replay": _serve(bird, load, chaos=True, deadline=DEADLINE),
    }
    runs["clean"]["ex"] = _score(bird, load, runs["clean"]["results"])
    runs["chaos"]["ex"] = _score(bird, load, runs["chaos"]["results"])

    # Tight-budget pass: every request must degrade, none may raise.
    requests, distinct = TIGHT_LOAD
    tight_load = zipf_workload(
        bird.dev[:distinct], requests, skew=ZIPF_SKEW, seed=SEED
    )
    runs["tight"] = _serve(bird, tight_load, chaos=True, deadline=TIGHT_DEADLINE)
    runs["load"], runs["tight_load"] = load, tight_load
    return runs


def _conserved(stats):
    assert stats.submitted == (
        stats.admitted + stats.shed + stats.rejected_open
        + stats.rejected_budget + stats.rejected_draining
    ), stats.to_dict()
    assert stats.admitted == stats.completed + stats.failed, stats.to_dict()


def test_chaos_certification(benchmark, bird):
    runs = benchmark.pedantic(_compute, args=(bird,), rounds=1, iterations=1)

    clean, chaos, replay, tight = (
        runs["clean"], runs["chaos"], runs["replay"], runs["tight"]
    )
    retention = chaos["ex"] / clean["ex"] if clean["ex"] else 0.0
    llm_faults = len(chaos["llm"].faults) if chaos["llm"] else 0
    db_faults = len(chaos["db"].faults) if chaos["db"] else 0

    rows = [
        ["clean", clean["ex"], "-", 0, 0, clean["stats"].deadline_exceeded],
        [f"chaos ({MODE})", chaos["ex"], f"{retention:.0%}",
         llm_faults, db_faults, chaos["stats"].deadline_exceeded],
    ]
    print()
    print(format_table(
        ["Run", "EX", "retention", "llm faults", "db faults", "deadlines"],
        rows,
        title=f"Chaos serving: EX retention at {RATE:.0%} fault rate",
    ))
    print(chaos["stats"].format())
    if chaos["db"] is not None:
        print(f"db fault mix : {chaos['db'].fault_counts()}")

    # 1. Containment: every request completed, nothing hung or raised.
    for run in (clean, chaos, replay, tight):
        assert all(r is not None for r in run["results"])
        assert run["stats"].failed == 0
        assert run["stats"].completed == len(run["results"])
    if LLM_FAULTS:
        assert llm_faults > 0
    if DB_FAULTS:
        assert db_faults > 0

    # 2. Typed degradation: the deadline counter reconciles against the
    # per-result flags, and each flagged result explains itself with a
    # DEADLINE_EXCEEDED event.  Under the tight budget that is everyone.
    for run in (chaos, tight):
        flagged = [r for r in run["results"] if r.deadline_exceeded]
        assert run["stats"].deadline_exceeded == len(flagged)
        for result in flagged:
            assert any(
                e.kind is DegradationKind.DEADLINE_EXCEEDED
                for e in result.degradations
            )
    assert tight["stats"].deadline_exceeded == len(runs["tight_load"])

    # 3. EX retention: chaos keeps >= 80% of the fault-free accuracy.
    assert retention >= 0.8, (chaos["ex"], clean["ex"])

    # 4. Hedging recovers at least half of the slow-query faults seen on
    # primary executions (DB modes only — the hedge races the executor).
    if DB_FAULTS:
        hedge = chaos["hedge"]
        print(f"hedging      : {hedge.to_dict()}")
        assert hedge.primary_slow > 0
        assert hedge.recovered_slow >= 0.5 * hedge.primary_slow, hedge.to_dict()
        assert "db_slow_query" in chaos["db"].fault_counts()

    # 5. Conserved, monotone accounting.
    for run in (clean, chaos, replay, tight):
        _conserved(run["stats"])
    assert chaos["stats"].deadline_exceeded >= clean["stats"].deadline_exceeded
    # chaos can only add degradation events, never hide them
    degraded = lambda run: sum(len(r.degradations) for r in run["results"])
    assert degraded(chaos) >= degraded(clean)

    # 6. Determinism: an identical chaos run replays byte-for-byte.
    assert [r.final_sql for r in replay["results"]] == [
        r.final_sql for r in chaos["results"]
    ]
    assert replay["stats"].deadline_exceeded == chaos["stats"].deadline_exceeded
    if LLM_FAULTS:
        assert replay["llm"].fault_counts() == chaos["llm"].fault_counts()
    if DB_FAULTS:
        assert replay["db"].fault_counts() == chaos["db"].fault_counts()
