"""Figure 4 — EX versus number of vote candidates, GPT-4o vs GPT-4o-mini.

Paper: GPT-4o's EX increases (weakly) with the candidate count all the way
to 21, while GPT-4o-mini peaks at 7–15 candidates and then degrades — the
smaller model re-generates the *same* wrong SQL often enough that large
votes lock the error in.  The bench sweeps N ∈ {1, 3, 7, 15, 21} for both
skill profiles and asserts those two shapes.
"""

from _helpers import run_pipeline
from repro.core.config import PipelineConfig
from repro.evaluation.report import format_table
from repro.llm.skills import GPT_4O, GPT_4O_MINI

CANDIDATES = (1, 3, 7, 15, 21)


def _compute(bird):
    curves = {}
    for label, skill in (("gpt-4o", GPT_4O), ("gpt-4o-mini", GPT_4O_MINI)):
        curve = {}
        for n in CANDIDATES:
            config = PipelineConfig(n_candidates=n)
            # The full dev split: the mini model's peak-vs-21 contrast is a
            # 1-2 point effect, so it needs the larger sample.
            report = run_pipeline(bird, bird.dev, config, skill=skill)
            curve[n] = report.ex
        curves[label] = curve
    return curves


def test_fig4_candidate_sweep(benchmark, bird):
    curves = benchmark.pedantic(
        _compute, args=(bird,), rounds=1, iterations=1
    )
    rows = [
        [label] + [curve[n] for n in CANDIDATES] for label, curve in curves.items()
    ]
    print()
    print(
        format_table(
            ["Model"] + [f"N={n}" for n in CANDIDATES],
            rows,
            title=(
                "Figure 4: EX vs number of candidates "
                "(paper: GPT-4o keeps rising; mini peaks at 7-15)"
            ),
        )
    )

    slack = 2.0
    big = curves["gpt-4o"]
    mini = curves["gpt-4o-mini"]

    # GPT-4o: more candidates never hurt materially, 21 beats 1, and the
    # maximum sits at the largest candidate counts.
    assert big[21] >= big[1]
    assert all(big[b] >= big[a] - slack for a, b in zip(CANDIDATES, CANDIDATES[1:]))
    assert big[21] >= max(big.values()) - 0.5

    # Mini: voting helps over a single candidate...
    assert max(mini[3], mini[7], mini[15]) >= mini[1]
    # ...but its optimum is at a mid-size vote, not at 21 (Figure 4's
    # "control the number of outputs for smaller models" observation).
    assert max(mini[3], mini[7], mini[15]) >= mini[21]

    # The big model dominates the small one everywhere.
    assert all(big[n] > mini[n] for n in CANDIDATES)
