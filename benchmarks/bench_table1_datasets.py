"""Table 1 — dataset statistics.

Paper's Table 1 reports train/dev/test sizes, domain and database counts
for Spider and BIRD.  This bench prints the same rows for our synthetic
suites and asserts the profile contrasts the paper relies on (BIRD-like:
fewer databases, bigger schemas, dirtier values, harder questions).
"""

from collections import Counter

from repro.evaluation.report import format_table


def _rows(benchmarks):
    rows = []
    for bench in benchmarks:
        stats = bench.statistics
        rows.append(
            [
                stats["name"],
                stats["train"],
                stats["dev"],
                stats["test"],
                stats["databases"],
                stats["tables"],
                stats["columns"],
            ]
        )
    return rows


def test_table1_dataset_statistics(benchmark, bird, spider):
    rows = benchmark.pedantic(
        _rows, args=([spider, bird],), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["Dataset", "train", "dev", "test", "databases", "tables", "columns"],
            rows,
            title="Table 1: Statistics of the datasets (paper: Spider 8659/1034/2147, BIRD 9428/1534/1789)",
        )
    )

    # Profile contrasts the paper's evaluation relies on.
    assert len(bird.databases) > len(spider.databases)
    bird_cols = sum(b.schema.column_count() for b in bird.databases.values())
    spider_cols = sum(b.schema.column_count() for b in spider.databases.values())
    assert bird_cols / len(bird.databases) > spider_cols / len(spider.databases)

    bird_dirty = sum(e.has_dirty_values for e in bird.dev) / len(bird.dev)
    spider_dirty = sum(e.has_dirty_values for e in spider.dev) / max(1, len(spider.dev))
    assert bird_dirty > spider_dirty

    bird_hard = Counter(e.difficulty for e in bird.dev)["challenging"]
    spider_hard = Counter(e.difficulty for e in spider.dev)["challenging"]
    assert bird_hard > spider_hard
