"""CI performance-regression gate.

Measures the serving and reliability headline numbers in smoke mode and
compares them against the committed baseline, failing the build when a
change regresses past tolerance:

* **throughput** — 4-worker virtual throughput (requests per virtual
  second, caches off) must stay at or above 80% of baseline (a >20%
  drop fails);
* **EX retention** — the resilient transport's EX under a 20% transient
  fault rate, as a fraction of the fault-free EX, must stay within 0.02
  of baseline;
* **EX** — parallel-evaluation execution accuracy (points) must stay
  within 1.0 of baseline;
* **tokens per request** — the cost-tiered routing pipeline's average
  tokens per request on the mixed-difficulty serving profile must not
  grow more than 10% over baseline (a cost gate: a change that quietly
  defeats the fast path fails the build);
* **async throughput** — the async engine's virtual throughput (requests
  per backend-busy second) on the same Zipf load must stay at or above
  80% of baseline (a change that degrades micro-batching fails);
* **coalesced fraction** — the fraction of requests served as single-
  flight followers must stay within 0.05 of baseline (a change that
  quietly defeats in-flight dedup fails);
* **stale serves** — a serial serve-with-drift run (live mutations at
  request boundaries, caches invalidated and reindexed per epoch bump)
  must finish with exactly zero answers served against a dead catalog
  (hard ceiling 0 — one stale serve fails the build);
* **reindex catch-up** — the same run's virtual reindex catch-up cost
  (vectors re-embedded x seconds-per-vector) must not grow more than
  20% over baseline (a change that makes the reindexer re-embed more
  than the mutated database's share fails).

Usage::

    PYTHONPATH=src python benchmarks/gate.py measure --smoke -o BENCH_ci.json
    PYTHONPATH=src python benchmarks/gate.py check BENCH_ci.json
    PYTHONPATH=src python benchmarks/gate.py baseline --smoke   # refresh

``compare()`` is pure (dict in, failures out) so the gate's tripwire is
unit-testable without running a bench: see ``tests/test_gate.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

#: metric -> (kind, tolerance); "ratio" guards a fractional drop,
#: "absolute" a unit drop, "ratio_max" a fractional *rise* (for metrics
#: where lower is better), "absolute_max" a hard unit ceiling above
#: baseline (tolerance 0 = the metric may never rise at all).  All
#: gates are one-sided: improvements pass.
TOLERANCES = {
    "throughput_rps": ("ratio", 0.20),
    "ex_retention": ("absolute", 0.02),
    "ex": ("absolute", 1.0),
    "tokens_per_request": ("ratio_max", 0.10),
    "throughput_async": ("ratio", 0.20),
    "coalesced_fraction": ("absolute", 0.05),
    "stale_serve_total": ("absolute_max", 0.0),
    "reindex_catchup_seconds": ("ratio_max", 0.20),
}


def compare(current: dict, baseline: dict, tolerances: dict = None) -> list[str]:
    """Failure messages for every gated metric below tolerance.

    An empty list means the gate passes.  Metrics missing from either
    side fail loudly — a silently-skipped gate is a broken gate.
    """
    tolerances = TOLERANCES if tolerances is None else tolerances
    failures = []
    for metric, (kind, tolerance) in tolerances.items():
        if metric not in baseline:
            failures.append(f"{metric}: missing from baseline")
            continue
        if metric not in current:
            failures.append(f"{metric}: missing from current measurement")
            continue
        base, now = float(baseline[metric]), float(current[metric])
        if kind == "absolute_max":
            if now > base + tolerance:
                failures.append(
                    f"{metric}: {now:.4g} exceeds the hard ceiling "
                    f"{base + tolerance:.4g} (baseline {base:.4g} + "
                    f"tolerance {tolerance})"
                )
        elif kind == "ratio_max":
            ceiling = base * (1.0 + tolerance)
            if now > ceiling:
                rise = now / base - 1.0 if base else 1.0
                failures.append(
                    f"{metric}: {now:.4g} is {rise:.1%} above baseline "
                    f"{base:.4g} (max allowed rise {tolerance:.0%})"
                )
        elif kind == "ratio":
            floor = base * (1.0 - tolerance)
            if now < floor:
                drop = 1.0 - now / base if base else 1.0
                failures.append(
                    f"{metric}: {now:.4g} is {drop:.1%} below baseline "
                    f"{base:.4g} (max allowed drop {tolerance:.0%})"
                )
        else:
            floor = base - tolerance
            if now < floor:
                failures.append(
                    f"{metric}: {now:.4g} dropped more than {tolerance} "
                    f"below baseline {base:.4g}"
                )
    return failures


def measure(smoke: bool = True) -> dict:
    """Run the gated benches and return the headline metrics."""
    from repro.core.config import PipelineConfig
    from repro.core.pipeline import OpenSearchSQL
    from repro.datasets.bird import build_bird_like, mini_dev
    from repro.evaluation.runner import evaluate_pipeline
    from repro.llm.simulated import SimulatedLLM
    from repro.llm.skills import GPT_4O
    from repro.reliability import FaultInjectingLLM, FaultPlan, ResilientLLM
    from repro.routing import TieredPipeline
    from repro.serving import AsyncServingEngine, ServingEngine, zipf_workload

    eval_size = 12 if smoke else 50
    requests, distinct = (16, 8) if smoke else (40, 12)
    n_candidates = 5 if smoke else 11

    bird = build_bird_like()
    llm = SimulatedLLM(GPT_4O, seed=0)

    def pipeline():
        return OpenSearchSQL(
            bird,
            SimulatedLLM(GPT_4O, seed=0),
            PipelineConfig(n_candidates=n_candidates),
        )

    examples = mini_dev(bird, size=eval_size)

    # 1. EX on a 4-worker evaluation (determinism makes this exact).
    report = evaluate_pipeline(pipeline(), examples, workers=4)

    # 2. Virtual throughput, caches off, 4 workers.  Gated on the
    # *model-seconds* makespan (total simulated decode seconds split
    # across workers): the simulator is seeded per call, so this number
    # is exactly reproducible — unlike the wall-inclusive makespan,
    # whose machine-load noise would flake a 20% gate.
    workers = 4
    load = zipf_workload(bird.dev[:distinct], requests, skew=1.2, seed=0)
    with ServingEngine(
        pipeline(),
        workers=workers,
        queue_capacity=len(load),
        result_cache_size=0,
        extraction_cache_size=0,
        fewshot_cache_size=0,
    ) as engine:
        served = [r for r in engine.run(load) if r is not None]
        stats = engine.stats()
    model_seconds = sum(r.cost.total_model_seconds for r in served)
    virtual_throughput = (
        len(served) / (model_seconds / workers) if model_seconds else 0.0
    )

    # 3. EX retention behind the resilient transport at a 20% fault rate.
    shared = OpenSearchSQL(bird, llm, PipelineConfig(n_candidates=n_candidates))
    clean = evaluate_pipeline(shared, examples, name="clean")
    injector = FaultInjectingLLM(llm, FaultPlan.transient(0.2), seed=20)
    shared.rebind_llm(ResilientLLM(injector, seed=7))
    faulted = evaluate_pipeline(shared, examples, name="faulted")
    retention = (faulted.ex / clean.ex) if clean.ex else 1.0

    # 4. Tokens per request through the cost-tiered router on the
    # mixed-difficulty serving profile (same mix bench_routing certifies).
    mix = (
        {"simple": 13, "moderate": 4, "challenging": 3}
        if smoke
        else {"simple": 65, "moderate": 20, "challenging": 15}
    )
    by_difficulty: dict[str, list] = {}
    for example in mini_dev(bird, size=200):
        by_difficulty.setdefault(example.difficulty, []).append(example)
    profile = []
    for difficulty, count in mix.items():
        profile.extend(by_difficulty[difficulty][:count])
    tiered = TieredPipeline(pipeline())
    routed = evaluate_pipeline(tiered, profile, name="routed").deterministic_dict()
    tokens_per_request = routed["total_tokens"] / routed["count"]

    # 5. Async engine on the same Zipf load: coalesced fraction (single-
    # flight efficiency) and virtual throughput over the backend-busy
    # makespan (micro-batching efficiency).  Both are deterministic —
    # leader/follower assignment is a pure function of the workload, and
    # the batcher's wave composition is barrier-aligned, so a change that
    # quietly defeats coalescing or batching trips the gate exactly.
    with AsyncServingEngine(
        pipeline(), workers=workers, queue_capacity=len(load)
    ) as engine:
        engine.run(load)
        astats = engine.stats()

    # 6. Live-mutation robustness: a serial drifted run (mutation +
    # invalidate + reindex every other request) must end with zero
    # answers served against a dead catalog, and the reindexer's
    # virtual catch-up cost (vectors re-embedded x seconds-per-vector)
    # is a cost ceiling — both are exact, virtual-clock numbers.
    import tempfile

    from repro.livedata import EpochRegistry, MutationDriver, ReindexWorker

    drift_requests = 6 if smoke else 12
    drift_load = zipf_workload(
        bird.dev[:distinct], drift_requests, skew=1.2, seed=0
    )
    registry = EpochRegistry()
    drift_pipeline = pipeline()
    with tempfile.TemporaryDirectory(prefix="repro-gate-reindex-") as tmp:
        with ServingEngine(
            drift_pipeline, workers=1, queue_capacity=len(drift_load)
        ) as engine:
            engine.attach_livedata(registry)
            driver = MutationDriver(bird, registry, seed=0)
            reindexer = ReindexWorker(
                drift_pipeline,
                Path(tmp) / "reindex.jsonl",
                registry=registry,
            )
            for position, example in enumerate(drift_load):
                engine.answer(example)
                if (position + 1) % 2 == 0 and position + 1 < len(drift_load):
                    event = driver.mutate()
                    engine.invalidate_db(event.db_id)
                    reindexer.reindex(event.db_id, epoch=event.epoch)
            stale_serve_total = engine.livedata_stats["stale_served"]
            reindex_catchup = reindexer.total_catchup_seconds
            drift_mutations = len(driver.events)
            reindexer.close()

    return {
        "smoke": smoke,
        "eval_size": eval_size,
        "ex": report.ex,
        "throughput_rps": round(virtual_throughput, 4),
        "completed": stats.completed,
        "clean_ex": clean.ex,
        "faulted_ex": faulted.ex,
        "ex_retention": round(retention, 4),
        "routed_ex": routed["ex"],
        "tokens_per_request": round(tokens_per_request, 1),
        "throughput_async": round(astats.throughput_rps, 4),
        "coalesced_fraction": round(astats.coalesced_fraction, 4),
        "async_batched_calls": astats.batched_calls,
        "stale_serve_total": int(stale_serve_total),
        "reindex_catchup_seconds": round(reindex_catchup, 4),
        "drift_mutations": drift_mutations,
    }


def _load(path: Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main(argv: list[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_measure = sub.add_parser("measure", help="run benches, write metrics JSON")
    p_measure.add_argument("--smoke", action="store_true")
    p_measure.add_argument("-o", "--output", default="BENCH_ci.json")

    p_check = sub.add_parser("check", help="compare a metrics JSON to baseline")
    p_check.add_argument("current", help="metrics JSON written by `measure`")
    p_check.add_argument("--baseline", default=str(BASELINE_PATH))

    p_baseline = sub.add_parser("baseline", help="measure and refresh baseline")
    p_baseline.add_argument("--smoke", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "measure":
        metrics = measure(smoke=args.smoke)
        Path(args.output).write_text(json.dumps(metrics, indent=2) + "\n")
        print(json.dumps(metrics, indent=2))
        return 0

    if args.command == "baseline":
        metrics = measure(smoke=args.smoke)
        BASELINE_PATH.write_text(json.dumps(metrics, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        print(json.dumps(metrics, indent=2))
        return 0

    # check
    current, baseline = _load(Path(args.current)), _load(Path(args.baseline))
    failures = compare(current, baseline)
    for metric in TOLERANCES:
        now, base = current.get(metric), baseline.get(metric)
        print(f"{metric}: current={now} baseline={base}")
    if failures:
        print("\nGATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ngate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
