"""Reliability — EX retention under injected infrastructure faults.

Not a paper table: this bench measures how much execution accuracy the
pipeline retains when its LLM transport misbehaves.  It sweeps fault rates
x retry policies on a 50-example MINI-DEV sample, comparing

* **bare** — faults hit the pipeline's containment layer directly
  (degraded answers, never crashes), vs.
* **resilient** — the same fault sequence behind ``ResilientLLM``
  (retry + backoff + circuit breaker).

Expected shape: at a 20% transient-fault rate the resilient transport
retains EX within 2 points of the fault-free run, while the bare transport
bleeds accuracy roughly linearly with the rate.  Every injected fault is
accounted for in ReliabilityStats.
"""

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.bird import mini_dev
from repro.evaluation.report import format_table
from repro.evaluation.runner import evaluate_pipeline
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.reliability import (
    FaultInjectingLLM,
    FaultPlan,
    ResilientLLM,
    RetryPolicy,
)

FAULT_RATES = [0.0, 0.1, 0.2, 0.3]
RETRY_POLICY = RetryPolicy(max_attempts=6)


def _compute(bird, examples):
    llm = SimulatedLLM(GPT_4O, seed=0)
    # One pipeline, one set of preprocessing artifacts; every cell of the
    # sweep rebinds the transport so runs differ only in injected faults.
    pipeline = OpenSearchSQL(bird, llm, PipelineConfig(n_candidates=11))
    results = {}
    for rate in FAULT_RATES:
        for guarded in (False, True):
            injector = FaultInjectingLLM(
                llm, FaultPlan.transient(rate), seed=int(rate * 100)
            )
            transport = (
                ResilientLLM(injector, policy=RETRY_POLICY, seed=7)
                if guarded
                else injector
            )
            pipeline.rebind_llm(transport)
            report = evaluate_pipeline(pipeline, examples, name=f"rate={rate}")
            stats = transport.stats if guarded else injector.stats
            results[(rate, guarded)] = (report, injector.stats, stats)
    pipeline.rebind_llm(llm)
    return results


def test_reliability_ex_retention(benchmark, bird):
    examples = mini_dev(bird, size=50)
    results = benchmark.pedantic(_compute, args=(bird, examples), rounds=1, iterations=1)

    clean_ex = results[(0.0, True)][0].ex
    rows = []
    for rate in FAULT_RATES:
        for guarded in (False, True):
            report, injected, stats = results[(rate, guarded)]
            rows.append(
                [
                    f"{rate:.0%}",
                    "resilient" if guarded else "bare",
                    report.ex,
                    round(report.ex - clean_ex, 1),
                    len(injected.faults),
                    stats.retries if guarded else 0,
                    stats.giveups if guarded else "-",
                    len(report.degradations),
                ]
            )
    print()
    print(
        format_table(
            ["Fault rate", "Transport", "EX", "dEX", "faults",
             "retries", "giveups", "degraded"],
            rows,
            title="Reliability: EX retention under transient transport faults",
        )
    )

    # Fault-free runs are identical with or without the retry layer.
    assert results[(0.0, False)][0].ex == clean_ex

    for rate in FAULT_RATES:
        bare_report, bare_injected, _ = results[(rate, False)]
        res_report, res_injected, res_stats = results[(rate, True)]

        # Acceptance bar: with retries, EX stays within 2 points of clean.
        assert clean_ex - res_report.ex < 2.0, rate

        # The retry layer observed exactly the faults that were injected.
        assert res_stats.failures == len(res_injected.faults)

        if rate > 0:
            assert len(bare_injected.faults) > 0
            # Bare runs degrade; resilient runs salvage those faults.
            assert len(res_report.degradations) <= len(bare_report.degradations)
            assert res_report.ex >= bare_report.ex

    # More faults injected at higher rates (monotone in expectation; the
    # deterministic seeds make this stable).
    injected_counts = [len(results[(r, False)][1].faults) for r in FAULT_RATES]
    assert injected_counts == sorted(injected_counts)
