"""Table 3 — Spider test-set EX.

Paper rows: C3+ChatGPT 82.3 < GPT-4 83.9 < DIN-SQL 85.3 < DAIL-SQL 86.6 <
CHESS 87.2 < MCS-SQL 89.6, OpenSearch-SQL+GPT-4o 87.1.  Two shapes matter:
(a) every method scores much higher than on BIRD (Spider is easier), and
(b) the gaps between methods compress while OpenSearch-SQL stays near the
top without any Spider-specific tuning (the generalization claim).
"""

from _helpers import run_pipeline
from repro.baselines.systems import C3SQL, DAILSQL, DINSQL, MCSSQL, ZeroShotGPT4, CHESS
from repro.core.config import PipelineConfig
from repro.evaluation.report import format_table
from repro.evaluation.runner import evaluate_system
from repro.llm.skills import GPT_4, GPT_4O


def _compute(spider, bird):
    examples = spider.test + spider.dev  # Spider's leaderboard is test-only;
    # we pool dev+test for a larger sample at the same difficulty profile.
    systems = [
        C3SQL(spider),
        ZeroShotGPT4(spider),
        DINSQL(spider),
        DAILSQL(spider),
        CHESS(spider),
        MCSSQL(spider),
    ]
    rows = []
    scores = {}
    for system in systems:
        report = evaluate_system(system, spider, examples)
        rows.append([system.name, report.ex])
        scores[system.name] = report.ex

    for name, skill in (
        ("OpenSearch-SQL + GPT-4", GPT_4),
        ("OpenSearch-SQL + GPT-4o", GPT_4O),
    ):
        report = run_pipeline(
            spider, examples, PipelineConfig(n_candidates=21), skill=skill, name=name
        )
        rows.append([name, report.ex])
        scores[name] = report.ex

    # Reference point: the same full configuration on BIRD-like dev.
    bird_report = run_pipeline(
        bird, bird.dev, PipelineConfig(n_candidates=21), skill=GPT_4O
    )
    return rows, scores, bird_report.ex


def test_table3_spider_results(benchmark, spider, bird):
    rows, scores, bird_ex = benchmark.pedantic(
        _compute, args=(spider, bird), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["Method", "EX"],
            rows,
            title="Table 3: Execution accuracy (EX) on the Spider-like test set",
        )
    )
    print(f"(same OpenSearch-SQL config on BIRD-like dev: {bird_ex:.1f})")

    slack = 5.0
    ours = scores["OpenSearch-SQL + GPT-4o"]

    # (a) Spider is easier: our method scores clearly higher than on BIRD.
    assert ours > bird_ex

    # (b) OpenSearch-SQL is at or near the top without Spider tuning.
    assert all(ours >= value - slack for value in scores.values())

    # (c) zero-shot trails the pipeline methods here too.
    assert scores["GPT-4"] <= ours
