"""Crash-consistency certification: power cuts at every append boundary.

Not a paper table: this bench certifies the storage layer's recovery
contract.  A 3-shard routed reference run is journaled through a
recording opener, then :func:`~repro.storage.crashfuzz.run_crash_fuzz`
enumerates simulated power cuts —

* a **clean cut** after every global append (all segments truncated to
  their exact byte lengths at that instant),
* a **torn cut** inside every append (the next record survives only to
  its midpoint byte), and
* seeded **bit-flip** trials (silent media corruption in a completed
  run)

— and recovers each one through the production
``ShardedJournalView``/``recover_run`` path.  The certification
asserts, for every cut:

1. **no wrong answers** — recovery is byte-identical to the reference
   report, or fails with a *typed* error; a silently divergent report
   (``wrong-report``) fails the bench;
2. **no double-serves** — no cut shape makes the merged view replay a
   seq twice;
3. **no tracebacks** — damage always surfaces as
   ``JournalCorruptionError`` / ``JournalVersionError``, never a bare
   exception escaping the recovery path;
4. **repairability** — every bit-flip that trips the corruption check
   is repaired by ``repro fsck --repair`` semantics
   (:func:`~repro.storage.fsck.repair_file`), after which recovery is
   byte-identical again;
5. **determinism** — two campaigns with the same seed produce
   element-identical outcome lists (CI also diffs two CLI invocations).

Uses the five-database ``cluster-smoke`` profile.  Sizes shrink under
``REPRO_SERVING_SMOKE=1`` for CI.
"""

import json
import os

from repro.storage.crashfuzz import CrashFuzzConfig, run_crash_fuzz

SMOKE = bool(int(os.environ.get("REPRO_SERVING_SMOKE", "0")))
REQUESTS = 8 if SMOKE else 12
DISTINCT = 4 if SMOKE else 6
LIMIT = 8 if SMOKE else None
BITFLIPS = 2 if SMOKE else 4


def _config():
    return CrashFuzzConfig(
        shards=3,
        requests=REQUESTS,
        distinct=DISTINCT,
        seed=0,
        candidates=3,
        routing=True,
        bitflips=BITFLIPS,
        limit=LIMIT,
    )


def _compute(tmp_dir):
    first = run_crash_fuzz(_config(), tmp_dir / "run1")
    second = run_crash_fuzz(_config(), tmp_dir / "run2")
    return {"first": first, "second": second}


def test_crash_consistency_certification(benchmark, tmp_path):
    runs = benchmark.pedantic(_compute, args=(tmp_path,), rounds=1, iterations=1)
    result = runs["first"]
    outcomes = result.outcomes

    # The enumeration actually covered something on every axis.
    kinds = {o.kind for o in outcomes}
    assert kinds >= {"clean", "torn", "flip"}, kinds
    assert result.cut_points > 0

    # 1-3. Never a wrong answer, a double-serve, or a traceback.
    by_class: dict = {}
    for outcome in outcomes:
        by_class.setdefault(outcome.outcome, []).append(outcome.cut)
    assert "wrong-report" not in by_class, by_class["wrong-report"]
    assert "double-serve" not in by_class, by_class["double-serve"]
    assert "traceback" not in by_class, by_class["traceback"]

    # Power cuts recover byte-identically (or typed-empty before any
    # segment existed); the certification flag rolls all rules up.
    assert result.ok, [o.to_dict() for o in outcomes if not o.ok]

    # 4. Every corruption-tripping flip was repaired back to identical.
    flips = [o for o in outcomes if o.kind == "flip"]
    assert flips
    for flip in flips:
        if flip.outcome == "typed-loss":
            assert flip.repaired == "identical", flip.to_dict()

    # 5. Same seed, same verdicts — the campaign is deterministic.
    first_doc = json.dumps(
        [o.to_dict() for o in outcomes], sort_keys=True
    )
    second_doc = json.dumps(
        [o.to_dict() for o in runs["second"].outcomes], sort_keys=True
    )
    assert first_doc == second_doc

    summary = result.summary()
    print()
    print(
        f"enumeration : {summary['cuts']} cuts over "
        f"{summary['append_boundaries']} append boundaries "
        f"({len(flips)} bit-flip trials)"
    )
    print(f"outcomes    : {json.dumps(summary['outcomes'], sort_keys=True)}")
    print("certified   : no wrong answers, no double-serves, no tracebacks")
