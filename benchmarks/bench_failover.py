"""Failover + durability certification for the serving path.

Not a paper table: this bench certifies the two PR-5 robustness
properties on a fixed seed.

**Backend failover.**  A Zipf-skewed workload is served twice — once on a
single clean simulated model (the baseline) and once on a
:class:`~repro.serving.backends.BackendPool` of three ResilientLLM
replicas whose *primary* is fault-injected at ``RATE`` (50%).  The
primary keeps a deliberately short retry budget so injected faults
actually escape to the pool instead of being absorbed by retries.  The
run certifies:

1. **containment** — every request completes, nothing raises;
2. **EX retention** — the pool run keeps >= 95% of the fault-free EX
   (failover reroutes what the primary drops);
3. **conserved routing** — per-replica served counts sum to the pool's
   total calls, failovers were observed, no call exhausted all replicas;
4. **determinism** — an identical pool run replays byte-for-byte.

**Journal recovery.**  A fault-free journaled run is "killed" by
truncating its write-ahead journal mid-file (torn half-line included —
what SIGKILL leaves behind), then recovered with a fresh pipeline.  The
recovered deterministic report must be byte-identical to the
uninterrupted run's, and replayed requests must not re-spend tokens
(double-count-proof cost accounting).

Runs ``workers=1``: the LLM fault injector draws from a sequential RNG
and the pool's sticky-primary routing is stateful, so thread scheduling
would otherwise reorder both.  Sizes shrink under
``REPRO_SERVING_SMOKE=1`` for CI.
"""

import json
import os

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.evaluation.metrics import execution_accuracy, score_example
from repro.evaluation.report import format_table
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.reliability import FaultInjectingLLM, FaultPlan, ResilientLLM
from repro.reliability.transport import RetryPolicy
from repro.serving import (
    BackendPool,
    ServingEngine,
    ServingJournal,
    assemble_report,
    recover_run,
    zipf_workload,
)

SMOKE = bool(int(os.environ.get("REPRO_SERVING_SMOKE", "0")))
RATE = 0.5
SEED = 0
ZIPF_SKEW = 1.2
REPLICAS = 3
LOAD = (18, 6) if SMOKE else (48, 12)
#: journal certification workload (closed-loop, single worker)
JOURNAL_LOAD = (10, 5) if SMOKE else (16, 8)
#: where to chop the killed journal (line count, after the header)
KILL_AT = 5


def _pipeline(bird):
    llm = SimulatedLLM(GPT_4O, seed=SEED)
    return OpenSearchSQL(bird, llm, PipelineConfig(n_candidates=11))


def _build_pool(pipeline):
    """Three replicas over the simulated model, primary chaos-injected.

    The primary's retry budget is clamped to 2 attempts so roughly
    RATE**2 of its calls still fail after retries — enough escapes for
    the failover path to be exercised, not so many that the pool starves.
    """
    clients = []
    injector = None
    for index in range(REPLICAS):
        inner = pipeline.llm
        policy = None
        if index == 0:
            inner = injector = FaultInjectingLLM(
                inner, FaultPlan.chaos(RATE), seed=SEED
            )
            policy = RetryPolicy(max_attempts=2)
        clients.append(ResilientLLM(inner, policy=policy, seed=SEED + index))
    return BackendPool(clients), injector


def _serve(bird, load, pooled):
    pipeline = _pipeline(bird)
    pool = injector = None
    if pooled:
        pool, injector = _build_pool(pipeline)
        pipeline.rebind_llm(pool)
    with ServingEngine(
        pipeline,
        workers=1,
        queue_capacity=len(load),
        backends=pool,
    ) as engine:
        results = engine.run(load)
        stats = engine.stats()
    return {
        "results": results,
        "stats": stats,
        "pool": pool,
        "injector": injector,
    }


def _score(bird, load, results):
    """EX over the served workload, judged with clean executors."""
    executors = {}
    scores = []
    for example, result in zip(load, results):
        executor = executors.get(example.db_id)
        if executor is None:
            executor = bird.database(example.db_id).executor()
            executors[example.db_id] = executor
        sql = result.final_sql if result is not None else None
        scores.append(score_example(example, sql, executor))
    return execution_accuracy(scores)


def _journal_certification(bird, tmp_dir):
    """Kill/recover round trip: byte-identical report, no double counts."""
    requests, distinct = JOURNAL_LOAD
    load = zipf_workload(bird.dev[:distinct], requests, skew=ZIPF_SKEW, seed=SEED)

    full_path = tmp_dir / "full.jsonl"
    journal = ServingJournal(full_path)
    journal.write_header({"requests": requests})
    with ServingEngine(
        _pipeline(bird), workers=1, queue_capacity=requests, journal=journal
    ) as engine:
        engine.run(load)

    def report_from(path):
        pipeline = _pipeline(bird)
        outcomes = recover_run(ServingJournal(path), pipeline, load)
        return assemble_report(outcomes, load, pipeline)

    full_report = report_from(full_path)

    # the kill: a journal prefix plus a torn half-line
    lines = full_path.read_text().splitlines()
    killed_path = tmp_dir / "killed.jsonl"
    killed_path.write_text(
        "\n".join(lines[:KILL_AT]) + "\n" + lines[KILL_AT][: len(lines[KILL_AT]) // 2]
    )
    killed = ServingJournal(killed_path)
    pending = len(killed.pending())
    recovered_report = report_from(killed_path)
    return {
        "load": load,
        "pending": pending,
        "full": full_report,
        "recovered": recovered_report,
    }


def _compute(bird, tmp_dir):
    requests, distinct = LOAD
    load = zipf_workload(bird.dev[:distinct], requests, skew=ZIPF_SKEW, seed=SEED)
    runs = {
        "clean": _serve(bird, load, pooled=False),
        "pool": _serve(bird, load, pooled=True),
        "replay": _serve(bird, load, pooled=True),
    }
    runs["clean"]["ex"] = _score(bird, load, runs["clean"]["results"])
    runs["pool"]["ex"] = _score(bird, load, runs["pool"]["results"])
    runs["load"] = load
    runs["journal"] = _journal_certification(bird, tmp_dir)
    return runs


def _conserved(stats):
    assert stats.submitted == (
        stats.admitted + stats.shed + stats.shed_health + stats.rejected_open
        + stats.rejected_budget + stats.rejected_draining
        + stats.rejected_bulkhead
    ), stats.to_dict()
    assert stats.admitted == stats.completed + stats.failed, stats.to_dict()


def test_failover_certification(benchmark, bird, tmp_path):
    runs = benchmark.pedantic(
        _compute, args=(bird, tmp_path), rounds=1, iterations=1
    )

    clean, pool_run, replay = runs["clean"], runs["pool"], runs["replay"]
    pool = pool_run["pool"]
    retention = pool_run["ex"] / clean["ex"] if clean["ex"] else 0.0
    injected = len(pool_run["injector"].stats.faults)

    snapshot = pool.snapshot()
    rows = [
        ["clean", clean["ex"], "-", 0, "-"],
        [f"pool ({REPLICAS} replicas)", pool_run["ex"], f"{retention:.0%}",
         injected, pool.stats.failovers],
    ]
    print()
    print(format_table(
        ["Run", "EX", "retention", "primary faults", "failovers"],
        rows,
        title=f"Failover: EX retention with primary at {RATE:.0%} fault rate",
    ))
    print(f"routing      : {json.dumps(snapshot['replicas'], sort_keys=True)}")
    print(f"served/replica: {pool.stats.to_dict()['served']}")

    # 1. Containment: every request completed on both runs.
    for run in (clean, pool_run, replay):
        assert all(r is not None for r in run["results"])
        assert run["stats"].failed == 0
        _conserved(run["stats"])
    assert injected > 0, "primary injector never fired"

    # 2. EX retention: the pool keeps >= 95% of the fault-free accuracy.
    assert retention >= 0.95, (pool_run["ex"], clean["ex"])

    # 3. Conserved routing: served counts sum to calls, failover actually
    # happened, and no call ran out of replicas.
    served = pool.stats.served
    assert sum(served.values()) == pool.stats.calls
    assert pool.stats.failovers > 0
    assert pool.stats.exhausted == 0
    assert set(served) <= set(range(REPLICAS))

    # 4. Determinism: an identical pool run replays byte-for-byte.
    assert [r.final_sql for r in replay["results"]] == [
        r.final_sql for r in pool_run["results"]
    ]
    assert replay["pool"].stats.to_dict() == pool.stats.to_dict()

    # 5. Journal recovery: byte-identical report, no double-counted costs.
    cert = runs["journal"]
    assert cert["pending"] > 0, "the kill lost nothing — move KILL_AT"
    full, recovered = cert["full"], cert["recovered"]
    assert json.dumps(full.deterministic_dict(), sort_keys=True) == json.dumps(
        recovered.deterministic_dict(), sort_keys=True
    )
    assert recovered.cost.total_tokens == full.cost.total_tokens
    print(
        f"journal      : {cert['pending']} pending after kill, "
        f"recovered EX {recovered.ex:.1f} == full EX {full.ex:.1f}, "
        f"{recovered.cost.total_tokens} tokens (no double count)"
    )
