"""Table 5 — few-shot strategy comparison.

Paper rows (EX_G / EX_R / EX): Query-CoT-SQL 65.8/68.2/70.6; w/o
generation few-shot 59.6/63.0/66.0; Query-SQL generation few-shot
63.0/66.2/69.2; w/o refinement few-shot 65.8/67.6/69.4; w/o both
59.6/62.8/66.0.  Shape: Query-CoT-SQL > Query-SQL > none at every stage;
refinement few-shot contributes a small extra margin.
"""

from _helpers import run_pipeline
from repro.core.config import PipelineConfig
from repro.evaluation.report import format_table

VARIANTS = [
    ("Query-CoT-SQL pair Few-shot", {}),
    ("w/o Few-shot of Generation", {"fewshot_style": "none"}),
    ("w Query-SQL pair Few-shot of Generation", {"fewshot_style": "query_sql"}),
    ("w/o Few-shot of Refinement", {"refinement_fewshot": False}),
    (
        "w/o Few-shot of Generation & Refinement",
        {"fewshot_style": "none", "refinement_fewshot": False},
    ),
]


def _compute(bird, bird_mini):
    base = PipelineConfig(n_candidates=21)
    return {
        name: run_pipeline(bird, bird_mini, base.with_(**changes), name=name)
        for name, changes in VARIANTS
    }


def test_table5_fewshot_comparison(benchmark, bird, bird_mini):
    results = benchmark.pedantic(
        _compute, args=(bird, bird_mini), rounds=1, iterations=1
    )
    full = results["Query-CoT-SQL pair Few-shot"]
    rows = [
        [
            name,
            report.ex_g,
            report.ex_g - full.ex_g,
            report.ex_r,
            report.ex_r - full.ex_r,
            report.ex,
            report.ex - full.ex,
        ]
        for name, report in results.items()
    ]
    print()
    print(
        format_table(
            ["Method", "EX_G", "dG", "EX_R", "dR", "EX", "dEX"],
            rows,
            title="Table 5: few-shot performance comparison on MINI-DEV",
        )
    )

    slack = 2.0
    cot = results["Query-CoT-SQL pair Few-shot"]
    plain = results["w Query-SQL pair Few-shot of Generation"]
    none = results["w/o Few-shot of Generation"]
    both_off = results["w/o Few-shot of Generation & Refinement"]
    refine_off = results["w/o Few-shot of Refinement"]

    # Query-CoT-SQL > Query-SQL > none at the generation stage.
    assert none.ex_g <= plain.ex_g + slack <= cot.ex_g + 2 * slack
    assert cot.ex_g >= none.ex_g

    # Final EX follows the same ordering.
    assert none.ex <= cot.ex + slack
    assert plain.ex <= cot.ex + slack

    # Refinement few-shot matters less than generation few-shot.
    assert (cot.ex - refine_off.ex) <= (cot.ex - none.ex) + slack

    # Removing both is at least as bad as removing generation few-shot.
    assert both_off.ex <= none.ex + slack

    # Refinement few-shot does not change EX_G (it acts after generation).
    assert abs(refine_off.ex_g - cot.ex_g) < 0.01
