"""Table 7 — CoT comparison: none vs unstructured vs structured.

Paper (few-shot disabled to isolate CoT; EX_G / EX_V with vote):
w/o CoT 57.6/59.2 (+1.6), unstructured 58.2/63.0 (+4.8), structured
58.8/65.0 (+6.2).  Shapes: structured >= unstructured >= none on the voted
EX, and the *vote gain* (EX_V - EX_G) grows with CoT structure.
"""

from _helpers import run_pipeline
from repro.core.config import PipelineConfig
from repro.evaluation.report import format_table

MODES = [("w/o CoT", "none"), ("Unstructured CoT", "unstructured"),
         ("Structured CoT", "structured")]


def _compute(bird, bird_mini):
    results = {}
    for name, mode in MODES:
        config = PipelineConfig(
            n_candidates=21,
            fewshot_style="none",   # isolate CoT, as the paper does
            cot_mode=mode,
        )
        results[name] = run_pipeline(bird, bird_mini, config, name=name)
    return results


def test_table7_cot_comparison(benchmark, bird, bird_mini):
    results = benchmark.pedantic(
        _compute, args=(bird, bird_mini), rounds=1, iterations=1
    )
    rows = [
        [name, report.ex_g, report.ex, report.ex - report.ex_g]
        for name, report in results.items()
    ]
    print()
    print(
        format_table(
            ["Modular", "EX_G", "EX_V", "EX_V - EX_G"],
            rows,
            title=(
                "Table 7: CoT comparison, few-shot disabled "
                "(paper: none 57.6/59.2, unstructured 58.2/63.0, "
                "structured 58.8/65.0)"
            ),
        )
    )

    slack = 2.0
    none = results["w/o CoT"]
    unstructured = results["Unstructured CoT"]
    structured = results["Structured CoT"]

    # Structured CoT achieves the best voted accuracy.
    assert structured.ex >= unstructured.ex - slack
    assert structured.ex >= none.ex - slack
    assert structured.ex >= none.ex  # strict on the headline comparison

    # CoT helps single-SQL generation.
    assert structured.ex_g >= none.ex_g - slack

    # Voting adds on top of every mode.
    assert structured.ex >= structured.ex_g - 0.5
