"""Extension bench (paper §3.8) — alternative few-shot formats.

The paper's Optimization section notes that "few-shot approaches are not
limited to Query-CoT-SQL pairs; there are other options available".  This
bench adds the Query-Skeleton-SQL format (DAIL-SQL's skeleton view of the
gold query) to the Table 5 comparison and checks where it lands: better
than plain Query-SQL pairs (the skeleton carries structural information)
but below Query-CoT-SQL (which carries the full reasoning chain).
"""

from _helpers import run_pipeline
from repro.core.config import PipelineConfig
from repro.evaluation.report import format_table

STYLES = [
    ("none", "none"),
    ("Query-SQL", "query_sql"),
    ("Query-Skeleton-SQL (ext)", "query_skeleton_sql"),
    ("Query-CoT-SQL", "query_cot_sql"),
]


def _compute(bird, bird_mini):
    results = {}
    for name, style in STYLES:
        config = PipelineConfig(n_candidates=21, fewshot_style=style)
        results[name] = run_pipeline(bird, bird_mini, config, name=name)
    return results


def test_ext_fewshot_style_ladder(benchmark, bird, bird_mini):
    results = benchmark.pedantic(
        _compute, args=(bird, bird_mini), rounds=1, iterations=1
    )
    rows = [
        [name, report.ex_g, report.ex_r, report.ex]
        for name, report in results.items()
    ]
    print()
    print(
        format_table(
            ["Few-shot format", "EX_G", "EX_R", "EX"],
            rows,
            title="Extension (§3.8): few-shot format ladder on MINI-DEV",
        )
    )

    slack = 2.0
    none = results["none"]
    plain = results["Query-SQL"]
    skeleton = results["Query-Skeleton-SQL (ext)"]
    cot = results["Query-CoT-SQL"]

    # The ladder at the generation stage: none <= plain <= skeleton <= cot.
    assert none.ex_g <= plain.ex_g + slack
    assert plain.ex_g <= skeleton.ex_g + slack
    assert skeleton.ex_g <= cot.ex_g + slack

    # CoT keeps the top spot end to end.
    assert cot.ex >= skeleton.ex - slack
    assert cot.ex >= none.ex
