"""Serving — concurrency, multi-tier caching, admission accounting.

Not a paper table: this bench certifies the serving engine's three
acceptance properties on a fixed seed:

1. **determinism** — ``evaluate_pipeline`` scores the same split to
   identical EX / EX_G / EX_R with ``workers=1`` and ``workers=4`` (the
   simulated model draws from per-call hashed seeds, so thread scheduling
   cannot change any answer);
2. **throughput** — with caches disabled, 4 workers finish the same
   workload with >2x the virtual throughput of 1 worker (makespan is the
   busiest worker's accumulated service time: real wall + simulated model
   seconds);
3. **caching** — under a Zipf-skewed request stream the exact-match
   result tier answers >50% of requests, and a fully warmed second pass
   serves every request from cache.

Sizes shrink under ``REPRO_SERVING_SMOKE=1`` so CI can run this as a
smoke test.
"""

import os

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.bird import mini_dev
from repro.evaluation.report import format_table
from repro.evaluation.runner import evaluate_pipeline
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.serving import ServingEngine, zipf_workload

SMOKE = bool(int(os.environ.get("REPRO_SERVING_SMOKE", "0")))
#: (determinism split size, throughput requests/distinct, cache requests/distinct)
EVAL_SIZE = 12 if SMOKE else 24
THROUGHPUT_LOAD = (16, 8) if SMOKE else (40, 12)
CACHE_LOAD = (30, 6) if SMOKE else (60, 15)
ZIPF_SKEW = 1.2
SEED = 0


def _pipeline(bird, n_candidates=11):
    # Fresh pipeline per engine: ServingEngine wires cache wrappers onto
    # the pipeline's stage objects, so engines must not share one.
    llm = SimulatedLLM(GPT_4O, seed=SEED)
    return OpenSearchSQL(bird, llm, PipelineConfig(n_candidates=n_candidates))


def _compute(bird):
    results = {}

    # 1. Parallel determinism: serial vs 4-worker evaluation.
    examples = mini_dev(bird, size=EVAL_SIZE)
    results["serial"] = evaluate_pipeline(_pipeline(bird), examples)
    results["parallel"] = evaluate_pipeline(_pipeline(bird), examples, workers=4)

    # 2. Throughput: identical no-cache workload, 1 vs 4 workers.
    requests, distinct = THROUGHPUT_LOAD
    load = zipf_workload(bird.dev[:distinct], requests, skew=ZIPF_SKEW, seed=SEED)
    for workers in (1, 4):
        with ServingEngine(
            _pipeline(bird),
            workers=workers,
            queue_capacity=len(load),
            result_cache_size=0,
            extraction_cache_size=0,
            fewshot_cache_size=0,
        ) as engine:
            engine.run(load)
            results[f"w{workers}"] = engine.stats()

    # 3. Caching: Zipf stream on a cold engine, then a warmed second pass.
    requests, distinct = CACHE_LOAD
    load = zipf_workload(bird.dev[:distinct], requests, skew=ZIPF_SKEW, seed=SEED)
    with ServingEngine(
        _pipeline(bird), workers=4, queue_capacity=len(load)
    ) as engine:
        cold_results = engine.run(load)
        results["cold"] = engine.stats()
        engine.reset_stats()
        warm_results = engine.run(load)
        results["warm"] = engine.stats()
    results["served"] = (cold_results, warm_results)
    return results


def test_serving_engine(benchmark, bird):
    results = benchmark.pedantic(_compute, args=(bird,), rounds=1, iterations=1)

    serial, parallel = results["serial"], results["parallel"]
    w1, w4 = results["w1"], results["w4"]
    cold, warm = results["cold"], results["warm"]

    rows = [
        ["evaluate workers=1", serial.ex, serial.ex_g, serial.ex_r],
        ["evaluate workers=4", parallel.ex, parallel.ex_g, parallel.ex_r],
    ]
    print()
    print(format_table(
        ["Run", "EX", "EX_G", "EX_R"], rows,
        title="Serving: parallel evaluation determinism",
    ))
    rows = [
        [f"workers={s.workers}", s.completed, round(s.makespan_seconds, 1),
         round(s.throughput_rps, 3),
         round(s.latency.p50, 2), round(s.latency.p95, 2)]
        for s in (w1, w4)
    ]
    print(format_table(
        ["Engine (no cache)", "completed", "makespan s", "req/s",
         "p50 s", "p95 s"], rows,
        title="Serving: virtual throughput scaling",
    ))
    print(f"\nZipf cache run (skew {ZIPF_SKEW}, cold then warmed):")
    print(cold.format())
    print(f"warm hit rate: {warm.result_hit_rate:.1%}")

    # (a) Thread scheduling changes nothing: identical scores either way.
    assert parallel.ex == serial.ex
    assert parallel.ex_g == serial.ex_g
    assert parallel.ex_r == serial.ex_r
    assert [s.correct for s in parallel.scores] == [s.correct for s in serial.scores]

    # (b) 4 workers beat 1 worker by >2x on virtual throughput.
    assert w1.completed == w4.completed == THROUGHPUT_LOAD[0]
    assert w4.throughput_rps > 2.0 * w1.throughput_rps, (
        w4.throughput_rps, w1.throughput_rps,
    )

    # (c) Zipf repetition keeps the exact-match tier >50% even cold, and a
    # warmed pass serves everything from cache; no request is dropped.
    assert all(r is not None for r in results["served"][0])
    assert cold.completed == CACHE_LOAD[0] and cold.failed == 0
    assert cold.result_hit_rate > 0.5, cold.result_hit_rate
    assert warm.result_hit_rate == 1.0
    # Warm answers are the cached cold answers, byte-for-byte.
    assert [r.final_sql for r in results["served"][1]] == [
        r.final_sql for r in results["served"][0]
    ]
