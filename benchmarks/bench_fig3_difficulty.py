"""Figure 3 — Self-Consistency & Vote impact by difficulty.

Paper: the SC&Vote gain is largest on challenging questions (+7.64
absolute) and small on simple/moderate ones — harder questions make the
model noisier, and voting removes low-probability noise.  The bench
regenerates the two bars per difficulty bucket and asserts that shape.
"""

from _helpers import run_pipeline
from repro.core.config import PipelineConfig
from repro.evaluation.report import format_table


def _compute(bird):
    examples = bird.dev
    with_vote = run_pipeline(
        bird, examples, PipelineConfig(n_candidates=21), name="with-vote"
    )
    without_vote = run_pipeline(
        bird,
        examples,
        PipelineConfig(use_self_consistency=False),
        name="without-vote",
    )
    return with_vote, without_vote


def test_fig3_consistency_by_difficulty(benchmark, bird):
    with_vote, without_vote = benchmark.pedantic(
        _compute, args=(bird,), rounds=1, iterations=1
    )
    with_breakdown = with_vote.ex_by_difficulty()
    without_breakdown = without_vote.ex_by_difficulty()
    rows = []
    gains = {}
    for difficulty in ("simple", "moderate", "challenging"):
        gain = with_breakdown[difficulty] - without_breakdown[difficulty]
        gains[difficulty] = gain
        rows.append(
            [difficulty, without_breakdown[difficulty], with_breakdown[difficulty], gain]
        )
    print()
    print(
        format_table(
            ["Difficulty", "w/o SC&Vote", "w/ SC&Vote", "gain"],
            rows,
            title=(
                "Figure 3: EX by difficulty with and without Consistency & "
                "Vote (paper: largest gain on challenging, +7.64)"
            ),
        )
    )

    # Vote never hurts materially at any difficulty.
    assert all(gain >= -2.0 for gain in gains.values())

    # The gain is largest on challenging questions (the Figure 3 shape).
    assert gains["challenging"] >= gains["simple"] - 0.5
    assert gains["challenging"] >= gains["moderate"] - 0.5

    # Accuracy falls with difficulty in both settings.
    assert with_breakdown["simple"] >= with_breakdown["challenging"]
    assert without_breakdown["simple"] >= without_breakdown["challenging"]
