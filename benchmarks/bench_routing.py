"""Routing — cost-tiered serving: fast path, escalation, replay fidelity.

Not a paper table: this bench certifies the adaptive routing subsystem's
three acceptance properties on a fixed seed:

1. **cost/quality** — on a mixed-difficulty serving profile (65% simple /
   20% moderate / 15% challenging, drawn from MINI-DEV) the tiered
   pipeline cuts tokens per request by >=30% versus the always-FULL
   baseline while losing at most 1 point of EX (it gains: the no-CoT
   fast path sidesteps the mini skill's CoT weakness on simples);
2. **observability** — tier decisions and escalation events are visible
   end to end: per-example traces carry ``tier:*`` spans with cost
   deltas, and a routed ServingEngine exports ``repro_routing_*``
   counters plus a ``routing`` collector through its MetricsRegistry;
3. **replay fidelity** — a journaled routing run killed mid-stream
   recovers to a byte-identical report: the router is deterministic by
   seed, so replay re-routes every uncommitted request to the same tier.

Sizes shrink under ``REPRO_ROUTING_SMOKE=1`` so CI can run this as a
smoke test.
"""

import json
import os
import tempfile
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.bird import mini_dev
from repro.evaluation.report import format_table
from repro.evaluation.runner import evaluate_pipeline
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.observability.metrics import MetricsRegistry
from repro.routing import RoutingConfig, TieredPipeline
from repro.serving import ServingEngine, zipf_workload
from repro.serving.journal import ServingJournal, assemble_report, recover_run

SMOKE = bool(int(os.environ.get("REPRO_ROUTING_SMOKE", "0")))
#: serving-traffic difficulty mix (BIRD dev is roughly 62/24/14); the
#: profile is the first-k examples per difficulty from a 200-example
#: MINI-DEV sample, so it is stable across runs
PROFILE_MIX = (
    {"simple": 13, "moderate": 4, "challenging": 3}
    if SMOKE
    else {"simple": 65, "moderate": 20, "challenging": 15}
)
N_CANDIDATES = 11 if SMOKE else 21
#: kill/recover load: (requests, distinct) over the profile's examples
JOURNAL_LOAD = (12, 6) if SMOKE else (30, 12)
KILL_AFTER = 5
SEED = 0

MIN_TOKEN_REDUCTION = 0.30
MAX_EX_DROP = 1.0


def _profile(bird):
    """The mixed-difficulty serving workload (fixed per-difficulty order)."""
    pool = mini_dev(bird, size=200)
    by_difficulty: dict[str, list] = {}
    for example in pool:
        by_difficulty.setdefault(example.difficulty, []).append(example)
    examples = []
    for difficulty, count in PROFILE_MIX.items():
        examples.extend(by_difficulty[difficulty][:count])
    return examples


def _full_pipeline(bird):
    llm = SimulatedLLM(GPT_4O, seed=SEED)
    return OpenSearchSQL(bird, llm, PipelineConfig(n_candidates=N_CANDIDATES))


def _tiered_pipeline(bird):
    # Fresh base per tiered wrapper: the router memo and fast-path stages
    # hang off the wrapped pipeline's artifacts.
    return TieredPipeline(_full_pipeline(bird), RoutingConfig())


def _tokens_per_request(report) -> float:
    document = report.deterministic_dict()
    return document["total_tokens"] / document["count"]


def _report_bytes(report) -> bytes:
    return json.dumps(report.deterministic_dict(), sort_keys=True).encode()


def _compute(bird):
    results = {}
    examples = _profile(bird)

    # 1. Cost/quality: always-FULL baseline vs tiered, same examples.
    results["full"] = evaluate_pipeline(_full_pipeline(bird), examples)
    tiered = _tiered_pipeline(bird)
    results["tiered"] = evaluate_pipeline(tiered, examples, tracing=True)
    results["routing_stats"] = tiered.routing_stats()

    # 2. Metrics: a routed engine exports tier/escalation counters.
    requests, distinct = JOURNAL_LOAD
    load = zipf_workload(examples[:distinct], requests, skew=1.2, seed=SEED)
    registry = MetricsRegistry()
    with ServingEngine(
        _tiered_pipeline(bird),
        workers=1,
        queue_capacity=len(load),
        metrics=registry,
    ) as engine:
        engine.run(load)
        results["engine_stats"] = engine.stats()
    results["metrics_render"] = registry.render()
    results["metrics_snapshot"] = registry.snapshot()

    # 3. Kill/recover: journal a routed run, truncate it after KILL_AFTER
    # commits (the crash), then recover on a fresh pipeline and compare
    # reports byte for byte.
    with tempfile.TemporaryDirectory(prefix="bench-routing-") as tmp:
        full_path = Path(tmp) / "journal.jsonl"
        journal = ServingJournal(full_path)
        journal.write_header({"bench": "routing", "seed": SEED})
        outcomes = recover_run(journal, _tiered_pipeline(bird), load)
        uninterrupted = assemble_report(outcomes, load, tiered, name="routed")

        # Simulate the kill: keep the header plus the first KILL_AFTER
        # committed records (and any accepted markers before them).
        killed_path = Path(tmp) / "journal-killed.jsonl"
        commits = 0
        with full_path.open(encoding="utf-8") as src, killed_path.open(
            "w", encoding="utf-8"
        ) as dst:
            for line in src:
                record = json.loads(line)
                if record.get("type") == "committed":
                    commits += 1
                dst.write(line)
                if commits >= KILL_AFTER:
                    break
        recovered_journal = ServingJournal(killed_path)
        recovered = assemble_report(
            recover_run(recovered_journal, _tiered_pipeline(bird), load),
            load,
            tiered,
            name="routed",
        )
        results["uninterrupted"] = _report_bytes(uninterrupted)
        results["recovered"] = _report_bytes(recovered)
        results["report_meta"] = uninterrupted.meta
    return results


def test_routing_cost_tiers(benchmark, bird):
    results = benchmark.pedantic(_compute, args=(bird,), rounds=1, iterations=1)

    full, tiered = results["full"], results["tiered"]
    stats = results["routing_stats"]
    tpr_full = _tokens_per_request(full)
    tpr_tiered = _tokens_per_request(tiered)
    reduction = (tpr_full - tpr_tiered) / tpr_full

    rows = [
        ["always-FULL", full.ex, round(tpr_full), "-"],
        ["tiered", tiered.ex, round(tpr_tiered), f"{reduction:.1%}"],
    ]
    print()
    print(format_table(
        ["Pipeline", "EX", "tokens/req", "reduction"], rows,
        title=f"Routing: cost tiers on the mixed-difficulty profile "
              f"(n={full.deterministic_dict()['count']})",
    ))
    print(f"decisions   : {stats['decisions']}")
    print(f"final tiers : {stats['final_tiers']}")
    print(f"escalations : {stats['escalations']}")
    print(f"tokens/tier : {stats['tokens_by_tier']}")

    # (a) The certified trade: >=30% fewer tokens/request, <=1pt EX drop.
    assert reduction >= MIN_TOKEN_REDUCTION, (tpr_full, tpr_tiered)
    assert full.ex - tiered.ex <= MAX_EX_DROP, (full.ex, tiered.ex)

    # The router actually split the traffic (both tiers saw requests) and
    # at least one escalation fired and was accounted for.
    assert stats["decisions"].get("fast", 0) > 0
    assert stats["final_tiers"].get("full", 0) > 0
    assert sum(stats["escalations"].values()) > 0

    # (b) Observability: every traced example carries tier spans, and
    # escalated examples carry one span per attempted tier.
    tier_spans_seen = set()
    assert tiered.traces
    for trace in tiered.traces.values():
        spans = [s for s in trace.spans() if s.name.startswith("tier:")]
        assert spans, trace.question_id
        tier_spans_seen.update(s.name for s in spans)
    assert "tier:fast" in tier_spans_seen and "tier:full" in tier_spans_seen

    render = results["metrics_render"]
    assert "repro_routing_tier_total" in render
    assert "repro_routing_tokens_total" in render
    assert "routing" in results["metrics_snapshot"]["collected"]
    engine_stats = results["engine_stats"]
    assert engine_stats.completed == JOURNAL_LOAD[0]
    assert engine_stats.failed == 0

    # (c) Replay fidelity: the killed-and-recovered report is the
    # uninterrupted report, byte for byte, and it is tier-annotated.
    assert results["recovered"] == results["uninterrupted"]
    assert results["report_meta"].get("tier_mix"), results["report_meta"]
