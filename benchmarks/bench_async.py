"""Async serving — single-flight coalescing + micro-batched LLM calls.

Certifies the async engine's acceptance properties on a fixed seed:

1. **equal EX** — on the same Zipf workload the async engine serves
   byte-identical SQL to the threaded engine (coalescing and batching
   change *when* work happens, never *what* is answered);
2. **>2x virtual throughput** — the async makespan (backend-busy
   seconds: one continuously-batching backend, one API overhead + the
   slowest member's decode per batched invocation) beats the threaded
   engine's *ideal* makespan — total simulated decode seconds split
   evenly across workers — by more than 2x.  The ideal split is both
   deterministic (the engine's real busiest-worker makespan wobbles
   with thread scheduling) and conservative: real imbalance only makes
   the threaded engine slower;
3. **nonzero coalescing/batching** — the win is attributable: the run
   reports coalesced followers and >= 2-member batched invocations, and
   both counters are deterministic across runs (the CI determinism diff
   relies on this).

Sizes shrink under ``REPRO_ASYNC_SMOKE=1`` so CI can run this as a
smoke test.
"""

import os

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.evaluation.report import format_table
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.observability.metrics import MetricsRegistry
from repro.serving import (
    AsyncServingEngine,
    ServingEngine,
    normalize_question,
    zipf_workload,
)

SMOKE = bool(int(os.environ.get("REPRO_ASYNC_SMOKE", "0")))
#: requests / distinct questions in the Zipf pool
LOAD = (32, 8) if SMOKE else (64, 16)
N_CANDIDATES = 5 if SMOKE else 11
WORKERS = 4
ZIPF_SKEW = 1.2
SEED = 0


def _pipeline(bird):
    # Fresh pipeline per engine: both engines wire wrappers (cache tiers,
    # batching shim) onto the pipeline's stage objects at construction.
    llm = SimulatedLLM(GPT_4O, seed=SEED)
    return OpenSearchSQL(bird, llm, PipelineConfig(n_candidates=N_CANDIDATES))


def _compute(bird):
    requests, distinct = LOAD
    load = zipf_workload(bird.dev[:distinct], requests, skew=ZIPF_SKEW, seed=SEED)

    # The equal-answers reference: the threaded engine with its default
    # cache tiers, whose result-cache key is the async engine's dedup key
    # (two raw questions normalizing identically are served one answer by
    # both engines).
    with ServingEngine(
        _pipeline(bird), workers=WORKERS, queue_capacity=len(load)
    ) as engine:
        threaded_results = engine.run(load)
        threaded = engine.stats()

    # The deterministic cost baseline: one bare pipeline run per unique
    # raw question, weighted by multiplicity — exactly what the threaded
    # engine pays per request with caches off.  A live caches-on engine
    # can't provide this number: whether a repeat hits the result tier
    # depends on thread timing (no single-flight — that is the tentpole),
    # so its measured makespan is scheduling-dependent.
    costs: dict = {}
    cost_pipeline = _pipeline(bird)
    for example in load:
        key = (example.db_id, example.question)
        if key not in costs:
            costs[key] = cost_pipeline.answer(example).cost.total_model_seconds
    baseline_model_seconds = sum(costs[(e.db_id, e.question)] for e in load)

    metrics = MetricsRegistry()
    with AsyncServingEngine(
        _pipeline(bird),
        workers=WORKERS,
        queue_capacity=len(load),
        metrics=metrics,
    ) as engine:
        async_results = engine.run(load)
        first = engine.stats()
        # Second pass on the warmed engine: every repeat is a result-tier
        # hit now, nothing left to coalesce.
        engine.reset_stats()
        warm_results = engine.run(load)
        warm = engine.stats()

    return {
        "load": load,
        "threaded": threaded,
        "threaded_results": threaded_results,
        "baseline_model_seconds": baseline_model_seconds,
        "async": first,
        "async_results": async_results,
        "warm": warm,
        "warm_results": warm_results,
        "metrics": metrics.to_json(),
    }


def test_async_engine(benchmark, bird):
    results = benchmark.pedantic(_compute, args=(bird,), rounds=1, iterations=1)

    threaded, astats, warm = results["threaded"], results["async"], results["warm"]
    requests, distinct = LOAD

    # Deterministic threaded baseline: per-request standalone decode
    # seconds split evenly across workers.  Conservative — real worker
    # imbalance only makes the threaded engine slower than this ideal.
    threaded_makespan = results["baseline_model_seconds"] / WORKERS
    threaded_rps = threaded.completed / threaded_makespan

    rows = [
        ["threaded", threaded.completed, round(threaded_makespan, 1),
         round(threaded_rps, 3), "-", "-"],
        ["async", astats.completed, round(astats.makespan_seconds, 1),
         round(astats.throughput_rps, 3), astats.coalesced, astats.batched_calls],
    ]
    print()
    print(format_table(
        ["Engine", "completed", "makespan s", "req/s", "coalesced", "batched"],
        rows,
        title=f"Async vs threaded ({requests} requests / {distinct} distinct, "
              f"zipf {ZIPF_SKEW}, workers {WORKERS})",
    ))
    print(astats.format())
    speedup = astats.throughput_rps / threaded_rps
    print(f"\nvirtual speedup: {speedup:.2f}x")

    # (a) Equal answers: coalescing/batching never change what is served.
    threaded_sql = [r.final_sql if r else None for r in results["threaded_results"]]
    async_sql = [r.final_sql if r else None for r in results["async_results"]]
    assert threaded_sql == async_sql
    assert None not in async_sql
    assert threaded.completed == astats.completed == requests

    # (b) The certified headline: >2x virtual throughput at equal workers.
    assert speedup > 2.0, (astats.throughput_rps, threaded_rps)

    # (c) The win is attributable and deterministic: one leader per
    # distinct question (cold run), every repeat coalesced; batched
    # invocations covered >= 2 members; the barrier never timed out.
    # dedup is by (db_id, normalized question) — dev pools can contain
    # distinct question ids with identical text, which also coalesce
    distinct_keys = len(
        {(e.db_id, normalize_question(e.question)) for e in results["load"]}
    )
    assert astats.coalesced == requests - distinct_keys
    assert astats.batched_calls > 0
    assert astats.max_batch >= 2
    assert astats.safety_timeouts == 0
    assert "repro_async_coalesced_total" in results["metrics"]
    assert "repro_async_batched_calls_total" in results["metrics"]

    # (d) A warmed second pass serves repeats from the result tier —
    # nothing left to coalesce, answers unchanged.
    warm_sql = [r.final_sql if r else None for r in results["warm_results"]]
    assert warm_sql == async_sql
    assert warm.coalesced == 0
    assert warm.result_hits == requests
