"""Shared benchmark fixtures: benchmarks are built once per session, and
every bench prints the paper-table it regenerates."""

from __future__ import annotations

import pytest

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from repro.core.config import PipelineConfig
from repro.datasets.bird import build_bird_like, mini_dev
from repro.datasets.spider import build_spider_like


@pytest.fixture(scope="session")
def bird():
    return build_bird_like()


@pytest.fixture(scope="session")
def spider():
    return build_spider_like()


@pytest.fixture(scope="session")
def bird_mini(bird):
    """The MINI-DEV analogue used for ablation benches (paper §4.1)."""
    return mini_dev(bird, size=200)


@pytest.fixture(scope="session")
def run_config():
    """The paper's submitted configuration (21-candidate vote)."""
    return PipelineConfig(n_candidates=21)

