"""Ablation bench — retrieval index: exact (flat) vs HNSW.

The paper's §4.6 cost analysis credits HNSW with making retrieval latency
negligible.  This bench measures (a) EX parity between the exact index and
HNSW (approximate recall must not cost accuracy at these corpus sizes) and
(b) the per-query retrieval latency of both index structures on the
largest value corpus in the suite.
"""

import time

import numpy as np

from _helpers import run_pipeline
from repro.core.config import PipelineConfig
from repro.embedding.hnsw import HNSWIndex
from repro.embedding.index import FlatIndex
from repro.embedding.vectorizer import HashingVectorizer
from repro.evaluation.report import format_table


def _latency(index, queries, k=5):
    start = time.perf_counter()
    for query in queries:
        index.search(query, k=k)
    return (time.perf_counter() - start) / len(queries)


def _compute(bird, bird_mini):
    flat_report = run_pipeline(
        bird, bird_mini, PipelineConfig(n_candidates=9, vector_index="flat")
    )
    hnsw_report = run_pipeline(
        bird, bird_mini, PipelineConfig(n_candidates=9, vector_index="hnsw")
    )

    # Latency micro-measurement on a large synthetic value corpus.
    vectorizer = HashingVectorizer()
    rng = np.random.default_rng(0)
    corpus = [f"stored value number {i} variant {int(rng.integers(100))}"
              for i in range(10_000)]
    flat = FlatIndex(vectorizer.dimensions)
    # Accuracy-critical setting: wider search beam than the default (the
    # corpus is pathologically clustered — thousands of near-duplicates).
    hnsw = HNSWIndex(
        vectorizer.dimensions, m=16, ef_construction=160, ef_search=160, seed=0
    )
    vectors = [vectorizer.embed(text) for text in corpus]
    for text, vector in zip(corpus, vectors):
        flat.add(text, vector)
        hnsw.add(text, vector)
    queries = [vectorizer.embed(f"value number {i}") for i in range(50)]
    flat_latency = _latency(flat, queries)
    hnsw_latency = _latency(hnsw, queries)

    # Recall of HNSW vs exact on this corpus.
    hits = total = 0
    for query in queries:
        exact = {h.key for h in flat.search(query, k=5)}
        approx = {h.key for h in hnsw.search(query, k=5)}
        hits += len(exact & approx)
        total += len(exact)
    recall = hits / total
    return flat_report, hnsw_report, flat_latency, hnsw_latency, recall


def test_retrieval_index_ablation(benchmark, bird, bird_mini):
    flat_report, hnsw_report, flat_latency, hnsw_latency, recall = (
        benchmark.pedantic(_compute, args=(bird, bird_mini), rounds=1, iterations=1)
    )
    print()
    print(
        format_table(
            ["Index", "EX", "latency/query (ms, 10k values)"],
            [
                ["flat (exact)", flat_report.ex, flat_latency * 1000],
                ["HNSW", hnsw_report.ex, hnsw_latency * 1000],
            ],
            title="Ablation: retrieval index structure (paper §4.6)",
        )
    )
    print(f"HNSW recall@5 vs exact: {recall:.3f}")

    # Accuracy parity: approximate retrieval must not cost EX.
    assert abs(flat_report.ex - hnsw_report.ex) <= 4.0
    # HNSW recall stays high at this corpus size.
    assert recall >= 0.85
    # Both are far below the LLM call latency the paper reports (seconds).
    assert hnsw_latency < 0.05
