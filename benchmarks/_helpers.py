"""Shared helpers for the benchmark harness (imported by bench modules)."""

from __future__ import annotations

from repro.core.pipeline import OpenSearchSQL
from repro.evaluation.runner import evaluate_pipeline
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O

__all__ = ["run_pipeline"]


def run_pipeline(benchmark_data, examples, config, skill=GPT_4O, seed=0, name=None):
    """Build and evaluate one pipeline configuration."""
    pipeline = OpenSearchSQL(benchmark_data, SimulatedLLM(skill, seed=seed), config)
    return evaluate_pipeline(pipeline, examples, name=name)
