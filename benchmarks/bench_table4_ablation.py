"""Table 4 — modular ablation: EX_G / EX_R / EX with each module removed,
on the MINI-DEV analogue.

Paper (full pipeline 65.8 / 68.2 / 70.6) reports that every removal hurts,
with few-shot the largest single factor (EX -4.6) and the pipeline's EX
increasing monotonically across stages.  The bench regenerates all rows
and asserts those shapes.
"""

from _helpers import run_pipeline
from repro.core.config import PipelineConfig
from repro.evaluation.report import format_table

ABLATIONS = [
    ("Full pipeline", {}),
    ("w/o Extraction", {"use_extraction": False}),
    ("w/o Values Retrieval", {"use_values_retrieval": False}),
    ("w/o Column Filtering", {"use_column_filtering": False}),
    ("w/o Info Alignment", {"use_info_alignment": False}),
    ("w/o Few-shot", {"fewshot_style": "none"}),
    ("w/o CoT", {"cot_mode": "none"}),
    ("w/o Alignments", {"use_alignments": False}),
    ("w/o Refinement", {"use_refinement": False}),
    ("w/o Correction", {"use_correction": False}),
    ("w/o Self-Consistency & Vote", {"use_self_consistency": False}),
]


def _compute(bird, bird_mini):
    base = PipelineConfig(n_candidates=21)
    results = {}
    for name, changes in ABLATIONS:
        report = run_pipeline(bird, bird_mini, base.with_(**changes), name=name)
        results[name] = report
    return results


def test_table4_modular_ablation(benchmark, bird, bird_mini):
    results = benchmark.pedantic(
        _compute, args=(bird, bird_mini), rounds=1, iterations=1
    )
    full = results["Full pipeline"]
    rows = []
    for name, _changes in ABLATIONS:
        report = results[name]
        rows.append(
            [
                name,
                report.ex_g,
                report.ex_g - full.ex_g,
                report.ex_r,
                report.ex_r - full.ex_r,
                report.ex,
                report.ex - full.ex,
            ]
        )
    print()
    print(
        format_table(
            ["Pipeline Setup", "EX_G", "dG", "EX_R", "dR", "EX", "dEX"],
            rows,
            title=(
                "Table 4: ablation on MINI-DEV "
                "(paper full pipeline: EX_G 65.8, EX_R 68.2, EX 70.6)"
            ),
        )
    )

    slack = 2.5  # percentage points (150-example sample)

    # EX increases monotonically across the pipeline stages.
    assert full.ex_g <= full.ex_r + 1
    assert full.ex_r <= full.ex + 1

    # Every ablation is at most slack better than the full pipeline.
    for name, _ in ABLATIONS[1:]:
        assert results[name].ex <= full.ex + slack, name

    # Generation-stage modules show up at EX_G.
    for name in ("w/o Extraction", "w/o Few-shot", "w/o CoT", "w/o Values Retrieval"):
        assert results[name].ex_g <= full.ex_g + 1, name

    # Few-shot is the largest single EX factor (paper: -4.6).
    fewshot_drop = full.ex - results["w/o Few-shot"].ex
    other_drops = [
        full.ex - results[name].ex
        for name, _ in ABLATIONS[1:]
        if name not in ("w/o Few-shot", "w/o Extraction")
    ]
    assert fewshot_drop >= max(other_drops) - slack

    # Refinement-only modules leave EX_G untouched (they act after it).
    for name in ("w/o Alignments", "w/o Refinement", "w/o Correction",
                 "w/o Self-Consistency & Vote"):
        assert abs(results[name].ex_g - full.ex_g) < 0.01, name
