"""Legacy setup shim so `pip install -e .` works on environments without
the `wheel` package (PEP 660 editable builds need it; `setup.py develop`
does not)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of OpenSearch-SQL: Enhancing Text-to-SQL with "
        "Dynamic Few-shot and Consistency Alignment (SIGMOD 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
