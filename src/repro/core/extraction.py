"""Extraction stage (paper §3.4): entity extraction, values retrieval,
column filtering and the Info Alignment that closes the stage.

Everything here is real retrieval machinery — the only LLM involvement is
the entity-extraction and column-selection calls; values retrieval runs on
the preprocessed vector indexes, and the multi-path column recall unions
the LLM's picks with embedding hits, exactly as §3.4 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import PipelineConfig
from repro.core.cost import CostTracker
from repro.core.preprocessing import PreprocessedDatabase, ValueEntry
from repro.datasets.types import Example
from repro.embedding.vectorizer import HashingVectorizer
from repro.llm.base import LLMClient
from repro.llm.prompts import (
    column_selection_prompt,
    entity_extraction_prompt,
    select_alignment_prompt,
)
from repro.llm.tasks import (
    ColumnSelectionTask,
    EntityExtractionTask,
    SelectAlignmentTask,
)
from repro.schema.model import Database

__all__ = ["RetrievedValue", "ExtractionResult", "Extractor"]


@dataclass(frozen=True)
class RetrievedValue:
    """A stored value retrieved for the question, with its similarity."""

    table: str
    column: str
    value: str
    score: float

    def render(self) -> str:
        """Prompt form: ``table.column = 'value'``."""
        return f"{self.table}.{self.column} = '{self.value}'"


@dataclass
class ExtractionResult:
    """Everything the Extraction stage hands to Generation."""

    entities: list[str] = field(default_factory=list)
    values: list[RetrievedValue] = field(default_factory=list)
    schema: Optional[Database] = None
    schema_prompt: str = ""
    select_hints: list[str] = field(default_factory=list)
    schema_filtered: bool = False

    @property
    def provided_values(self) -> tuple[str, ...]:
        """Rendered value strings exactly as the prompt will carry them."""
        return tuple(value.render() for value in self.values)


class Extractor:
    """Runs the Extraction stage for one question."""

    def __init__(
        self,
        llm: LLMClient,
        config: Optional[PipelineConfig] = None,
        vectorizer: Optional[HashingVectorizer] = None,
    ):
        self.llm = llm
        self.config = config or PipelineConfig()
        self.vectorizer = vectorizer or HashingVectorizer()

    # -------------------------------------------------------------- pieces

    def extract_entities(
        self,
        example: Example,
        pre: PreprocessedDatabase,
        cost: Optional[CostTracker] = None,
    ) -> list[str]:
        """LLM entity extraction (plus predefined terms from the evidence)."""
        prompt = entity_extraction_prompt(
            example.question, example.evidence, pre.schema_prompt
        )
        responses = self.llm.complete(
            prompt,
            temperature=self.config.extraction_temperature,
            n=1,
            task=EntityExtractionTask(example=example, schema=pre.schema),
        )
        if cost is not None:
            cost.record_responses("extraction", responses)
        return [line.strip() for line in responses[0].text.splitlines() if line.strip()]

    def retrieve_values(
        self, entities: list[str], pre: PreprocessedDatabase
    ) -> list[RetrievedValue]:
        """Vector retrieval of stored values for each entity.

        Long phrases are additionally split and retrieved piecewise (the
        paper's split retrieval) to survive storage-format differences.
        Hits below the similarity threshold are dropped.
        """
        queries: list[str] = []
        for entity in entities:
            queries.append(entity)
            words = entity.split()
            if len(words) >= 4:
                half = len(words) // 2
                queries.append(" ".join(words[:half]))
                queries.append(" ".join(words[half:]))
            if len(words) >= 3:
                # Word-level split retrieval: long phrases often contain the
                # stored value as a single word buried in question prose.
                queries.extend(word for word in words if len(word) >= 4)
        best: dict[tuple[str, str, str], float] = {}
        for query in queries:
            vector = self.vectorizer.embed(query)
            for hit in pre.value_index.search(vector, k=self.config.retrieval_top_k):
                if hit.score < self.config.similarity_threshold:
                    continue
                entry: ValueEntry = hit.payload  # type: ignore[assignment]
                key = (entry.table, entry.column, entry.value)
                if hit.score > best.get(key, 0.0):
                    best[key] = hit.score
        ordered = sorted(best.items(), key=lambda kv: -kv[1])
        return [
            RetrievedValue(table=t, column=c, value=v, score=score)
            for (t, c, v), score in ordered
        ]

    def select_columns(
        self,
        example: Example,
        pre: PreprocessedDatabase,
        entities: list[str],
        cost: Optional[CostTracker] = None,
    ) -> dict[str, set[str]]:
        """Multi-path column recall: LLM selection ∪ embedding retrieval."""
        keep: dict[str, set[str]] = {}

        prompt = column_selection_prompt(
            example.question, example.evidence, pre.schema_prompt
        )
        responses = self.llm.complete(
            prompt,
            temperature=self.config.extraction_temperature,
            n=1,
            task=ColumnSelectionTask(example=example, schema=pre.schema),
        )
        if cost is not None:
            cost.record_responses("extraction", responses)
        for line in responses[0].text.splitlines():
            line = line.strip()
            if "." not in line:
                continue
            table, _dot, column = line.partition(".")
            if pre.schema.has_table(table) and pre.schema.table(table).has_column(column):
                keep.setdefault(pre.schema.table(table).name, set()).add(column)

        # Embedding path: columns similar to any extracted entity.
        for entity in entities:
            vector = self.vectorizer.embed(entity)
            for hit in pre.column_index.search(vector, k=3):
                if hit.score < self.config.similarity_threshold:
                    continue
                table, column = hit.payload  # type: ignore[misc]
                keep.setdefault(table, set()).add(column)
        return keep

    def info_alignment(
        self,
        example: Example,
        pre: PreprocessedDatabase,
        keep: dict[str, set[str]],
        values: list[RetrievedValue],
        cost: Optional[CostTracker] = None,
    ) -> tuple[dict[str, set[str]], list[str]]:
        """Info Alignment (paper §3.4 closing step).

        Expands the schema subset with (a) the columns of every retrieved
        value, (b) every same-name twin of a selected column — the guard
        against same-name mix-ups — and asks the LLM for SELECT-style
        hints matching NLQ phrases 1:1 with outputs.
        """
        expanded = {table: set(columns) for table, columns in keep.items()}
        for value in values:
            expanded.setdefault(value.table, set()).add(value.column)
        for _table, columns in list(expanded.items()):
            for column in list(columns):
                for twin_table, twin_column in pre.schema.same_name_columns(column):
                    expanded.setdefault(twin_table, set()).add(twin_column)

        prompt = select_alignment_prompt(example.question, sorted(
            {c for cols in expanded.values() for c in cols}
        ))
        responses = self.llm.complete(
            prompt,
            temperature=self.config.extraction_temperature,
            n=1,
            task=SelectAlignmentTask(oracle=example, schema=pre.schema),
        )
        if cost is not None:
            cost.record_responses("alignments", responses)
        hints = [
            line.strip() for line in responses[0].text.splitlines() if line.strip()
        ]
        return expanded, hints

    # ----------------------------------------------------------------- run

    def run(
        self,
        example: Example,
        pre: PreprocessedDatabase,
        cost: Optional[CostTracker] = None,
        span=None,
    ) -> ExtractionResult:
        """Run the configured extraction pipeline for one question.

        ``span`` (when tracing) receives stage annotations — entity,
        value and select-hint counts and whether the schema was filtered.
        """
        config = self.config
        result = ExtractionResult()

        if not config.use_extraction:
            # Bypass: the full schema goes to generation, no values.
            result.schema = pre.schema
            result.schema_prompt = pre.schema_prompt
            if span is not None:
                span.set("bypassed", True)
            return result

        result.entities = self.extract_entities(example, pre, cost)

        if config.use_values_retrieval:
            result.values = self.retrieve_values(result.entities, pre)

        if config.use_column_filtering:
            keep = self.select_columns(example, pre, result.entities, cost)
        else:
            keep = {
                table.name: {c.name for c in table.columns}
                for table in pre.schema.tables
            }

        if config.use_info_alignment:
            keep, result.select_hints = self.info_alignment(
                example, pre, keep, result.values, cost
            )
        # Without Info Alignment the retrieved values' columns are still
        # known to generation via the values list, but the schema subset is
        # not expanded for them.

        if config.use_column_filtering:
            subset = pre.schema.subset(keep)
            if not subset.tables:
                subset = pre.schema
            result.schema = subset
            result.schema_filtered = True
        else:
            result.schema = pre.schema

        from repro.schema.serialize import schema_to_prompt

        result.schema_prompt = (
            schema_to_prompt(result.schema)
            if result.schema_filtered
            else pre.schema_prompt
        )
        if span is not None:
            span.set("entities", len(result.entities))
            span.set("values_retrieved", len(result.values))
            span.set("select_hints", len(result.select_hints))
            span.set("schema_filtered", result.schema_filtered)
        return result
