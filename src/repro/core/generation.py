"""Generation stage (paper §3.5): progressive structured-CoT generation of
candidate SQLs through the SQL-Like intermediate language.

The generator renders the full prompt (schema subset, retrieved values,
dynamic Query-CoT-SQL few-shots, CoT rules, SELECT hints), samples
``n_candidates`` completions at the configured temperature, and parses the
``#SQL:`` payload out of each structured completion.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import PipelineConfig
from repro.core.cost import CostTracker
from repro.core.extraction import ExtractionResult
from repro.core.fewshot import FewShotLibrary
from repro.datasets.types import Example
from repro.llm.base import LLMClient
from repro.llm.prompts import generation_prompt
from repro.llm.tasks import GenerationTask, PromptFeatures

__all__ = ["Candidate", "GenerationResult", "Generator", "parse_sql_from_completion"]

_SQL_LINE = re.compile(r"^#SQL:\s*(.+)$", re.MULTILINE)


def parse_sql_from_completion(text: str) -> Optional[str]:
    """Extract the SQL payload from a structured completion.

    The last ``#SQL:`` line wins (correction completions may quote the
    failed SQL earlier in the text).  Falls back to the last line that
    starts with SELECT when the model ignored the format.
    """
    matches = _SQL_LINE.findall(text)
    if matches:
        return matches[-1].strip()
    for line in reversed(text.splitlines()):
        stripped = line.strip()
        if stripped.upper().startswith("SELECT"):
            return stripped
    return None


@dataclass
class Candidate:
    """One generated candidate: raw completion plus the parsed SQL."""

    completion: str
    sql: Optional[str]


@dataclass
class GenerationResult:
    """All candidates for one question plus the features the prompt had."""

    candidates: list[Candidate] = field(default_factory=list)
    features: Optional[PromptFeatures] = None
    prompt: str = ""

    @property
    def sqls(self) -> list[str]:
        """Parsed SQL of every candidate that produced one."""
        return [c.sql for c in self.candidates if c.sql]


class Generator:
    """Runs the Generation stage for one question."""

    def __init__(self, llm: LLMClient, config: Optional[PipelineConfig] = None):
        self.llm = llm
        self.config = config or PipelineConfig()

    def build_features(
        self,
        extraction: ExtractionResult,
        few_shot_templates: tuple[str, ...],
        few_shot_count: int = 0,
    ) -> PromptFeatures:
        """Describe the prompt honestly for the simulated model.

        ``fewshot_kind`` reports the configured style only when examples
        actually made it into the prompt — an empty library must not claim
        few-shot support.
        """
        config = self.config
        schema = extraction.schema
        fewshot_kind = (
            config.fewshot_style if few_shot_count > 0 else "none"
        )
        return PromptFeatures(
            provided_values=extraction.provided_values,
            schema_column_count=schema.column_count() if schema else 0,
            schema_table_count=len(schema.tables) if schema else 0,
            fewshot_kind=fewshot_kind,
            fewshot_template_ids=few_shot_templates,
            cot_mode=config.cot_mode,
            select_hints=bool(extraction.select_hints),
            schema_filtered=extraction.schema_filtered,
        )

    def run(
        self,
        example: Example,
        extraction: ExtractionResult,
        library: Optional[FewShotLibrary] = None,
        cost: Optional[CostTracker] = None,
        n_candidates: Optional[int] = None,
        span=None,
    ) -> GenerationResult:
        """Generate candidates for ``example`` given extraction output.

        ``span`` (when tracing) is annotated with the sampled width, the
        few-shot count and how many candidates parsed to SQL.
        """
        config = self.config
        few_shots: list[str] = []
        few_shot_templates: list[str] = []
        if config.fewshot_style != "none" and library is not None:
            surfaces = tuple(m.surface for m in example.value_mentions)
            entries = library.search(
                example.question, surfaces=surfaces, k=config.n_few_shot
            )
            for entry in entries:
                few_shots.append(entry.render(config.fewshot_style))
                few_shot_templates.append(entry.example.template_id)

        features = self.build_features(
            extraction, tuple(few_shot_templates), few_shot_count=len(few_shots)
        )
        prompt = generation_prompt(
            question=example.question,
            evidence=example.evidence,
            schema_text=extraction.schema_prompt,
            values=extraction.provided_values,
            few_shots=few_shots,
            cot_mode=config.cot_mode,
            select_hints=extraction.select_hints,
        )
        n = n_candidates if n_candidates is not None else config.n_candidates
        responses = self.llm.complete(
            prompt,
            temperature=config.generation_temperature,
            n=n,
            task=GenerationTask(oracle=example, schema=extraction.schema, features=features),
        )
        if cost is not None:
            cost.record_responses("generation", responses)
        candidates = [
            Candidate(completion=r.text, sql=parse_sql_from_completion(r.text))
            for r in responses
        ]
        if span is not None:
            span.set("n_candidates", n)
            span.set("few_shots", len(few_shots))
            span.set("parsed_sqls", sum(1 for c in candidates if c.sql))
        return GenerationResult(candidates=candidates, features=features, prompt=prompt)
