"""Refinement stage (paper §3.6, Figure 2): alignment → correction →
self-consistency & vote.

Each candidate SQL is (optionally) aligned, executed, and — on execution
errors or empty results — corrected by an LLM call armed with the matching
error-typed few-shot (paper Listing 3).  The final SQL is selected by
Equation 3: majority execution result first, shortest execution time as
the tie-break; error/empty candidates are excluded from the vote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.alignment import apply_alignments
from repro.core.config import PipelineConfig
from repro.core.cost import CostTracker
from repro.core.extraction import ExtractionResult
from repro.core.generation import parse_sql_from_completion
from repro.core.preprocessing import CORRECTION_FEWSHOTS, PreprocessedDatabase
from repro.datasets.types import Example
from repro.embedding.vectorizer import HashingVectorizer
from repro.execution.executor import ExecutionOutcome, ExecutionStatus, SQLExecutor
from repro.llm.base import LLMClient
from repro.llm.prompts import correction_prompt
from repro.observability.context import use_span
from repro.reliability.deadline import Deadline
from repro.llm.tasks import CorrectionTask, PromptFeatures
from repro.sqlkit.parser import ParseError, parse_select
from repro.sqlkit.render import render
from repro.sqlkit.tokenizer import TokenizeError

__all__ = ["RefinedCandidate", "RefinementResult", "Refiner", "vote", "vote_share"]

#: error statuses caused by the database substrate, not the SQL text;
#: correction prompting is skipped for these (no few-shot can fix them)
_INFRASTRUCTURE_STATUSES = frozenset(
    {
        ExecutionStatus.LOCKED,
        ExecutionStatus.DISK_ERROR,
        ExecutionStatus.CONNECTION_ERROR,
    }
)


@dataclass
class RefinedCandidate:
    """One candidate's journey through refinement."""

    raw_sql: str
    aligned_sql: str
    final_sql: str
    outcome: Optional[ExecutionOutcome] = None
    corrected: bool = False


@dataclass
class RefinementResult:
    """Refinement output: the chosen SQL plus per-candidate traces."""

    final_sql: str
    candidates: list[RefinedCandidate] = field(default_factory=list)
    #: True when a deadline stopped refinement before all candidates ran
    truncated: bool = False

    @property
    def first_refined_sql(self) -> Optional[str]:
        """The first candidate's post-refinement SQL (the paper's EX_R
        observable: a single SQL before self-consistency & vote)."""
        return self.candidates[0].final_sql if self.candidates else None


def _result_key(outcome: ExecutionOutcome) -> tuple:
    """Hashable execution-result identity used for vote grouping.

    Row order is ignored (BIRD's comparison is order-insensitive unless
    the query orders), which keeps equivalent candidates in one bucket.
    """
    return tuple(sorted(
        tuple((cell is None, str(cell)) for cell in row) for row in outcome.rows
    ))


def vote(candidates: list[RefinedCandidate]) -> Optional[RefinedCandidate]:
    """Self-consistency & vote (paper Eq. 3).

    Excludes candidates that errored or returned empty results, groups the
    rest by execution result, picks the largest group, and within it the
    candidate with the shortest execution time.
    """
    valid = [
        c
        for c in candidates
        if c.outcome is not None and c.outcome.status is ExecutionStatus.OK
    ]
    if not valid:
        return None
    groups: dict[tuple, list[RefinedCandidate]] = {}
    order: list[tuple] = []
    for candidate in valid:
        key = _result_key(candidate.outcome)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(candidate)
    best_key = max(order, key=lambda key: len(groups[key]))
    bucket = groups[best_key]
    return min(bucket, key=lambda c: c.outcome.elapsed_seconds)


def vote_share(candidates: list[RefinedCandidate]) -> Optional[float]:
    """Share of valid candidates held by the winning result group.

    The self-consistency confidence signal the routing layer reads: a
    thin winning group means the vote barely agreed on the answer.
    Returns ``None`` when no candidate executed to a valid (OK) result.
    """
    valid = [
        c
        for c in candidates
        if c.outcome is not None and c.outcome.status is ExecutionStatus.OK
    ]
    if not valid:
        return None
    groups: dict[tuple, int] = {}
    for candidate in valid:
        key = _result_key(candidate.outcome)
        groups[key] = groups.get(key, 0) + 1
    return max(groups.values()) / len(valid)


class Refiner:
    """Runs the Refinement stage for one question's candidate set."""

    def __init__(
        self,
        llm: LLMClient,
        config: Optional[PipelineConfig] = None,
        vectorizer: Optional[HashingVectorizer] = None,
    ):
        self.llm = llm
        self.config = config or PipelineConfig()
        self.vectorizer = vectorizer or HashingVectorizer()

    # ----------------------------------------------------------- alignment

    def align(self, sql: str, pre: PreprocessedDatabase, executor: SQLExecutor) -> str:
        """Apply the post-generation alignments; unparseable SQL passes
        through untouched (the correction step will deal with it)."""
        if not self.config.use_alignments:
            return sql
        try:
            select = parse_select(sql)
        except (ParseError, TokenizeError):
            return sql
        aligned = apply_alignments(
            select, pre, executor, self.vectorizer, self.config.similarity_threshold
        )
        return render(aligned)

    # ---------------------------------------------------------- correction

    def correct(
        self,
        example: Example,
        sql: str,
        outcome: ExecutionOutcome,
        pre: PreprocessedDatabase,
        extraction: ExtractionResult,
        cost: Optional[CostTracker] = None,
    ) -> Optional[str]:
        """One correction round for a failed/empty candidate."""
        error_kind = (
            "empty" if outcome.status is ExecutionStatus.EMPTY else outcome.status.value
        )
        few_shots: list[str] = []
        fewshot_kind = "none"
        if self.config.refinement_fewshot:
            shot = CORRECTION_FEWSHOTS.get(error_kind)
            if shot:
                few_shots.append(shot)
                fewshot_kind = "query_sql"
        features = PromptFeatures(
            provided_values=extraction.provided_values,
            schema_column_count=extraction.schema.column_count() if extraction.schema else 0,
            schema_table_count=len(extraction.schema.tables) if extraction.schema else 0,
            fewshot_kind=fewshot_kind,
            cot_mode="none",
        )
        prompt = correction_prompt(
            question=example.question,
            failed_sql=sql,
            error_kind=error_kind,
            error_message=outcome.error or "Result: None",
            schema_text=extraction.schema_prompt,
            values=extraction.provided_values,
            few_shots=few_shots,
        )
        responses = self.llm.complete(
            prompt,
            temperature=self.config.generation_temperature,
            n=1,
            task=CorrectionTask(
                oracle=example,
                schema=extraction.schema or pre.schema,
                features=features,
                failed_sql=sql,
                error_kind=error_kind,
                error_message=outcome.error or "",
            ),
        )
        if cost is not None:
            cost.record_responses("refinement", responses)
        fixed = parse_sql_from_completion(responses[0].text)
        if fixed and fixed.strip() != sql.strip():
            return fixed
        return None

    # ----------------------------------------------------------------- run

    def run(
        self,
        example: Example,
        sqls: list[str],
        pre: PreprocessedDatabase,
        extraction: ExtractionResult,
        executor: SQLExecutor,
        cost: Optional[CostTracker] = None,
        deadline: Optional["Deadline"] = None,
        span=None,
    ) -> RefinementResult:
        """Refine all candidates and select the final SQL.

        ``deadline`` (when given) is checked before each candidate and each
        correction round, and caps every SQL execution at the remaining
        budget; hitting it stops further refinement (``truncated=True``)
        rather than raising — already-refined candidates still vote.

        ``span`` (when tracing) grows two children — ``alignment`` for the
        post-generation alignments and ``execution`` for the SQL runs of
        the align-execute-correct loop.  The execution span is published
        ambiently around each run, so executors and their wrappers
        (fault injection, hedging) attach their events to it.
        """
        config = self.config
        align_span = span.child("alignment") if span is not None else None
        exec_span = span.child("execution") if span is not None else None

        def align_traced(sql: str) -> str:
            # Alignment probes the database (value checks); publishing the
            # alignment span attributes those executions to it.
            with use_span(align_span):
                aligned = self.align(sql, pre, executor)
            if align_span is not None:
                align_span.event("align", changed=aligned.strip() != sql.strip())
            return aligned

        def execute_traced(sql: str) -> ExecutionOutcome:
            with use_span(exec_span):
                return executor.execute(sql, deadline)

        refined: list[RefinedCandidate] = []
        truncated = False
        for sql in sqls:
            if deadline is not None and deadline.expired:
                truncated = True
                break
            aligned = align_traced(sql)
            candidate = RefinedCandidate(raw_sql=sql, aligned_sql=aligned, final_sql=aligned)
            outcome = execute_traced(aligned)
            if (
                config.use_refinement
                and config.use_correction
                and outcome.status is not ExecutionStatus.OK
                # locked/disk/connection faults are not the SQL's fault —
                # retry, recycling and hedging recover them; an LLM rewrite
                # cannot.  TIMEOUT still corrects: a runaway join is the
                # SQL's fault even though a hedge may also clear it.
                and outcome.status not in _INFRASTRUCTURE_STATUSES
            ):
                current_sql, current = aligned, outcome
                for _round in range(config.max_correction_rounds):
                    if deadline is not None and deadline.expired:
                        truncated = True
                        break
                    fixed = self.correct(
                        example, current_sql, current, pre, extraction, cost
                    )
                    if fixed is None:
                        break
                    fixed = align_traced(fixed)
                    fixed_outcome = execute_traced(fixed)
                    if fixed_outcome.status is ExecutionStatus.OK or (
                        not fixed_outcome.status.is_error and current.status.is_error
                    ):
                        candidate.corrected = True
                        current_sql, current = fixed, fixed_outcome
                        break
                    current_sql, current = fixed, fixed_outcome
                candidate.final_sql, outcome = current_sql, current
            candidate.outcome = outcome
            refined.append(candidate)

        winner = None
        if config.use_refinement and config.use_self_consistency and len(refined) > 1:
            winner = vote(refined)
        if winner is None and refined:
            # Without self-consistency (or when every candidate failed) the
            # paper's single-SQL setting applies: take the first candidate.
            winner = refined[0]
        if winner is not None:
            final_sql = winner.final_sql
        else:
            # Deadline hit before any candidate ran: the first raw
            # candidate stands in unrefined.
            final_sql = sqls[0] if sqls else ""
        if span is not None:
            span.set("candidates", len(refined))
            span.set("corrected", sum(1 for c in refined if c.corrected))
            span.set("truncated", truncated)
            align_span.finish(deadline)
            exec_span.finish(deadline)
        return RefinementResult(
            final_sql=final_sql, candidates=refined, truncated=truncated
        )
