"""Per-module cost accounting (paper Table 6).

Every stage reports wall-clock time, simulated model latency and token
usage into a :class:`CostTracker`; the Table 6 bench aggregates trackers
across a workload into the same rows the paper prints.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.llm.base import TokenUsage

__all__ = ["StageCost", "CostTracker"]


@dataclass
class StageCost:
    """Accumulated cost of one pipeline stage."""

    wall_seconds: float = 0.0
    model_seconds: float = 0.0
    usage: TokenUsage = field(default_factory=TokenUsage)
    calls: int = 0

    def add_usage(self, usage: TokenUsage, model_seconds: float = 0.0) -> None:
        """Accumulate one call's token usage and model latency."""
        self.usage = self.usage + usage
        self.model_seconds += model_seconds
        self.calls += 1

    @property
    def total_tokens(self) -> int:
        """Prompt plus completion tokens across all recorded calls."""
        return self.usage.total_tokens

    @property
    def total_seconds(self) -> float:
        """Wall time of the stage plus the simulated model decode time
        (the simulator reports latency instead of sleeping it)."""
        return self.wall_seconds + self.model_seconds


class CostTracker:
    """Collects :class:`StageCost` per named stage."""

    def __init__(self):
        self._stages: dict[str, StageCost] = {}

    def stage(self, name: str) -> StageCost:
        """The (auto-created) accumulator for stage ``name``."""
        if name not in self._stages:
            self._stages[name] = StageCost()
        return self._stages[name]

    @contextmanager
    def timed(self, name: str):
        """Context manager accumulating wall time into stage ``name``."""
        start = time.perf_counter()
        try:
            yield self.stage(name)
        finally:
            self.stage(name).wall_seconds += time.perf_counter() - start

    def record_responses(self, name: str, responses) -> None:
        """Account a list of LLMResponse objects to stage ``name``."""
        stage = self.stage(name)
        usage = TokenUsage()
        model_seconds = 0.0
        for response in responses:
            usage = usage + response.usage
            model_seconds += response.latency_seconds
        stage.add_usage(usage, model_seconds)

    @property
    def stages(self) -> dict[str, StageCost]:
        """A copy of the per-stage accumulators."""
        return dict(self._stages)

    @property
    def total_model_seconds(self) -> float:
        """Simulated model decode latency summed over every stage — the
        per-request latency observable the serving layer aggregates."""
        return sum(stage.model_seconds for stage in self._stages.values())

    @property
    def total_tokens(self) -> int:
        """Prompt + completion tokens summed over every stage — with
        :attr:`total_model_seconds` the pair the tracing layer snapshots
        around each stage to attribute per-span cost deltas."""
        return sum(stage.total_tokens for stage in self._stages.values())

    def merge(self, other: "CostTracker") -> None:
        """Fold another tracker's totals into this one."""
        for name, cost in other._stages.items():
            stage = self.stage(name)
            stage.wall_seconds += cost.wall_seconds
            stage.model_seconds += cost.model_seconds
            stage.usage = stage.usage + cost.usage
            stage.calls += cost.calls

    def summary(self) -> dict[str, dict]:
        """Plain-dict view used by the Table 6 bench."""
        return {
            name: {
                "seconds": round(cost.total_seconds, 3),
                "model_seconds": round(cost.model_seconds, 3),
                "tokens": cost.total_tokens,
                "calls": cost.calls,
            }
            for name, cost in sorted(self._stages.items())
        }
