"""The paper's primary contribution: the OpenSearch-SQL pipeline.

Four stages — Preprocessing, Extraction, Generation, Refinement — plus the
consistency Alignment module between them (paper Figure 1 / Algorithm 1).
"""

from repro.core.config import PipelineConfig
from repro.core.cost import CostTracker, StageCost
from repro.core.fewshot import FewShotExample, FewShotLibrary, mask_question
from repro.core.preprocessing import PreprocessedDatabase, Preprocessor
from repro.core.extraction import ExtractionResult, Extractor
from repro.core.alignment import (
    agent_alignment,
    function_alignment,
    style_alignment,
)
from repro.core.generation import Candidate, GenerationResult, Generator
from repro.core.refinement import RefinementResult, Refiner
from repro.core.pipeline import OpenSearchSQL, PipelineResult

__all__ = [
    "Candidate",
    "CostTracker",
    "ExtractionResult",
    "Extractor",
    "FewShotExample",
    "FewShotLibrary",
    "GenerationResult",
    "Generator",
    "OpenSearchSQL",
    "PipelineConfig",
    "PipelineResult",
    "PreprocessedDatabase",
    "Preprocessor",
    "RefinementResult",
    "Refiner",
    "StageCost",
    "agent_alignment",
    "function_alignment",
    "mask_question",
    "style_alignment",
]
