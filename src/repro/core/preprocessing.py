"""Preprocessing stage (paper §3.3, Algorithm 1 lines 2–15).

NLQ-independent work done once per database / train set:

* index every stored string value (string-typed columns only — exactly the
  paper's space-saving choice) into a vector index for values retrieval;
* index column names+descriptions for the multi-path column recall;
* render the database schema prompt block;
* upgrade every train Query-SQL pair to Query-CoT-SQL via the LLM
  (self-taught few-shot) and index it by masked-question similarity;
* prepare error-typed correction few-shots (paper Listing 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import PipelineConfig
from repro.core.cost import CostTracker
from repro.core.fewshot import FewShotExample, FewShotLibrary, mask_question
from repro.datasets.build import Benchmark, BuiltDatabase
from repro.datasets.types import Example
from repro.embedding.hnsw import HNSWIndex
from repro.embedding.index import FlatIndex, VectorIndex
from repro.embedding.vectorizer import HashingVectorizer
from repro.llm.base import LLMClient
from repro.llm.prompts import cot_augment_prompt
from repro.llm.tasks import CoTAugmentTask
from repro.schema.model import Database
from repro.schema.serialize import schema_to_prompt

__all__ = ["ValueEntry", "PreprocessedDatabase", "Preprocessor", "CORRECTION_FEWSHOTS"]


#: Error-typed correction few-shots (paper Listing 3): one worked example
#: per execution-error kind, showing the model what kind of fix applies.
CORRECTION_FEWSHOTS: dict[str, str] = {
    "empty": (
        "/* Fix the SQL and answer the question */\n"
        "#question: How many clients are called John?\n"
        "#Error SQL: SELECT COUNT(*) FROM Client WHERE Client.Name = 'John'\n"
        "Error: Result: None\n"
        "#values: Client.Name = 'JOHN'\n"
        "#Change Ambiguity: the database stores names upper-case; use the "
        "stored value\n"
        "#SQL: SELECT COUNT(*) FROM Client WHERE Client.Name = 'JOHN'"
    ),
    "syntax_error": (
        "/* Fix the SQL and answer the question */\n"
        "#question: List the products.\n"
        "#Error SQL: SELECT SELECT Name FROM Product\n"
        "Error: syntax error near SELECT\n"
        "#Change Ambiguity: remove the duplicated keyword\n"
        "#SQL: SELECT Name FROM Product"
    ),
    "missing_column": (
        "/* Fix the SQL and answer the question */\n"
        "#question: Count the orders.\n"
        "#Error SQL: SELECT COUNT(Orders.order_identifier) FROM Orders\n"
        "Error: no such column: Orders.order_identifier\n"
        "#Change Ambiguity: use the real column name from the schema\n"
        "#SQL: SELECT COUNT(Orders.OrderID) FROM Orders"
    ),
    "missing_table": (
        "/* Fix the SQL and answer the question */\n"
        "#question: Count the rows.\n"
        "#Error SQL: SELECT COUNT(*) FROM Bookings\n"
        "Error: no such table: Bookings\n"
        "#Change Ambiguity: the table is named Orders in this database\n"
        "#SQL: SELECT COUNT(*) FROM Orders"
    ),
    "other_error": (
        "/* Fix the SQL and answer the question */\n"
        "#question: Count patients who arrived after 1990.\n"
        "#Error SQL: SELECT COUNT(*) FROM Patient WHERE YEAR(Patient.Date) >= 1990\n"
        "Error: no such function: YEAR\n"
        "#Change Ambiguity: SQLite uses strftime('%Y', column)\n"
        "#SQL: SELECT COUNT(*) FROM Patient WHERE STRFTIME('%Y', Patient.Date) >= '1990'"
    ),
    "timeout": (
        "/* Fix the SQL and answer the question */\n"
        "#question: Join the tables.\n"
        "#Error SQL: SELECT * FROM A, B WHERE A.x > B.y\n"
        "Error: timeout\n"
        "#Change Ambiguity: replace the cross join with the foreign-key join\n"
        "#SQL: SELECT * FROM A INNER JOIN B ON A.bid = B.id"
    ),
    "ambiguous_column": (
        "/* Fix the SQL and answer the question */\n"
        "#question: List names.\n"
        "#Error SQL: SELECT Name FROM A INNER JOIN B ON A.id = B.aid\n"
        "Error: ambiguous column name: Name\n"
        "#Change Ambiguity: qualify the column with its table\n"
        "#SQL: SELECT A.Name FROM A INNER JOIN B ON A.id = B.aid"
    ),
}


@dataclass(frozen=True)
class ValueEntry:
    """One indexed stored value."""

    table: str
    column: str
    value: str


@dataclass
class PreprocessedDatabase:
    """Per-database preprocessing artifacts."""

    schema: Database
    value_index: VectorIndex
    column_index: VectorIndex
    schema_prompt: str
    value_count: int = 0


class Preprocessor:
    """Builds all preprocessing artifacts for a benchmark."""

    def __init__(
        self,
        llm: LLMClient,
        config: Optional[PipelineConfig] = None,
        vectorizer: Optional[HashingVectorizer] = None,
    ):
        self.llm = llm
        self.config = config or PipelineConfig()
        self.vectorizer = vectorizer or HashingVectorizer()

    def _new_index(self) -> VectorIndex:
        if self.config.vector_index == "hnsw":
            return HNSWIndex(self.vectorizer.dimensions, seed=self.config.seed)
        return FlatIndex(self.vectorizer.dimensions)

    # ------------------------------------------------------------ database

    def preprocess_database(self, built: BuiltDatabase) -> PreprocessedDatabase:
        """Index values (string columns only) and columns of one database."""
        value_index = self._new_index()
        column_index = self._new_index()
        count = 0
        cursor = built.connection.cursor()
        for table in built.schema.tables:
            for column in table.columns:
                doc = f"{table.name} {column.name} {column.description}"
                column_index.add(
                    f"{table.name}.{column.name}",
                    self.vectorizer.embed(doc),
                    payload=(table.name, column.name),
                )
                if not column.is_text:
                    continue
                cursor.execute(
                    f'SELECT DISTINCT "{column.name}" FROM "{table.name}" '
                    f'WHERE "{column.name}" IS NOT NULL'
                )
                for (value,) in cursor.fetchall():
                    text = str(value)
                    value_index.add(
                        f"{table.name}.{column.name}={text}",
                        self.vectorizer.embed(text),
                        payload=ValueEntry(table.name, column.name, text),
                    )
                    count += 1
        return PreprocessedDatabase(
            schema=built.schema,
            value_index=value_index,
            column_index=column_index,
            schema_prompt=schema_to_prompt(built.schema),
            value_count=count,
        )

    # ------------------------------------------------------------ few-shot

    def build_fewshot_library(
        self,
        train: list[Example],
        schemas: dict[str, Database],
        cost: Optional[CostTracker] = None,
    ) -> FewShotLibrary:
        """Self-taught upgrade of the train set (Algorithm 1 lines 12–15):
        each Query-SQL pair gains LLM-generated CoT text."""
        library = FewShotLibrary(
            vectorizer=self.vectorizer,
            index_kind=self.config.vector_index,
            seed=self.config.seed,
        )
        for example in train:
            schema = schemas[example.db_id]
            prompt = cot_augment_prompt(
                example.question, example.gold_sql, schema.name
            )
            responses = self.llm.complete(
                prompt,
                temperature=0.0,
                n=1,
                task=CoTAugmentTask(example=example, schema=schema),
            )
            if cost is not None:
                cost.record_responses("preprocessing", responses)
            surfaces = tuple(m.surface for m in example.value_mentions)
            library.add(
                FewShotExample(
                    example=example,
                    cot_text=responses[0].text,
                    masked_question=mask_question(example.question, surfaces),
                )
            )
        return library

    # ----------------------------------------------------------- benchmark

    def preprocess_benchmark(
        self, benchmark: Benchmark, cost: Optional[CostTracker] = None
    ) -> tuple[dict[str, PreprocessedDatabase], FewShotLibrary]:
        """Preprocess every database plus the train set of ``benchmark``."""
        databases = {
            db_id: self.preprocess_database(built)
            for db_id, built in benchmark.databases.items()
        }
        schemas = {db_id: pre.schema for db_id, pre in databases.items()}
        library = self.build_fewshot_library(benchmark.train, schemas, cost)
        return databases, library
