"""Post-generation Alignments (paper §3.5 "Alignments", Listing 6).

Three rule-based AST rewrites applied to every candidate SQL:

* **Agent Alignment** — literals compared against text columns must exist
  in the database; mismatches are replaced by the nearest stored value
  (vector search over the value index, same-column hits preferred).
* **Function Alignment** — strips aggregate wrappers from ORDER BY items
  of non-grouped queries (``ORDER BY MAX(score)`` → ``ORDER BY score``).
* **Style Alignment** — enforces dataset style around superlatives:
  ``ORDER BY col LIMIT 1`` on a nullable column gains ``col IS NOT NULL``,
  and duplicate SELECT items are removed.

These are real algorithms operating on real database state — nothing here
consults the oracle.
"""

from __future__ import annotations

from typing import Optional

from repro.core.preprocessing import PreprocessedDatabase, ValueEntry
from repro.embedding.vectorizer import HashingVectorizer
from repro.execution.executor import SQLExecutor
from repro.sqlkit.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    IsNull,
    Literal,
    OrderItem,
    Select,
    SelectItem,
)
from repro.sqlkit.transform import map_expressions

__all__ = ["agent_alignment", "function_alignment", "style_alignment", "apply_alignments"]


def _binding_table(select: Select, binding: Optional[str]) -> Optional[str]:
    """Resolve an alias or bare table binding to the real table name."""
    if binding is None:
        return None
    for table in select.tables():
        if table.binding.lower() == binding.lower():
            return table.name or None
    return binding


def agent_alignment(
    select: Select,
    pre: PreprocessedDatabase,
    executor: SQLExecutor,
    vectorizer: HashingVectorizer,
    threshold: float = 0.65,
) -> Select:
    """Replace text literals that do not exist in their column with the
    nearest stored value (paper's 'John' → 'JOHN' example)."""

    def check_exists(table: str, column: str, value: str) -> Optional[bool]:
        if not pre.schema.has_table(table):
            return None
        real = pre.schema.table(table)
        if not real.has_column(column):
            return None
        if not real.column(column).is_text:
            return None
        outcome = executor.execute(
            f'SELECT 1 FROM "{real.name}" WHERE "{real.column(column).name}" = '
            f"'{value.replace(chr(39), chr(39) * 2)}' LIMIT 1"
        )
        if outcome.status.is_error:
            return None
        return outcome.row_count > 0

    def nearest_value(value: str, table: str, column: str) -> Optional[ValueEntry]:
        vector = vectorizer.embed(value)
        hits = pre.value_index.search(vector, k=8)
        same_column = [
            h
            for h in hits
            if isinstance(h.payload, ValueEntry)
            and h.payload.table.lower() == table.lower()
            and h.payload.column.lower() == column.lower()
            and h.score >= threshold
        ]
        if same_column:
            return same_column[0].payload  # type: ignore[return-value]
        general = [h for h in hits if h.score >= threshold]
        if general:
            return general[0].payload  # type: ignore[return-value]
        return None

    def fix(expr: Expr) -> Optional[Expr]:
        if not isinstance(expr, BinaryOp) or expr.op != "=":
            return None
        column_side, literal_side = expr.left, expr.right
        if isinstance(column_side, Literal) and isinstance(literal_side, ColumnRef):
            column_side, literal_side = literal_side, column_side
        if not isinstance(column_side, ColumnRef) or not isinstance(literal_side, Literal):
            return None
        if literal_side.kind != "string":
            return None
        table = _binding_table(select, column_side.table)
        if table is None:
            return None
        exists = check_exists(table, column_side.column, str(literal_side.value))
        if exists is not False:
            return None
        entry = nearest_value(str(literal_side.value), table, column_side.column)
        if entry is None:
            return None
        return BinaryOp("=", column_side, Literal.string(entry.value))

    return map_expressions(select, fix)  # type: ignore[return-value]


def function_alignment(select: Select) -> Select:
    """Strip aggregates out of ORDER BY when the query has no GROUP BY."""
    if select.group_by or not select.order_by:
        return select
    changed = False
    items: list[OrderItem] = []
    for item in select.order_by:
        expr = item.expr
        if isinstance(expr, FuncCall) and expr.is_aggregate and len(expr.args) == 1:
            inner = expr.args[0]
            if isinstance(inner, ColumnRef):
                items.append(OrderItem(expr=inner, desc=item.desc))
                changed = True
                continue
        items.append(item)
    return select.with_(order_by=tuple(items)) if changed else select


def style_alignment(select: Select, pre: PreprocessedDatabase) -> Select:
    """Dataset-style fixes around superlative queries."""
    out = _limitify_aggregate(select)

    # Deduplicate SELECT items (keeps first occurrence).
    seen: list[Expr] = []
    items: list[SelectItem] = []
    for item in out.items:
        if any(item.expr == other for other in seen):
            continue
        seen.append(item.expr)
        items.append(item)
    if len(items) != len(out.items):
        out = out.with_(items=tuple(items))

    # IS NOT NULL guard on nullable ORDER BY columns of LIMIT queries.
    if out.limit is not None and out.order_by:
        guards: list[Expr] = []
        for item in out.order_by:
            expr = item.expr
            if not isinstance(expr, ColumnRef):
                continue
            table = _binding_table(out, expr.table)
            if table is None or not pre.schema.has_table(table):
                continue
            real_table = pre.schema.table(table)
            if not real_table.has_column(expr.column):
                continue
            column = real_table.column(expr.column)
            if column.is_primary or column.not_null:
                continue
            if _has_not_null_guard(out.where, expr):
                continue
            guards.append(IsNull(expr, negated=True))
        if guards:
            where = out.where
            for guard in guards:
                where = guard if where is None else BinaryOp("AND", where, guard)
            out = out.with_(where=where)
    return out


def _limitify_aggregate(select: Select) -> Select:
    """The MAX-vs-LIMIT style rule: ``SELECT col, MAX(x)`` (no GROUP BY)
    becomes ``SELECT col ORDER BY x DESC LIMIT 1`` — the dataset's
    canonical superlative form (paper Listing 6, Style Alignment)."""
    if select.group_by or select.order_by or select.limit is not None:
        return select
    if len(select.items) < 2:
        return select
    agg_positions = [
        (index, item)
        for index, item in enumerate(select.items)
        if isinstance(item.expr, FuncCall)
        and item.expr.name in ("MAX", "MIN")
        and len(item.expr.args) == 1
        and isinstance(item.expr.args[0], ColumnRef)
    ]
    plain = [item for item in select.items if not isinstance(item.expr, FuncCall)]
    if len(agg_positions) != 1 or len(plain) != len(select.items) - 1:
        return select
    index, agg_item = agg_positions[0]
    func: FuncCall = agg_item.expr  # type: ignore[assignment]
    order_col = func.args[0]
    remaining = tuple(item for i, item in enumerate(select.items) if i != index)
    return select.with_(
        items=remaining,
        order_by=(OrderItem(expr=order_col, desc=func.name == "MAX"),),
        limit=1,
    )


def _has_not_null_guard(where: Optional[Expr], column: ColumnRef) -> bool:
    if where is None:
        return False
    if isinstance(where, IsNull) and where.negated and where.expr == column:
        return True
    if isinstance(where, BinaryOp) and where.op == "AND":
        return _has_not_null_guard(where.left, column) or _has_not_null_guard(
            where.right, column
        )
    return False


def apply_alignments(
    select: Select,
    pre: PreprocessedDatabase,
    executor: SQLExecutor,
    vectorizer: HashingVectorizer,
    threshold: float = 0.65,
) -> Select:
    """Agent → Function → Style alignment, in the paper's order."""
    aligned = agent_alignment(select, pre, executor, vectorizer, threshold)
    aligned = function_alignment(aligned)
    aligned = style_alignment(aligned, pre)
    return aligned
