"""The OpenSearch-SQL orchestrator (paper Algorithm 1).

``OpenSearchSQL`` wires the four stages plus alignments over a benchmark:
preprocessing runs once at construction, then :meth:`answer` executes the
per-question main process and returns a :class:`PipelineResult` carrying
the three observables the paper's ablations track — the first generated
SQL (EX_G), the first refined SQL before voting (EX_R), and the final
voted SQL (EX) — together with per-stage costs.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import PipelineConfig
from repro.core.cost import CostTracker
from repro.core.extraction import ExtractionResult, Extractor
from repro.core.generation import Generator
from repro.core.preprocessing import PreprocessedDatabase, Preprocessor
from repro.core.refinement import RefinementResult, Refiner
from repro.datasets.build import Benchmark
from repro.datasets.types import Example
from repro.embedding.vectorizer import HashingVectorizer
from repro.execution.executor import SQLExecutor
from repro.livedata.errors import StaleCatalogError
from repro.llm.base import LLMClient
from repro.observability.trace import Trace
from repro.reliability.deadline import Deadline
from repro.reliability.degradation import DegradationEvent, DegradationKind

__all__ = ["PipelineResult", "OpenSearchSQL", "FALLBACK_SQL"]

#: stub emitted when no stage produced any SQL at all; always recorded as a
#: DegradationEvent, never silently
FALLBACK_SQL = "SELECT 1"


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one question."""

    question_id: str
    final_sql: str
    #: first candidate straight out of Generation (paper's EX_G observable)
    generation_sql: Optional[str] = None
    #: first candidate after alignment+correction, before vote (EX_R)
    refined_sql: Optional[str] = None
    extraction: Optional[ExtractionResult] = None
    refinement: Optional[RefinementResult] = None
    cost: CostTracker = field(default_factory=CostTracker)
    #: every containment decision taken while answering (empty = clean run)
    degradations: list[DegradationEvent] = field(default_factory=list)
    #: tier decision + escalation record when a routing layer answered
    #: this request (a ``repro.routing.RoutingInfo``; None = unrouted)
    routing: Optional[object] = None

    @property
    def degraded(self) -> bool:
        """True when any stage fell back instead of completing normally."""
        return bool(self.degradations)

    @property
    def deadline_exceeded(self) -> bool:
        """True when the request's deadline truncated or skipped work."""
        return any(
            event.kind is DegradationKind.DEADLINE_EXCEEDED
            for event in self.degradations
        )


class OpenSearchSQL:
    """The full OpenSearch-SQL system bound to one benchmark.

    Construction runs Preprocessing (value/column indexes per database and
    the self-taught few-shot library over the train split); ``answer``
    runs Extraction → Generation → Refinement with alignments for a single
    question.
    """

    def __init__(
        self,
        benchmark: Benchmark,
        llm: LLMClient,
        config: Optional[PipelineConfig] = None,
    ):
        self.benchmark = benchmark
        self.llm = llm
        self.config = config or PipelineConfig()
        self.vectorizer = HashingVectorizer()
        self.preprocessing_cost = CostTracker()

        preprocessor = Preprocessor(llm, self.config, self.vectorizer)
        with self.preprocessing_cost.timed("preprocessing"):
            self.databases, self.library = preprocessor.preprocess_benchmark(
                benchmark, self.preprocessing_cost
            )

        self.extractor = Extractor(llm, self.config, self.vectorizer)
        self.generator = Generator(llm, self.config)
        self.refiner = Refiner(llm, self.config, self.vectorizer)
        self._executors: dict[str, SQLExecutor] = {}
        self._executors_lock = threading.Lock()
        #: optional hook wrapping each database executor at creation —
        #: ``wrapper(executor, db_id)`` returns the executor to use.  The
        #: serving layer wires fault injection and hedging through this.
        self.executor_wrapper: Optional[Callable[[SQLExecutor, str], object]] = None

    # -------------------------------------------------------------- pieces

    def executor(self, db_id: str):
        """The cached executor for one benchmark database (thread-safe)."""
        with self._executors_lock:
            if db_id not in self._executors:
                built = self.benchmark.database(db_id)
                executor = SQLExecutor(
                    built.connection,
                    timeout_seconds=self.config.execution_timeout,
                    reconnect=built.rebuild,
                )
                if self.executor_wrapper is not None:
                    executor = self.executor_wrapper(executor, db_id)
                self._executors[db_id] = executor
            return self._executors[db_id]

    def set_executor_wrapper(
        self, wrapper: Optional[Callable[[SQLExecutor, str], object]]
    ) -> None:
        """Install (or clear) the executor wrapper and drop cached
        executors so every database is re-wrapped on next use."""
        with self._executors_lock:
            self.executor_wrapper = wrapper
            self._executors = {}

    def preprocessed(self, db_id: str) -> PreprocessedDatabase:
        """The preprocessing artifacts for one benchmark database."""
        return self.databases[db_id]

    def rebind_llm(self, llm: LLMClient) -> "OpenSearchSQL":
        """Swap the LLM transport used for answering.

        Preprocessing artifacts (indexes, few-shot library) are kept, so
        two transports — say a clean client and the same client behind a
        fault injector — can be compared over identical preprocessing.
        """
        self.llm = llm
        self.extractor.llm = llm
        self.generator.llm = llm
        self.refiner.llm = llm
        return self

    def wrap_llms(self, wrap: Callable[[LLMClient], LLMClient]) -> "OpenSearchSQL":
        """Route every LLM transport this pipeline holds through ``wrap``.

        The seam the async engine uses to install its micro-batching
        shim around whatever client (clean, fault-injected, resilient)
        is already bound.  Single-transport pipelines have exactly one;
        :class:`~repro.routing.TieredPipeline` overrides this to cover
        its per-tier clients as well.
        """
        return self.rebind_llm(wrap(self.llm))

    # ----------------------------------------------------------------- run

    def answer(
        self,
        example: Example,
        deadline: Optional[Deadline] = None,
        trace: Optional[Trace] = None,
    ) -> PipelineResult:
        """Run the main process (Algorithm 1 lines 17–25) for one NLQ.

        Each stage is containment-wrapped: a transport failure degrades the
        answer (recorded as a :class:`DegradationEvent`) instead of
        crashing the run — extraction falls back to full-schema prompting,
        generation retries at a single candidate, refinement failure
        returns the best unrefined candidate.

        ``deadline`` bounds the request end-to-end in virtual time: the
        request's :class:`CostTracker` is attached as a meter, so every
        stage's reported model seconds shrink the remaining budget, and a
        stage entered with no budget left degrades (typed
        ``DEADLINE_EXCEEDED`` event) instead of doing unbounded work.
        Refinement additionally checks the deadline per candidate and per
        correction round and caps each SQL execution at the remaining time.

        ``trace`` (when given) receives one stage span per pipeline stage
        under its root: each span is attributed the request
        :class:`CostTracker`'s token/model-second delta across the stage
        (so span costs sum exactly to the request totals), degradation
        events attach to the span of the stage that degraded, and the
        active span is published ambiently so cross-cutting layers (cache
        tiers, retries, fault injectors, hedges) can attach their events.

        Reentrancy: this method is safe to call from concurrent serving
        workers.  All per-call state (cost, degradations, deadline) is
        local, the simulator derives every random draw from per-call
        hashed seeds (so answers are order-independent), and SQL execution
        serializes per database connection inside :class:`SQLExecutor`.
        """
        cost = CostTracker()
        degradations: list[DegradationEvent] = []
        pre = self.preprocessed(example.db_id)
        executor = self.executor(example.db_id)
        if deadline is not None:
            # Every LLM call's reported decode latency feeds the deadline
            # without per-call plumbing (virtual-time convention).
            deadline.attach_meter(lambda: cost.total_model_seconds)

        def deadline_event(stage: str, detail: str) -> DegradationEvent:
            return DegradationEvent(
                kind=DegradationKind.DEADLINE_EXCEEDED,
                stage=stage,
                cause="deadline",
                detail=detail,
            )

        if trace is not None:
            # Preprocessing ran once at construction; its span records the
            # amortized shared cost but charges this request nothing.
            pre_span = trace.root.child("preprocessing")
            pre_span.set("amortized", True)
            pre_span.set("shared_tokens", self.preprocessing_cost.total_tokens)
            pre_span.set(
                "shared_model_seconds",
                round(self.preprocessing_cost.total_model_seconds, 6),
            )
            pre_span.finish(deadline)

        def stage_cm(name: str):
            if trace is None:
                return nullcontext(None)
            return trace.stage(name, cost=cost, deadline=deadline)

        with cost.timed("extraction"), stage_cm("extraction") as span:
            span_kw = {"span": span} if span is not None else {}
            if deadline is not None and deadline.expired:
                degradations.append(
                    deadline_event("extraction", "skipped; full-schema fallback")
                )
                extraction = ExtractionResult(
                    schema=pre.schema, schema_prompt=pre.schema_prompt
                )
            else:
                try:
                    extraction = self.extractor.run(example, pre, cost, **span_kw)
                except Exception as exc:
                    degradations.append(
                        DegradationEvent(
                            kind=DegradationKind.EXTRACTION_FALLBACK,
                            stage="extraction",
                            cause=type(exc).__name__,
                            detail=str(exc),
                        )
                    )
                    extraction = ExtractionResult(
                        schema=pre.schema, schema_prompt=pre.schema_prompt
                    )

        n = self.config.n_candidates if self.config.use_self_consistency else 1
        with cost.timed("generation"), stage_cm("generation") as span:
            if deadline is not None and deadline.expired:
                degradations.append(
                    deadline_event("generation", f"skipped; {FALLBACK_SQL!r} stands in")
                )
                sqls = []
            else:
                sqls = self._generate_contained(
                    example, extraction, cost, n, degradations, span=span
                )

        if not sqls:
            if not any(
                e.kind is DegradationKind.DEADLINE_EXCEEDED and e.stage == "generation"
                for e in degradations
            ):
                # Observable stand-in for "the model produced nothing
                # usable"; scoring treats it like any other wrong query.
                degradations.append(
                    DegradationEvent(
                        kind=DegradationKind.EMPTY_GENERATION,
                        stage="generation",
                        cause="no_parseable_sql",
                        detail=f"falling back to {FALLBACK_SQL!r}",
                    )
                )
            sqls = [FALLBACK_SQL]

        with cost.timed("refinement"), stage_cm("refinement") as span:
            span_kw = {"span": span} if span is not None else {}
            if deadline is not None and deadline.expired:
                degradations.append(
                    deadline_event("refinement", "skipped; first candidate unrefined")
                )
                refinement = RefinementResult(
                    final_sql=sqls[0], candidates=[], truncated=True
                )
            else:
                try:
                    refinement = self.refiner.run(
                        example, sqls, pre, extraction, executor, cost,
                        deadline=deadline, **span_kw,
                    )
                except StaleCatalogError:
                    # The pre-execute epoch guard fired: the catalog moved
                    # under this request.  That is not a degradation to
                    # absorb — the serving engine owns the bounded retry
                    # and must see the typed error.
                    raise
                except Exception as exc:
                    degradations.append(
                        DegradationEvent(
                            kind=DegradationKind.REFINEMENT_SKIPPED,
                            stage="refinement",
                            cause=type(exc).__name__,
                            detail=str(exc),
                        )
                    )
                    refinement = RefinementResult(final_sql=sqls[0], candidates=[])
                if refinement.truncated:
                    degradations.append(
                        deadline_event(
                            "refinement",
                            f"refined {len(refinement.candidates)}/{len(sqls)} "
                            "candidates before the deadline",
                        )
                    )

        if trace is not None:
            # Degradations were collected stage-side; pin each onto the
            # span of the stage that degraded so the tree tells the story.
            spans_by_stage = {child.name: child for child in trace.root.children}
            for event in degradations:
                target = spans_by_stage.get(event.stage, trace.root)
                target.event(
                    "degradation",
                    kind=event.kind.value,
                    cause=event.cause,
                    detail=event.detail,
                )
                target.status = "degraded"
                trace.root.status = "degraded"
            trace.finish(cost=cost, deadline=deadline)

        return PipelineResult(
            question_id=example.question_id,
            final_sql=refinement.final_sql,
            generation_sql=sqls[0],
            refined_sql=refinement.first_refined_sql or sqls[0],
            extraction=extraction,
            refinement=refinement,
            cost=cost,
            degradations=degradations,
        )

    def _generate_contained(
        self,
        example: Example,
        extraction: ExtractionResult,
        cost: CostTracker,
        n: int,
        degradations: list[DegradationEvent],
        span=None,
    ) -> list[str]:
        """Generation with containment: full width, then width 1, then []."""
        span_kw = {"span": span} if span is not None else {}
        try:
            return self.generator.run(
                example, extraction, self.library, cost, n_candidates=n, **span_kw
            ).sqls
        except Exception as exc:
            if n == 1:
                degradations.append(
                    DegradationEvent(
                        kind=DegradationKind.ANSWER_FAILED,
                        stage="generation",
                        cause=type(exc).__name__,
                        detail=str(exc),
                    )
                )
                return []
            degradations.append(
                DegradationEvent(
                    kind=DegradationKind.GENERATION_REDUCED,
                    stage="generation",
                    cause=type(exc).__name__,
                    detail=f"retrying with n_candidates=1 after {exc}",
                )
            )
        try:
            return self.generator.run(
                example, extraction, self.library, cost, n_candidates=1, **span_kw
            ).sqls
        except Exception as exc:
            degradations.append(
                DegradationEvent(
                    kind=DegradationKind.ANSWER_FAILED,
                    stage="generation",
                    cause=type(exc).__name__,
                    detail=str(exc),
                )
            )
        return []

    def answer_many(self, examples: list[Example]) -> list[PipelineResult]:
        """Answer a batch of questions."""
        return [self.answer(example) for example in examples]
