"""The OpenSearch-SQL orchestrator (paper Algorithm 1).

``OpenSearchSQL`` wires the four stages plus alignments over a benchmark:
preprocessing runs once at construction, then :meth:`answer` executes the
per-question main process and returns a :class:`PipelineResult` carrying
the three observables the paper's ablations track — the first generated
SQL (EX_G), the first refined SQL before voting (EX_R), and the final
voted SQL (EX) — together with per-stage costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import PipelineConfig
from repro.core.cost import CostTracker
from repro.core.extraction import ExtractionResult, Extractor
from repro.core.generation import Generator
from repro.core.preprocessing import PreprocessedDatabase, Preprocessor
from repro.core.refinement import RefinementResult, Refiner
from repro.datasets.build import Benchmark
from repro.datasets.types import Example
from repro.embedding.vectorizer import HashingVectorizer
from repro.execution.executor import SQLExecutor
from repro.llm.base import LLMClient

__all__ = ["PipelineResult", "OpenSearchSQL"]


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one question."""

    question_id: str
    final_sql: str
    #: first candidate straight out of Generation (paper's EX_G observable)
    generation_sql: Optional[str] = None
    #: first candidate after alignment+correction, before vote (EX_R)
    refined_sql: Optional[str] = None
    extraction: Optional[ExtractionResult] = None
    refinement: Optional[RefinementResult] = None
    cost: CostTracker = field(default_factory=CostTracker)


class OpenSearchSQL:
    """The full OpenSearch-SQL system bound to one benchmark.

    Construction runs Preprocessing (value/column indexes per database and
    the self-taught few-shot library over the train split); ``answer``
    runs Extraction → Generation → Refinement with alignments for a single
    question.
    """

    def __init__(
        self,
        benchmark: Benchmark,
        llm: LLMClient,
        config: Optional[PipelineConfig] = None,
    ):
        self.benchmark = benchmark
        self.llm = llm
        self.config = config or PipelineConfig()
        self.vectorizer = HashingVectorizer()
        self.preprocessing_cost = CostTracker()

        preprocessor = Preprocessor(llm, self.config, self.vectorizer)
        with self.preprocessing_cost.timed("preprocessing"):
            self.databases, self.library = preprocessor.preprocess_benchmark(
                benchmark, self.preprocessing_cost
            )

        self.extractor = Extractor(llm, self.config, self.vectorizer)
        self.generator = Generator(llm, self.config)
        self.refiner = Refiner(llm, self.config, self.vectorizer)
        self._executors: dict[str, SQLExecutor] = {}

    # -------------------------------------------------------------- pieces

    def executor(self, db_id: str) -> SQLExecutor:
        """The cached executor for one benchmark database."""
        if db_id not in self._executors:
            built = self.benchmark.database(db_id)
            self._executors[db_id] = SQLExecutor(
                built.connection, timeout_seconds=self.config.execution_timeout
            )
        return self._executors[db_id]

    def preprocessed(self, db_id: str) -> PreprocessedDatabase:
        """The preprocessing artifacts for one benchmark database."""
        return self.databases[db_id]

    # ----------------------------------------------------------------- run

    def answer(self, example: Example) -> PipelineResult:
        """Run the main process (Algorithm 1 lines 17–25) for one NLQ."""
        cost = CostTracker()
        pre = self.preprocessed(example.db_id)
        executor = self.executor(example.db_id)

        with cost.timed("extraction"):
            extraction = self.extractor.run(example, pre, cost)

        n = self.config.n_candidates if self.config.use_self_consistency else 1
        with cost.timed("generation"):
            generation = self.generator.run(
                example, extraction, self.library, cost, n_candidates=n
            )

        sqls = generation.sqls
        if not sqls:
            sqls = ["SELECT 1"]

        with cost.timed("refinement"):
            refinement = self.refiner.run(
                example, sqls, pre, extraction, executor, cost
            )

        return PipelineResult(
            question_id=example.question_id,
            final_sql=refinement.final_sql,
            generation_sql=sqls[0],
            refined_sql=refinement.first_refined_sql,
            extraction=extraction,
            refinement=refinement,
            cost=cost,
        )

    def answer_many(self, examples: list[Example]) -> list[PipelineResult]:
        """Answer a batch of questions."""
        return [self.answer(example) for example in examples]
