"""Pipeline configuration.

Every knob from the paper's §4.1 implementation details is here, plus one
boolean per module so the Table 4/5/7 ablations are configuration changes,
not code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """All OpenSearch-SQL knobs.

    Defaults reproduce the paper's submitted configuration: temperature 0
    extraction, temperature 0.7 generation with 21 candidates, 5 dynamic
    Query-CoT-SQL few-shots selected by masked-question similarity with a
    0.65 retrieval threshold, structured CoT, and the full alignment +
    refinement stack.
    """

    # ---- sampling (paper §4.1)
    n_candidates: int = 21
    generation_temperature: float = 0.7
    extraction_temperature: float = 0.0

    # ---- dynamic few-shot
    n_few_shot: int = 5
    #: none | query_sql | query_cot_sql | query_skeleton_sql (the last is
    #: the §3.8 "other few-shot options" extension)
    fewshot_style: str = "query_cot_sql"
    refinement_fewshot: bool = True

    # ---- CoT
    cot_mode: str = "structured"  # none | unstructured | structured

    # ---- retrieval
    similarity_threshold: float = 0.65
    retrieval_top_k: int = 5
    vector_index: str = "flat"  # flat | hnsw

    # ---- module switches (Table 4 ablations)
    use_extraction: bool = True
    use_values_retrieval: bool = True
    use_column_filtering: bool = True
    use_info_alignment: bool = True
    use_alignments: bool = True
    use_refinement: bool = True
    use_correction: bool = True
    use_self_consistency: bool = True

    # ---- refinement details
    max_correction_rounds: int = 1
    execution_timeout: float = 5.0

    # ---- misc
    seed: int = 0

    def __post_init__(self):
        if self.n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")
        if self.fewshot_style not in (
            "none", "query_sql", "query_cot_sql", "query_skeleton_sql"
        ):
            raise ValueError(f"unknown fewshot_style {self.fewshot_style!r}")
        if self.cot_mode not in ("none", "unstructured", "structured"):
            raise ValueError(f"unknown cot_mode {self.cot_mode!r}")
        if self.vector_index not in ("flat", "hnsw"):
            raise ValueError(f"unknown vector_index {self.vector_index!r}")
        if not 0.0 <= self.similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")

    def with_(self, **changes) -> "PipelineConfig":
        """Return a copy with fields replaced (ablation helper)."""
        return replace(self, **changes)

    @property
    def effective_fewshot_style(self) -> str:
        """Few-shot style after the Extraction switch: without Extraction
        the pipeline still retrieves few-shots (they are preprocessing
        artifacts), so this is just ``fewshot_style``."""
        return self.fewshot_style
