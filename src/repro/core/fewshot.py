"""Dynamic few-shot: masked question similarity and the Query-CoT-SQL store.

The paper (§3.2) retrieves few-shots by Masked Question similarity (MQs):
literals and numbers are masked out of the question so retrieval matches
question *structure* rather than the specific values mentioned, then the
top-K similar train questions contribute their self-taught Query-CoT-SQL
renditions to the prompt.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.datasets.types import Example
from repro.embedding.index import FlatIndex, VectorIndex
from repro.embedding.hnsw import HNSWIndex
from repro.embedding.vectorizer import HashingVectorizer

__all__ = ["mask_question", "sql_skeleton", "FewShotExample", "FewShotLibrary"]

_NUMBER = re.compile(r"\b\d[\d.,:-]*\b")
_QUOTED = re.compile(r"'[^']*'|\"[^\"]*\"")


def mask_question(question: str, surfaces: tuple[str, ...] = ()) -> str:
    """Mask literal values out of a question (MQs desemanticization).

    Known value surfaces (from the example's mentions) are replaced first,
    then quoted strings and numbers; capitalized mid-sentence tokens are
    left alone (they may be schema words, which *should* influence
    similarity).
    """
    masked = question
    for surface in sorted(surfaces, key=len, reverse=True):
        if surface:
            masked = masked.replace(surface, "<mask>")
    masked = _QUOTED.sub("<mask>", masked)
    masked = _NUMBER.sub("<mask>", masked)
    return masked


def sql_skeleton(sql: str) -> str:
    """Mask every literal out of a SQL string (DAIL-SQL's skeleton view).

    Used by the Query-Skeleton-SQL few-shot format (a §3.8 extension): the
    skeleton shows the query *shape* without binding the example's values.
    Unparseable SQL is returned unchanged.
    """
    from repro.sqlkit.ast import Literal
    from repro.sqlkit.parser import ParseError, parse_select
    from repro.sqlkit.render import render
    from repro.sqlkit.tokenizer import TokenizeError
    from repro.sqlkit.transform import map_expressions

    try:
        select = parse_select(sql)
    except (ParseError, TokenizeError):
        return sql

    def mask(expr):
        if isinstance(expr, Literal) and expr.kind != "null":
            return Literal.string("?") if expr.kind == "string" else Literal.number(0)
        return None

    return render(map_expressions(select, mask))


@dataclass(frozen=True)
class FewShotExample:
    """One library entry: the train example plus its self-taught CoT."""

    example: Example
    cot_text: str
    masked_question: str

    def render(self, style: str) -> str:
        """Render in the paper's Listing 1 (Query-SQL) or Listing 2
        (Query-CoT-SQL) format."""
        header = f"/* Answer the following: {self.example.question} */"
        if style == "query_sql":
            return f"{header}\n#SQL: {self.example.gold_sql}"
        if style == "query_cot_sql":
            return f"{header}\n{self.cot_text}"
        if style == "query_skeleton_sql":
            skeleton = sql_skeleton(self.example.gold_sql)
            return (
                f"{header}\n#skeleton: {skeleton}\n"
                f"#SQL: {self.example.gold_sql}"
            )
        raise ValueError(f"unknown few-shot style {style!r}")


class FewShotLibrary:
    """The preprocessed few-shot store with MQs retrieval."""

    def __init__(
        self,
        vectorizer: Optional[HashingVectorizer] = None,
        index_kind: str = "flat",
        seed: int = 0,
    ):
        self.vectorizer = vectorizer or HashingVectorizer()
        if index_kind == "hnsw":
            self._index: VectorIndex = HNSWIndex(self.vectorizer.dimensions, seed=seed)
        else:
            self._index = FlatIndex(self.vectorizer.dimensions)
        self._entries: dict[str, FewShotExample] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, entry: FewShotExample) -> None:
        """Index one entry (duplicate question ids are rejected)."""
        if entry.example.question_id in self._entries:
            raise ValueError(f"duplicate few-shot {entry.example.question_id}")
        self._entries[entry.example.question_id] = entry
        vector = self.vectorizer.embed(entry.masked_question)
        self._index.add(entry.example.question_id, vector, payload=entry)

    def reindex_db(self, db_id: str) -> int:
        """Re-embed every entry belonging to ``db_id`` in place.

        The live-mutation reindex path: after a database's content
        changes, its train shots are removed from the vector index
        (:meth:`VectorIndex.remove`) and re-added with freshly computed
        embeddings — entries from other databases are untouched, so the
        cost is proportional to the mutated database's share of the
        library.  Returns the number of entries re-embedded.
        """
        count = 0
        for question_id, entry in sorted(self._entries.items()):
            if entry.example.db_id != db_id:
                continue
            self._index.remove(question_id)
            vector = self.vectorizer.embed(entry.masked_question)
            self._index.add(question_id, vector, payload=entry)
            count += 1
        return count

    def search(
        self,
        question: str,
        surfaces: tuple[str, ...] = (),
        k: int = 5,
        db_id: Optional[str] = None,
    ) -> list[FewShotExample]:
        """Top-``k`` few-shots by masked-question similarity.

        ``db_id`` optionally restricts matches to the same database (the
        paper retrieves across the whole train set; cross-database shots
        are useful because MQs matches structure, so we only use ``db_id``
        to *exclude the question's own database twin* in leakage tests).
        """
        if k <= 0 or not self._entries:
            return []
        masked = mask_question(question, surfaces)
        query = self.vectorizer.embed(masked)
        hits = self._index.search(query, k=max(k * 3, k))
        out: list[FewShotExample] = []
        for hit in hits:
            entry: FewShotExample = hit.payload  # type: ignore[assignment]
            if db_id is not None and entry.example.db_id != db_id:
                continue
            out.append(entry)
            if len(out) >= k:
                break
        return out
