"""Command-line interface.

Subcommands::

    python -m repro stats                      # dataset statistics (Table 1)
    python -m repro run --question-id <id>     # answer one benchmark question
    python -m repro evaluate --split dev       # EX / R-VES over a split
    python -m repro ablate                     # quick Table-4-style sweep
    python -m repro baselines                  # Table-2-style leaderboard
    python -m repro serve-bench --workers 4    # serving engine under Zipf load
    python -m repro serve-bench --routing      # cost-tiered routing fast path
    python -m repro serve-bench --shards 3 --journal DIR  # multi-process cluster
    python -m repro recover --journal j.jsonl  # finish a killed serve-bench run
    python -m repro recover --journal DIR      # merge + replay shard segments
    python -m repro route-bench --size 100     # difficulty router tier mix
    python -m repro trace --question-id <id>   # serve one question, print spans
    python -m repro metrics --requests 24      # unified metrics export

Every subcommand accepts ``--benchmark {bird,spider}``, ``--model
{gpt-4o,gpt-4,gpt-4o-mini}``, ``--candidates N`` and ``--seed N``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.baselines.systems import all_baselines
from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.bird import build_bird_like, mini_dev
from repro.datasets.build import Benchmark
from repro.datasets.spider import build_spider_like
from repro.evaluation.report import format_table
from repro.evaluation.runner import evaluate_pipeline, evaluate_system
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import skill_by_name

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OpenSearch-SQL reproduction command-line interface",
    )
    parser.add_argument(
        "--benchmark", choices=("bird", "spider"), default="bird",
        help="which synthetic suite to use (default: bird)",
    )
    parser.add_argument(
        "--model",
        choices=("gpt-4o", "gpt-4", "gpt-4o-mini"),
        default="gpt-4o",
        help="simulated model skill profile (default: gpt-4o)",
    )
    parser.add_argument("--candidates", type=int, default=21, metavar="N",
                        help="self-consistency vote size (default: 21)")
    parser.add_argument("--seed", type=int, default=0)

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="print dataset statistics")

    run = sub.add_parser("run", help="answer one benchmark question")
    run.add_argument("--question-id", help="question id (default: first dev)")
    run.add_argument("--split", choices=("dev", "test", "train"), default="dev")

    ev = sub.add_parser("evaluate", help="score the pipeline over a split")
    ev.add_argument("--split", choices=("dev", "test"), default="dev")
    ev.add_argument("--limit", type=int, default=0, metavar="N",
                    help="evaluate only the first N examples (0 = all)")
    ev.add_argument("--checkpoint", metavar="PATH",
                    help="JSONL checkpoint file: finished examples are "
                         "appended and replayed on resume")
    ev.add_argument("--fault-rate", type=float, default=0.0, metavar="R",
                    help="inject transport/content faults at rate R "
                         "(chaos mode; default: 0 = off)")
    ev.add_argument("--no-retry", action="store_true",
                    help="with --fault-rate: disable the resilient "
                         "transport (faults hit the pipeline directly)")
    ev.add_argument("--workers", type=int, default=1, metavar="N",
                    help="score examples on N threads (default: 1); "
                         "EX/EX_G/EX_R are identical to a serial run")
    ev.add_argument("--deadline-ms", type=float, default=0.0, metavar="MS",
                    help="per-example deadline in virtual milliseconds "
                         "(0 = none); exhaustion degrades the answer "
                         "instead of crashing it")

    ab = sub.add_parser("ablate", help="module ablation sweep (Table 4 style)")
    ab.add_argument("--size", type=int, default=150,
                    help="mini-dev sample size (default: 150)")

    sub.add_parser("baselines", help="baseline leaderboard (Table 2 style)")

    sb = sub.add_parser(
        "serve-bench",
        help="drive the serving engine with a Zipf-skewed workload",
    )
    sb.add_argument("--workers", type=int, default=4, metavar="N",
                    help="serving thread-pool size (default: 4)")
    sb.add_argument("--requests", type=int, default=120, metavar="N",
                    help="total requests to issue (default: 120)")
    sb.add_argument("--distinct", type=int, default=0, metavar="N",
                    help="distinct dev questions in the pool "
                         "(default: 0 = whole dev split)")
    sb.add_argument("--pool", choices=("prefix", "spread"), default="prefix",
                    help="how --distinct picks the pool: 'prefix' takes "
                         "the first N dev questions (often one database), "
                         "'spread' round-robins across databases so a "
                         "sharded cluster sees multi-shard traffic "
                         "(default: prefix)")
    sb.add_argument("--zipf", type=float, default=1.2, metavar="S",
                    help="Zipf popularity skew (default: 1.2; 0 = uniform)")
    sb.add_argument("--queue-capacity", type=int, default=64, metavar="N",
                    help="admission queue capacity (default: 64)")
    sb.add_argument("--mode", choices=("closed", "open"), default="closed",
                    help="closed-loop blocks for a slot; open-loop sheds "
                         "when the queue is full (default: closed)")
    sb.add_argument("--no-cache", action="store_true",
                    help="disable all three cache tiers")
    sb.add_argument("--async", dest="use_async", action="store_true",
                    help="serve on the asyncio engine: single-flight "
                         "coalescing of identical in-flight requests plus "
                         "micro-batched LLM calls (queue capacity is "
                         "auto-raised to the request count — admission "
                         "never blocks the event loop)")
    sb.add_argument("--routing", action="store_true",
                    help="adaptive cost-tiered routing: serve each request "
                         "on a FAST (no-CoT mini) / FULL / HEAVY tier with "
                         "confidence-based escalation")
    sb.add_argument("--fault-rate", type=float, default=0.0, metavar="R",
                    help="inject LLM and database faults at rate R each "
                         "(chaos mode; default: 0 = off)")
    sb.add_argument("--deadline-ms", type=float, default=0.0, metavar="MS",
                    help="per-request deadline in virtual milliseconds "
                         "(0 = none)")
    sb.add_argument("--hedge-ms", type=float, default=0.0, metavar="MS",
                    help="hedge SQL executions slower than MS virtual "
                         "milliseconds (0 = hedging off; implied on by "
                         "--fault-rate)")
    sb.add_argument("--backends", type=int, default=0, metavar="N",
                    help="serve through a pool of N replicated LLM "
                         "backends with health-routed failover (0 = single "
                         "backend); with --fault-rate the PRIMARY replica "
                         "is fault-injected and the others stay clean")
    sb.add_argument("--db-max-inflight", type=int, default=0, metavar="N",
                    help="per-database bulkhead: at most N in-flight "
                         "requests per db_id (0 = unbounded)")
    sb.add_argument("--health-shed", action="store_true",
                    help="shed a fraction of requests probabilistically "
                         "when the pipeline health grade degrades, before "
                         "the circuit breaker trips")
    sb.add_argument("--journal", metavar="PATH",
                    help="write-ahead JSONL journal of accepted/committed "
                         "requests; a killed run resumes via "
                         "'repro recover --journal PATH'; with --shards "
                         "this is a DIRECTORY holding one "
                         "journal-shard-K.jsonl segment per worker")
    sb.add_argument("--kill-after", type=int, default=0, metavar="K",
                    help="with --journal: SIGKILL this process after the "
                         "K-th committed result (crash-recovery testing); "
                         "with --kill-worker: kill after the worker's K-th "
                         "served result (default then: 2)")
    sb.add_argument("--shards", type=int, default=0, metavar="N",
                    help="serve through N supervised worker processes "
                         "partitioned by db_id on a consistent-hash ring "
                         "(0 = in-process engine); requires --journal DIR")
    sb.add_argument("--kill-worker", type=int, default=-1, metavar="K",
                    help="with --shards: SIGKILL worker K mid-run after it "
                         "serves --kill-after results (supervision/"
                         "recovery testing; -1 = no kill)")
    sb.add_argument("--restart-budget", type=int, default=1, metavar="N",
                    help="with --shards: restarts allowed per worker "
                         "before its death is permanent and the ring "
                         "rebalances (default: 1)")
    sb.add_argument("--metrics-out", metavar="PATH",
                    help="dump the final MetricsRegistry snapshot to PATH "
                         "as JSON")
    sb.add_argument("--report-out", metavar="PATH",
                    help="with --journal: score the journaled run and "
                         "write the deterministic report JSON to PATH")
    sb.add_argument("--storage-enospc-after", type=int, default=0,
                    metavar="N",
                    help="with --journal: the disk returns ENOSPC after N "
                         "journal appends (brownout testing — the run "
                         "must complete un-journaled with the "
                         "journal_disabled counter set); with --shards "
                         "each worker's segment fails independently")
    sb.add_argument("--mutate-every", type=int, default=0, metavar="N",
                    help="live-mutation mode: after every N served "
                         "requests apply one seeded schema/value mutation "
                         "(epoch bump), invalidate the engine's caches "
                         "and reindex the mutated database; requests are "
                         "served serially so mutations land at request "
                         "boundaries (0 = off; not supported with "
                         "--shards or --async)")

    rc = sub.add_parser(
        "recover",
        help="replay a killed serve-bench journal to completion, "
             "re-running exactly the uncommitted requests",
    )
    rc.add_argument("--journal", required=True, metavar="PATH",
                    help="journal written by 'serve-bench --journal PATH' "
                         "(its header pins workload and pipeline config)")
    rc.add_argument("--report-out", metavar="PATH",
                    help="write the recovered run's deterministic report "
                         "JSON to PATH")
    rc.add_argument("--dry-run", action="store_true",
                    help="inspect only: print committed / pending / "
                         "corrupt counts per segment without rebuilding "
                         "the pipeline or replaying anything")

    fs = sub.add_parser(
        "fsck",
        help="validate a journal file or segment directory: checksums, "
             "record sequence, seals, cross-segment double-serves",
    )
    fs.add_argument("--journal", required=True, metavar="PATH",
                    help="journal file, or a cluster segment directory")
    fs.add_argument("--repair", action="store_true",
                    help="truncate torn tails in place and quarantine "
                         "interior damage to a .quarantine sidecar, "
                         "rewriting the good records")

    cf = sub.add_parser(
        "crash-fuzz",
        help="crash-consistency fuzzer: enumerate simulated power cuts "
             "at every journal append boundary of a sharded routed run "
             "and certify recovery at each one",
    )
    cf.add_argument("--shards", type=int, default=3, metavar="N",
                    help="journal segments in the reference run "
                         "(default: 3)")
    cf.add_argument("--requests", type=int, default=12, metavar="N",
                    help="workload size of the reference run (default: 12)")
    cf.add_argument("--distinct", type=int, default=6, metavar="N",
                    help="distinct questions, spread across databases "
                         "(default: 6)")
    cf.add_argument("--limit", type=int, default=0, metavar="N",
                    help="fuzz only the first N clean and N torn cut "
                         "points (0 = every append boundary)")
    cf.add_argument("--bitflips", type=int, default=3, metavar="N",
                    help="seeded single-bit corruption trials on the "
                         "completed run (default: 3)")
    cf.add_argument("--no-torn", action="store_true",
                    help="skip torn (mid-append) cut variants")
    cf.add_argument("--no-routing", action="store_true",
                    help="fuzz an unrouted pipeline (default routes "
                         "through FAST/FULL/HEAVY tiers)")
    cf.add_argument("--out", metavar="PATH",
                    help="write one JSON line per cut outcome to PATH; "
                         "two runs with the same seed must produce "
                         "byte-identical files")

    df = sub.add_parser(
        "drift-fuzz",
        help="drift-chaos certifier: interleave seeded live mutations at "
             "the request boundaries of a routed serving run, then "
             "enumerate simulated SIGKILLs at every reindex-checkpoint "
             "append boundary and certify zero stale serves, zero "
             "double-reindexes and byte-identical kill/resume",
    )
    df.add_argument("--requests", type=int, default=10, metavar="N",
                    help="workload size of the serve phase (default: 10)")
    df.add_argument("--distinct", type=int, default=5, metavar="N",
                    help="distinct questions, spread across databases "
                         "(default: 5)")
    df.add_argument("--mutate-every", type=int, default=1, metavar="N",
                    help="apply one mutation after every N served "
                         "requests (default: 1)")
    df.add_argument("--limit", type=int, default=0, metavar="N",
                    help="fuzz only the first N clean and N torn cut "
                         "points (0 = every checkpoint append boundary)")
    df.add_argument("--no-torn", action="store_true",
                    help="skip torn (mid-append) cut variants")
    df.add_argument("--no-routing", action="store_true",
                    help="serve an unrouted pipeline (default routes "
                         "through FAST/FULL/HEAVY tiers)")
    df.add_argument("--out", metavar="PATH",
                    help="write the full campaign outcome document to "
                         "PATH as JSON; two runs with the same seed must "
                         "produce byte-identical files")

    tr = sub.add_parser(
        "trace",
        help="serve one question with tracing on and print its span tree",
    )
    tr.add_argument("--question-id", help="question id (default: first dev)")
    tr.add_argument("--split", choices=("dev", "test", "train"), default="dev")
    tr.add_argument("--json", action="store_true",
                    help="emit the trace as a JSON document instead of the "
                         "tree view")
    tr.add_argument("--deadline-ms", type=float, default=0.0, metavar="MS",
                    help="per-request deadline in virtual milliseconds "
                         "(0 = none)")
    tr.add_argument("--fault-rate", type=float, default=0.0, metavar="R",
                    help="inject LLM and database faults at rate R; "
                         "injections and retries appear as span events")

    rb = sub.add_parser(
        "route-bench",
        help="score the difficulty router over a workload: tier mix, "
             "per-difficulty routing and (optionally) the tiered-vs-full "
             "token comparison",
    )
    rb.add_argument("--size", type=int, default=100, metavar="N",
                    help="mini-dev sample size (default: 100)")
    rb.add_argument("--answer", action="store_true",
                    help="also answer every request through the tiers and "
                         "report EX + tokens/request against an always-FULL "
                         "run (slow)")
    rb.add_argument("--decisions-out", metavar="PATH",
                    help="write one JSON line per request (question_id, "
                         "tier, score, features) — two runs with the same "
                         "seed must produce byte-identical files")

    mt = sub.add_parser(
        "metrics",
        help="serve a Zipf workload and export the unified metrics registry",
    )
    mt.add_argument("--requests", type=int, default=24, metavar="N",
                    help="requests to serve before the export (default: 24)")
    mt.add_argument("--workers", type=int, default=2, metavar="N",
                    help="serving thread-pool size (default: 2)")
    mt.add_argument("--distinct", type=int, default=8, metavar="N",
                    help="distinct dev questions in the pool (default: 8)")
    mt.add_argument("--zipf", type=float, default=1.2, metavar="S",
                    help="Zipf popularity skew (default: 1.2)")
    mt.add_argument("--format", choices=("text", "json", "jsonl"),
                    default="text",
                    help="export format (default: text)")
    return parser


def _build_benchmark(name: str) -> Benchmark:
    return build_bird_like() if name == "bird" else build_spider_like()


def _build_pipeline(benchmark: Benchmark, args) -> OpenSearchSQL:
    config = PipelineConfig(n_candidates=args.candidates, seed=args.seed)
    llm = SimulatedLLM(skill_by_name(args.model), seed=args.seed)
    return OpenSearchSQL(benchmark, llm, config)


def _cmd_stats(args, out) -> int:
    rows = []
    for name in ("bird", "spider"):
        stats = _build_benchmark(name).statistics
        rows.append(
            [stats["name"], stats["train"], stats["dev"], stats["test"],
             stats["databases"], stats["tables"], stats["columns"]]
        )
    out.write(
        format_table(
            ["Dataset", "train", "dev", "test", "databases", "tables", "columns"],
            rows,
        )
        + "\n"
    )
    return 0


def _cmd_run(args, out) -> int:
    benchmark = _build_benchmark(args.benchmark)
    examples = benchmark.split(args.split)
    if args.question_id:
        matches = [e for e in examples if e.question_id == args.question_id]
        if not matches:
            out.write(f"error: no question {args.question_id!r} in {args.split}\n")
            return 2
        example = matches[0]
    else:
        example = examples[0]
    pipeline = _build_pipeline(benchmark, args)
    result = pipeline.answer(example)
    out.write(f"question : {example.question}\n")
    if example.evidence:
        out.write(f"evidence : {example.evidence}\n")
    out.write(f"sql      : {result.final_sql}\n")
    outcome = pipeline.executor(example.db_id).execute(result.final_sql)
    gold = pipeline.executor(example.db_id).execute(example.gold_sql)
    verdict = "correct" if outcome.rows == gold.rows else "different-result"
    out.write(f"rows     : {outcome.rows[:5]}\n")
    out.write(f"verdict  : {verdict}\n")
    return 0


def _cmd_evaluate(args, out) -> int:
    benchmark = _build_benchmark(args.benchmark)
    examples = benchmark.split(args.split)
    if args.limit:
        examples = examples[: args.limit]
    pipeline = _build_pipeline(benchmark, args)

    injector = None
    if args.fault_rate > 0:
        from repro.reliability import FaultInjectingLLM, FaultPlan, ResilientLLM

        # Preprocessing already ran on the clean client; only the per-
        # question transport goes through the chaos stack.
        injector = FaultInjectingLLM(
            pipeline.llm, FaultPlan.chaos(args.fault_rate), seed=args.seed
        )
        llm = injector if args.no_retry else ResilientLLM(injector, seed=args.seed)
        pipeline.rebind_llm(llm)

    report = evaluate_pipeline(
        pipeline, examples,
        checkpoint_path=args.checkpoint,
        workers=args.workers,
        deadline_ms=args.deadline_ms or None,
    )
    out.write(f"examples : {report.count}\n")
    if args.workers > 1:
        out.write(f"workers  : {args.workers}\n")
    out.write(f"EX       : {report.ex:.1f}\n")
    out.write(f"EX_G     : {report.ex_g:.1f}\n")
    out.write(f"EX_R     : {report.ex_r:.1f}\n")
    out.write(f"R-VES    : {report.r_ves:.1f}\n")
    latency = report.latency_summary()
    if latency.count:
        out.write(
            f"latency  : p50={latency.p50:.2f}s p95={latency.p95:.2f}s "
            f"p99={latency.p99:.2f}s mean={latency.mean:.2f}s (model)\n"
        )
    stage_costs = report.stage_costs()
    if stage_costs:
        out.write("stage costs (per request):\n")
        for stage, row in stage_costs.items():
            out.write(
                f"  {stage:12s} {row['tokens_per_request']:>8.1f} tok  "
                f"{row['model_seconds_per_request']:.3f}s  "
                f"share={row['tokens_share'] * 100:.0f}%\n"
            )
    for difficulty, value in report.ex_by_difficulty().items():
        out.write(f"  {difficulty:12s} {value:.1f}\n")
    if report.errors or report.degradations:
        out.write(f"errors   : {len(report.errors)}\n")
        out.write(f"degraded : {report.degradation_counts()}\n")
    if injector is not None:
        out.write(f"faults   : {injector.stats.fault_counts()}\n")
    return 0


_ABLATIONS = [
    ("full", {}),
    ("w/o extraction", {"use_extraction": False}),
    ("w/o few-shot", {"fewshot_style": "none"}),
    ("w/o CoT", {"cot_mode": "none"}),
    ("w/o alignments", {"use_alignments": False}),
    ("w/o refinement", {"use_refinement": False}),
    ("w/o SC & vote", {"use_self_consistency": False}),
]


def _cmd_ablate(args, out) -> int:
    benchmark = _build_benchmark(args.benchmark)
    examples = mini_dev(benchmark, size=args.size) if args.benchmark == "bird" else benchmark.dev
    rows = []
    for name, changes in _ABLATIONS:
        config = PipelineConfig(
            n_candidates=args.candidates, seed=args.seed
        ).with_(**changes)
        llm = SimulatedLLM(skill_by_name(args.model), seed=args.seed)
        pipeline = OpenSearchSQL(benchmark, llm, config)
        report = evaluate_pipeline(pipeline, examples)
        rows.append([name, report.ex_g, report.ex_r, report.ex])
    out.write(format_table(["Setup", "EX_G", "EX_R", "EX"], rows) + "\n")
    return 0


def _cmd_baselines(args, out) -> int:
    benchmark = _build_benchmark(args.benchmark)
    examples = (
        mini_dev(benchmark, size=150)
        if args.benchmark == "bird"
        else benchmark.dev
    )
    rows = []
    for system in all_baselines(benchmark, seed=args.seed):
        report = evaluate_system(system, benchmark, examples)
        rows.append([system.name, report.ex, report.r_ves])
    pipeline = _build_pipeline(benchmark, args)
    ours = evaluate_pipeline(pipeline, examples, name="OpenSearch-SQL")
    rows.append([ours.system, ours.ex, ours.r_ves])
    rows.sort(key=lambda row: row[1])
    out.write(format_table(["Method", "EX", "R-VES"], rows) + "\n")
    return 0


def _build_backend_pool(pipeline, replicas: int, fault_rate: float, seed: int):
    """N ResilientLLM replicas over the pipeline's simulated model, the
    primary (replica 0) fault-injected at ``fault_rate``."""
    from repro.reliability import FaultInjectingLLM, FaultPlan, ResilientLLM
    from repro.serving import BackendPool

    clients = []
    for index in range(replicas):
        inner = pipeline.llm
        if index == 0 and fault_rate > 0:
            inner = FaultInjectingLLM(
                inner, FaultPlan.chaos(fault_rate), seed=seed + index
            )
        clients.append(ResilientLLM(inner, seed=seed + index))
    return BackendPool(clients)


def _select_pool(dev, distinct: int, mode: str):
    """The distinct-question pool a serve-bench workload samples from.

    ``prefix`` keeps the historical behaviour (first N dev examples —
    the dev split is grouped by database, so small N means one db).
    ``spread`` deals one example per database round-robin, in the dev
    split's first-appearance order, so N questions span min(N, #dbs)
    databases.  Both are pure functions of (dev, distinct, mode): the
    journal header records the mode and ``repro recover`` rebuilds the
    identical pool.
    """
    if not distinct:
        return dev
    if mode == "spread":
        by_db: dict = {}
        for example in dev:
            by_db.setdefault(example.db_id, []).append(example)
        queues = list(by_db.values())
        pool = []
        index = 0
        while len(pool) < distinct and any(queues):
            queue = queues[index % len(queues)]
            if queue:
                pool.append(queue.pop(0))
            index += 1
        return pool
    return dev[:distinct]


def _cmd_serve_bench_cluster(args, out) -> int:
    """serve-bench --shards N: drive the multi-process cluster."""
    from repro.serving import (
        ClusterConfig,
        ShardCoordinator,
        ShardedJournalView,
        assemble_report,
        recover_run,
    )
    from repro.serving.workload import zipf_workload

    if not args.journal:
        out.write("error: --shards requires --journal DIR (one segment "
                  "per worker is written inside it)\n")
        return 2
    unsupported = [
        ("--async", args.use_async),
        ("--mode open", args.mode == "open"),
        ("--no-cache", args.no_cache),
        ("--fault-rate", args.fault_rate > 0),
        ("--hedge-ms", args.hedge_ms > 0),
        ("--backends", args.backends > 0),
        ("--db-max-inflight", args.db_max_inflight > 0),
        ("--health-shed", args.health_shed),
    ]
    bad = [flag for flag, on in unsupported if on]
    if bad:
        out.write(f"error: {', '.join(bad)} not supported with --shards\n")
        return 2

    benchmark = _build_benchmark(args.benchmark)
    pool = _select_pool(benchmark.dev, args.distinct, args.pool)
    workload = zipf_workload(
        pool, requests=args.requests, skew=args.zipf, seed=args.seed
    )
    routing_config: dict = {}
    if args.routing:
        from repro.routing import RoutingConfig

        routing_config = RoutingConfig().to_dict()
    config = ClusterConfig(
        shards=args.shards,
        benchmark=args.benchmark,
        model=args.model,
        candidates=args.candidates,
        seed=args.seed,
        journal_dir=args.journal,
        queue_capacity=args.queue_capacity,
        deadline_seconds=(args.deadline_ms / 1000.0) or None,
        restart_budget=args.restart_budget,
        routing=args.routing,
        routing_config=routing_config,
        header={
            "requests": args.requests,
            "distinct": args.distinct,
            "pool": args.pool,
            "zipf": args.zipf,
        },
        storage=(
            {"enospc_after": args.storage_enospc_after}
            if args.storage_enospc_after > 0
            else {}
        ),
    )

    on_result = None
    if args.kill_worker >= 0:
        kill_worker = args.kill_worker
        kill_after = args.kill_after or 2
        killed = []

        def on_result(worker_id: int, results: int) -> None:
            if worker_id == kill_worker and results >= kill_after and not killed:
                killed.append(worker_id)
                coordinator.kill_worker(worker_id)

    metrics = None
    if args.metrics_out:
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()

    coordinator = ShardCoordinator(config, metrics=metrics, on_result=on_result)
    with coordinator:
        results = coordinator.run(workload)
        stats = coordinator.stats()
    served = sum(1 for r in results if r is not None)
    out.write(
        f"workload : {args.requests} requests over {len(pool)} distinct "
        f"questions (zipf skew {args.zipf}, {args.shards} shards)\n"
    )
    out.write(f"served   : {served}/{len(workload)}\n")
    out.write(stats.format() + "\n")
    if metrics is not None:
        from pathlib import Path

        target = Path(args.metrics_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(coordinator.merged_metrics().to_json() + "\n")
        out.write(f"metrics  : wrote snapshot to {args.metrics_out}\n")
    if args.report_out:
        # Score through the merged view of every shard's segment; the
        # report comes out of the same recover_run/assemble_report path
        # the single-process bench uses, so the two are byte-comparable.
        view = ShardedJournalView(args.journal)
        clean = _build_pipeline(benchmark, args)
        if args.routing:
            from repro.routing import RoutingConfig, TieredPipeline

            clean = TieredPipeline(
                clean, RoutingConfig.from_dict(routing_config)
            )
        outcomes = recover_run(
            view, clean, workload, result_cache_size=config.result_cache_size
        )
        report = assemble_report(outcomes, workload, clean)
        _write_deterministic_report(report, args.report_out)
        out.write(f"report   : wrote {args.report_out} (EX {report.ex:.1f})\n")
    return 0


def _cmd_serve_bench(args, out) -> int:
    import os
    import signal

    if args.mutate_every > 0 and (args.shards > 0 or args.use_async):
        out.write("error: --mutate-every serves serially on the in-process "
                  "sync engine; not supported with --shards or --async\n")
        return 2
    if args.shards > 0:
        return _cmd_serve_bench_cluster(args, out)

    from repro.serving import (
        DEFAULT_HEALTH_SHED,
        AsyncServingEngine,
        ServingEngine,
        ServingJournal,
        assemble_report,
        recover_run,
    )
    from repro.serving.workload import zipf_workload

    benchmark = _build_benchmark(args.benchmark)
    pool = _select_pool(benchmark.dev, args.distinct, args.pool)
    workload = zipf_workload(
        pool, requests=args.requests, skew=args.zipf, seed=args.seed
    )
    pipeline = _build_pipeline(benchmark, args)
    tiered = None
    if args.routing:
        from repro.routing import TieredPipeline

        # Chaos/backends rebind the *base* LLM below, which is exactly the
        # FULL tier; the FAST/HEAVY tiers keep their own clean clients.
        tiered = TieredPipeline(pipeline)

    llm_injector = db_stats = backends = None
    if args.backends > 0:
        backends = _build_backend_pool(
            pipeline, args.backends, args.fault_rate, args.seed
        )
        pipeline.rebind_llm(backends)
    elif args.fault_rate > 0:
        from repro.reliability import FaultInjectingLLM, FaultPlan, ResilientLLM

        llm_injector = FaultInjectingLLM(
            pipeline.llm, FaultPlan.chaos(args.fault_rate), seed=args.seed
        )
        pipeline.rebind_llm(ResilientLLM(llm_injector, seed=args.seed))
    if args.fault_rate > 0:
        from repro.execution import DbFaultPlan, FaultInjectingExecutor
        from repro.reliability import ReliabilityStats

        db_stats = ReliabilityStats()
        db_plan = DbFaultPlan.chaos(args.fault_rate)
        pipeline.set_executor_wrapper(
            lambda executor, db_id: FaultInjectingExecutor(
                executor, db_plan, seed=args.seed, stats=db_stats
            )
        )

    journal = None
    cache_size = 0 if args.no_cache else 512
    if args.journal:
        opener = None
        if args.storage_enospc_after > 0:
            from repro.storage import FaultyStorage, StorageFaultPlan

            opener = FaultyStorage(
                StorageFaultPlan(enospc_after=args.storage_enospc_after),
                seed=args.seed,
            ).opener
        journal = ServingJournal(args.journal, opener=opener)
        # The header pins the active skill profile and — for routed runs —
        # the routing config plus the workload's routed tier mix, so
        # 'repro recover' can refuse to replay under a different model
        # tier instead of silently producing a divergent report.
        header = {
            "benchmark": args.benchmark,
            "model": args.model,
            "skill_profile": args.model,
            "candidates": args.candidates,
            "seed": args.seed,
            "requests": args.requests,
            "distinct": args.distinct,
            "pool": args.pool,
            "zipf": args.zipf,
            "result_cache_size": cache_size,
        }
        if args.use_async:
            header["async"] = True
        if tiered is not None:
            header["routing"] = True
            header["routing_config"] = tiered.routing_config.to_dict()
            header["tier_mix"] = tiered.tier_mix(workload)
        journal.write_header(header)
        if args.kill_after > 0:
            kill_after = args.kill_after

            def _kill(commits: int) -> None:
                if commits >= kill_after:
                    os.kill(os.getpid(), signal.SIGKILL)

            journal.on_commit = _kill

    metrics = None
    if args.metrics_out:
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()

    hedge_ms = args.hedge_ms
    if args.fault_rate > 0 and not hedge_ms:
        hedge_ms = 2000.0
    engine_cls = AsyncServingEngine if args.use_async else ServingEngine
    queue_capacity = args.queue_capacity
    if args.use_async:
        # The async engine admits non-blocking (a blocking admit would
        # stall the event loop), so the queue must cover the workload.
        queue_capacity = max(queue_capacity, args.requests)
    engine = engine_cls(
        tiered if tiered is not None else pipeline,
        workers=args.workers,
        queue_capacity=queue_capacity,
        result_cache_size=cache_size,
        extraction_cache_size=0 if args.no_cache else 1024,
        fewshot_cache_size=0 if args.no_cache else 1024,
        deadline_seconds=(args.deadline_ms / 1000.0) or None,
        hedge_threshold=(hedge_ms / 1000.0) or None,
        db_max_inflight=args.db_max_inflight or None,
        journal=journal,
        backends=backends,
        health_shed=DEFAULT_HEALTH_SHED if args.health_shed else None,
        metrics=metrics,
    )
    driver = reindexer = None
    if args.mutate_every > 0:
        import tempfile
        from pathlib import Path

        from repro.livedata import EpochRegistry, MutationDriver, ReindexWorker

        registry = EpochRegistry()
        engine.attach_livedata(registry)
        driver = MutationDriver(benchmark, registry, seed=args.seed)
        if args.journal:
            checkpoint_path = Path(str(args.journal) + ".reindex")
        else:
            _reindex_dir = tempfile.TemporaryDirectory(prefix="repro-reindex-")
            checkpoint_path = Path(_reindex_dir.name) / "reindex.jsonl"
        reindexer = ReindexWorker(
            pipeline, checkpoint_path, registry=registry, health=engine.health
        )

    with engine:
        if driver is not None:
            # Live-mutation mode serves serially so every mutation lands
            # on a request boundary; the reindexer catches the mutated
            # database up before the next request is admitted.
            results = []
            for position, example in enumerate(workload):
                results.append(engine.answer(example))
                if (position + 1) % args.mutate_every == 0 \
                        and position + 1 < len(workload):
                    event = driver.mutate()
                    engine.invalidate_db(event.db_id)
                    reindexer.reindex(event.db_id, epoch=event.epoch)
        else:
            results = engine.run(workload, block=(args.mode == "closed"))
        stats = engine.stats()
    served = sum(1 for r in results if r is not None)
    mode_label = "async" if args.use_async else f"{args.mode}-loop"
    out.write(
        f"workload : {args.requests} requests over {len(pool)} distinct "
        f"questions (zipf skew {args.zipf}, {mode_label})\n"
    )
    out.write(f"served   : {served}/{len(workload)}\n")
    out.write(stats.format() + "\n")
    if journal is not None and journal.disabled:
        out.write(
            f"journal  : DISABLED after write error "
            f"({journal.disable_reason}); run completed un-journaled\n"
        )
    if driver is not None:
        kinds: dict = {}
        for event in driver.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        mix = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        live = engine.livedata_stats
        out.write(f"mutations: {len(driver.events)} applied ({mix})\n")
        out.write(
            f"livedata : stale_detected={live['stale_detected']} "
            f"stale_retried={live['stale_retried']} "
            f"stale_served={live['stale_served']} "
            f"invalidations={live['invalidations']}\n"
        )
        out.write(
            f"reindex  : {len(reindexer.reports)} reindexes, "
            f"{sum(r.vectors for r in reindexer.reports)} vectors, "
            f"catchup {reindexer.total_catchup_seconds:.3f}s (virtual)\n"
        )
        reindexer.close()
    if tiered is not None:
        out.write(f"routing  : {tiered.routing_stats()}\n")
    if llm_injector is not None:
        out.write(f"llm faults : {llm_injector.stats.fault_counts()}\n")
    if db_stats is not None:
        out.write(f"db faults  : {db_stats.fault_counts()}\n")
    if metrics is not None:
        from pathlib import Path

        target = Path(args.metrics_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(metrics.to_json() + "\n")
        out.write(f"metrics  : wrote snapshot to {args.metrics_out}\n")
    if args.report_out and journal is not None:
        # The journal is complete here, so recover_run replays it without
        # re-running anything; scoring goes through a clean pipeline (no
        # chaos wrappers) so the report reflects what was served.
        clean = _build_pipeline(benchmark, args)
        if tiered is not None:
            from repro.routing import RoutingConfig, TieredPipeline

            clean = TieredPipeline(
                clean, RoutingConfig.from_dict(tiered.routing_config.to_dict())
            )
        outcomes = recover_run(
            journal, clean, workload, result_cache_size=cache_size
        )
        report = assemble_report(outcomes, workload, clean)
        _write_deterministic_report(report, args.report_out)
        out.write(f"report   : wrote {args.report_out} (EX {report.ex:.1f})\n")
    return 0


def _write_deterministic_report(report, path) -> None:
    import json
    from pathlib import Path

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(report.deterministic_dict(), indent=2, sort_keys=True) + "\n"
    )


def _cmd_recover(args, out) -> int:
    from pathlib import Path

    from repro.livedata.errors import CrossEpochReplayError
    from repro.serving import (
        DoubleServeError,
        JournalCorruptionError,
        JournalVersionError,
        ServingJournal,
        ShardedJournalView,
        assemble_report,
        recover_run,
    )
    from repro.serving.workload import zipf_workload

    if args.dry_run:
        return _recover_dry_run(args.journal, out)

    # A directory is a sharded cluster run: discover every
    # journal-shard-K.jsonl segment and replay them as one merged run.
    # Damage surfaces here as a typed one-line error, never a traceback:
    # interior corruption says which segment and points at fsck, a
    # version from the future refuses cleanly, a double-serve names the
    # seq served twice.
    sharded = Path(args.journal).is_dir()
    try:
        if sharded:
            journal = ShardedJournalView(args.journal)
        else:
            journal = ServingJournal(args.journal)
    except (
        FileNotFoundError,
        JournalCorruptionError,
        JournalVersionError,
        DoubleServeError,
    ) as exc:
        out.write(f"error: {exc}\n")
        return 2
    config = journal.config
    if not config:
        out.write(f"error: {args.journal} has no header record\n")
        return 2
    # The header pins everything needed to rebuild the exact run: the
    # workload parameters and the pipeline's deterministic seeds.
    for name in ("benchmark", "model", "candidates", "seed"):
        if name in config:
            setattr(args, name, config[name])
    benchmark = _build_benchmark(args.benchmark)
    pool = _select_pool(
        benchmark.dev, config.get("distinct", 0), config.get("pool", "prefix")
    )
    workload = zipf_workload(
        pool,
        requests=config.get("requests", len(pool)),
        skew=config.get("zipf", 1.2),
        seed=args.seed,
    )
    recorded_profile = config.get("skill_profile")
    if recorded_profile is not None and recorded_profile != args.model:
        out.write(
            f"error: journal header is inconsistent — skill_profile "
            f"{recorded_profile!r} != model {args.model!r}; refusing to "
            f"replay under a different model tier\n"
        )
        return 2
    pipeline = _build_pipeline(benchmark, args)
    if config.get("routing"):
        from repro.routing import RoutingConfig, TieredPipeline

        pipeline = TieredPipeline(
            pipeline, RoutingConfig.from_dict(config.get("routing_config", {}))
        )
        recorded_mix = config.get("tier_mix")
        if recorded_mix is not None:
            recomputed = pipeline.tier_mix(workload)
            if recomputed != recorded_mix:
                out.write(
                    f"error: routed tier mix diverged — journal recorded "
                    f"{recorded_mix}, this process routes {recomputed}; "
                    f"refusing to replay under a different tier mix\n"
                )
                return 2
    pending_before = len(journal.pending())
    committed_before = len(journal)
    try:
        outcomes = recover_run(
            journal,
            pipeline,
            workload,
            result_cache_size=config.get("result_cache_size", 512),
        )
    except CrossEpochReplayError as exc:
        # Committed records carry schema_epoch stamps this catalog can't
        # honour (the run spanned live mutations; a rebuilt pipeline is
        # at epoch 0): replay would re-serve answers computed against a
        # world that no longer exists.  --dry-run shows the stamps.
        out.write(f"error: cross-epoch replay refused — {exc}\n")
        return 2
    report = assemble_report(outcomes, workload, pipeline)
    if sharded:
        shares = ", ".join(
            f"shard{shard}={count}"
            for shard, count in sorted(journal.committed_by_shard().items())
        )
        out.write(f"segments : {len(journal.segments)} ({shares})\n")
    out.write(
        f"journal  : {committed_before} committed, {pending_before} pending, "
        f"{len(workload) - committed_before} to finish\n"
    )
    out.write(f"recovered: {len(outcomes)}/{len(workload)} requests\n")
    if report.meta.get("tier_mix"):
        out.write(f"tier mix : {report.meta['tier_mix']}\n")
    out.write(f"EX       : {report.ex:.1f}\n")
    out.write(f"EX_G     : {report.ex_g:.1f}\n")
    out.write(f"EX_R     : {report.ex_r:.1f}\n")
    out.write(f"tokens   : {report.cost.total_tokens}\n")
    if args.report_out:
        _write_deterministic_report(report, args.report_out)
        out.write(f"report   : wrote {args.report_out}\n")
    return 0


def _recover_dry_run(journal_path, out) -> int:
    """recover --dry-run: tolerant scan, counts only, no replay."""
    from repro.storage import find_double_serves, scan_path

    try:
        scans = scan_path(journal_path)
    except FileNotFoundError as exc:
        out.write(f"error: {exc}\n")
        return 2
    committed: set = set()
    accepted: set = set()
    corrupt = 0
    for name, scan in sorted(scans.items()):
        committed |= scan.committed
        accepted |= scan.accepted
        corrupt += len(scan.issues)
        state = "sealed" if scan.sealed else "unsealed"
        damage = (
            "clean"
            if not scan.issues
            else ("torn tail" if scan.torn_tail and not scan.interior_issues
                  else f"{len(scan.interior_issues)} corrupt")
        )
        out.write(
            f"{name}: v{scan.header_version or 1} {state}, "
            f"{len(scan.committed)} committed, "
            f"{len(scan.accepted - scan.committed)} pending, {damage}\n"
        )
    doubles = find_double_serves(scans)
    out.write(
        f"total: {len(committed)} committed, "
        f"{len(accepted - committed)} pending, {corrupt} corrupt lines, "
        f"{len(doubles)} double-serves\n"
    )
    # schema_epoch stamps: a database whose committed records span more
    # than one epoch — or any epoch other than 0 — cannot be replayed by
    # a freshly rebuilt catalog; full 'recover' will refuse with a typed
    # CrossEpochReplayError, and this is the inspection view of why.
    stamps: dict = {}
    for _name, scan in sorted(scans.items()):
        db_by_seq = {
            record["seq"]: record.get("db_id", "?")
            for record in scan.parsed
            if record.get("type") == "accepted"
        }
        for record in scan.parsed:
            if record.get("type") == "committed" and "schema_epoch" in record:
                db_id = db_by_seq.get(record.get("seq"), "?")
                stamps.setdefault(db_id, set()).add(record["schema_epoch"])
    mismatched = 0
    for db_id, epochs in sorted(stamps.items()):
        if sorted(epochs) != [0]:
            mismatched += 1
            out.write(
                f"epochs: {db_id} committed at schema_epoch "
                f"{sorted(epochs)} != replay catalog [0] — "
                f"CROSS-EPOCH (recover will refuse)\n"
            )
    if stamps and not mismatched:
        out.write(
            f"epochs: {len(stamps)} stamped databases, all at "
            f"schema_epoch 0 (replayable)\n"
        )
    return 0


def _cmd_fsck(args, out) -> int:
    """Validate (and optionally repair) a journal file or directory."""
    from repro.storage import find_double_serves, repair_file, scan_path

    try:
        scans = scan_path(args.journal)
    except FileNotFoundError as exc:
        out.write(f"error: {exc}\n")
        return 2
    issues = 0
    for name, scan in sorted(scans.items()):
        if not scan.issues:
            status = "ok"
        elif scan.torn_tail and not scan.interior_issues:
            status = "torn tail (safe to truncate)"
        else:
            reasons = sorted({i.reason for i in scan.interior_issues})
            status = f"CORRUPT ({', '.join(reasons)})"
        issues += len(scan.issues)
        out.write(
            f"{name}: v{scan.header_version or 1}, "
            f"{scan.records} records, "
            f"{len(scan.committed)} committed, "
            f"{'sealed' if scan.sealed else 'unsealed'} — {status}\n"
        )
    doubles = find_double_serves(scans)
    for seq, names in sorted(doubles.items()):
        out.write(f"DOUBLE-SERVE: seq {seq} committed by {', '.join(names)}\n")
    if not issues and not doubles:
        out.write("fsck: clean\n")
        return 0
    if not args.repair:
        out.write(
            f"fsck: {issues} damaged lines, {len(doubles)} double-serves "
            f"(run with --repair to truncate tears and quarantine damage)\n"
        )
        return 1
    from pathlib import Path

    base = Path(args.journal)
    for name, scan in sorted(scans.items()):
        if not scan.issues:
            continue
        target = base / name if base.is_dir() else base
        result = repair_file(target)
        actions = []
        if result.tail_truncated:
            actions.append("truncated torn tail")
        if result.quarantined:
            actions.append(
                f"quarantined {result.quarantined} lines to "
                f"{Path(result.quarantine_path).name}"
            )
        if result.rewritten:
            actions.append(f"rewrote {result.records_kept} records")
        out.write(f"repaired {name}: {'; '.join(actions) or 'no-op'}\n")
    # double-serves are not repairable: both records are well-formed, so
    # dropping either would forge history — recovery refuses instead
    return 1 if doubles else 0


def _cmd_crash_fuzz(args, out) -> int:
    """Enumerate power cuts over a reference run and certify recovery."""
    import json
    import tempfile
    from pathlib import Path

    from repro.storage.crashfuzz import CrashFuzzConfig, run_crash_fuzz

    config = CrashFuzzConfig(
        shards=args.shards,
        requests=args.requests,
        distinct=args.distinct,
        seed=args.seed,
        candidates=args.candidates,
        routing=not args.no_routing,
        torn=not args.no_torn,
        bitflips=args.bitflips,
        limit=args.limit or None,
    )
    with tempfile.TemporaryDirectory(prefix="repro-crashfuzz-") as workdir:
        result = run_crash_fuzz(config, workdir)
    out.write(result.format() + "\n")
    for outcome in result.outcomes:
        if not outcome.ok:
            out.write(f"FAIL {json.dumps(outcome.to_dict(), sort_keys=True)}\n")
    if args.out:
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for outcome in result.outcomes:
                handle.write(
                    json.dumps(outcome.to_dict(), sort_keys=True) + "\n"
                )
        out.write(f"outcomes : wrote {args.out}\n")
    return 0 if result.ok else 1


def _cmd_drift_fuzz(args, out) -> int:
    """Certify live-mutation robustness: serve-with-drift + kill/resume."""
    import json
    import tempfile
    from pathlib import Path

    from repro.livedata.driftfuzz import DriftFuzzConfig, run_drift_fuzz

    config = DriftFuzzConfig(
        requests=args.requests,
        distinct=args.distinct,
        seed=args.seed,
        candidates=args.candidates,
        routing=not args.no_routing,
        mutate_every=args.mutate_every,
        limit=args.limit or None,
        torn=not args.no_torn,
    )
    with tempfile.TemporaryDirectory(prefix="repro-driftfuzz-") as workdir:
        result = run_drift_fuzz(config, workdir)
    out.write(result.format() + "\n")
    for outcome in result.outcomes:
        if not outcome.ok:
            out.write(f"FAIL {json.dumps(outcome.to_dict(), sort_keys=True)}\n")
    if args.out:
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        out.write(f"outcomes : wrote {args.out}\n")
    return 0 if result.ok else 1


def _cmd_trace(args, out) -> int:
    from repro.serving import ServingEngine

    benchmark = _build_benchmark(args.benchmark)
    examples = benchmark.split(args.split)
    if args.question_id:
        matches = [e for e in examples if e.question_id == args.question_id]
        if not matches:
            out.write(f"error: no question {args.question_id!r} in {args.split}\n")
            return 2
        example = matches[0]
    else:
        example = examples[0]
    pipeline = _build_pipeline(benchmark, args)

    if args.fault_rate > 0:
        from repro.execution import DbFaultPlan, FaultInjectingExecutor
        from repro.reliability import FaultInjectingLLM, FaultPlan, ResilientLLM

        injector = FaultInjectingLLM(
            pipeline.llm, FaultPlan.chaos(args.fault_rate), seed=args.seed
        )
        pipeline.rebind_llm(ResilientLLM(injector, seed=args.seed))
        db_plan = DbFaultPlan.chaos(args.fault_rate)
        pipeline.set_executor_wrapper(
            lambda executor, db_id: FaultInjectingExecutor(
                executor, db_plan, seed=args.seed
            )
        )

    with ServingEngine(
        pipeline,
        workers=1,
        tracing=True,
        deadline_seconds=(args.deadline_ms / 1000.0) or None,
    ) as engine:
        engine.answer(example)
        trace = engine.last_trace()
    if args.json:
        out.write(trace.to_json() + "\n")
    else:
        out.write(trace.format() + "\n")
        out.write("stage costs:\n")
        for stage, row in trace.stage_costs().items():
            out.write(
                f"  {stage:14s} tokens={row['tokens']:<6d} "
                f"model={row['model_seconds']:.3f}s "
                f"charged={row['charged_seconds']:.3f}s\n"
            )
    return 0


def _cmd_route_bench(args, out) -> int:
    import json
    from pathlib import Path

    from repro.routing import TieredPipeline

    benchmark = _build_benchmark(args.benchmark)
    examples = (
        mini_dev(benchmark, size=args.size)
        if args.benchmark == "bird"
        else benchmark.dev[: args.size]
    )
    tiered = TieredPipeline(_build_pipeline(benchmark, args))
    decisions = [(example, tiered.route(example)) for example in examples]

    mix: dict = {}
    by_difficulty: dict = {}
    for example, decision in decisions:
        tier = decision.tier.value
        mix[tier] = mix.get(tier, 0) + 1
        row = by_difficulty.setdefault(example.difficulty, {})
        row[tier] = row.get(tier, 0) + 1
    out.write(f"examples : {len(examples)}\n")
    out.write(
        "tier mix : "
        + ", ".join(f"{tier}={count}" for tier, count in sorted(mix.items()))
        + "\n"
    )
    tiers = sorted(mix)
    rows = [
        [difficulty] + [by_difficulty[difficulty].get(tier, 0) for tier in tiers]
        for difficulty in sorted(by_difficulty)
    ]
    out.write(format_table(["Difficulty"] + tiers, rows) + "\n")

    if args.decisions_out:
        target = Path(args.decisions_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for example, decision in decisions:
                handle.write(
                    json.dumps(
                        {
                            "question_id": example.question_id,
                            "tier": decision.tier.value,
                            "score": decision.score,
                            "features": decision.features.to_dict(),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        out.write(f"decisions: wrote {args.decisions_out}\n")

    if args.answer:
        full = evaluate_pipeline(
            _build_pipeline(benchmark, args), examples, name="always-full"
        )
        tiered_report = evaluate_pipeline(tiered, examples, name="tiered")
        full_tpr = full.cost.total_tokens / max(1, full.count)
        tiered_tpr = tiered_report.cost.total_tokens / max(1, tiered_report.count)
        reduction = (full_tpr - tiered_tpr) / full_tpr * 100 if full_tpr else 0.0
        out.write(
            format_table(
                ["System", "EX", "tokens/request"],
                [
                    ["always-full", full.ex, round(full_tpr, 1)],
                    ["tiered", tiered_report.ex, round(tiered_tpr, 1)],
                ],
            )
            + "\n"
        )
        out.write(f"reduction: {reduction:.1f}% tokens/request "
                  f"(EX delta {tiered_report.ex - full.ex:+.1f})\n")
        out.write(f"routing  : {tiered.routing_stats()}\n")
    return 0


def _cmd_metrics(args, out) -> int:
    from repro.observability import MetricsRegistry
    from repro.serving import ServingEngine
    from repro.serving.workload import zipf_workload

    benchmark = _build_benchmark(args.benchmark)
    pool = benchmark.dev
    if args.distinct:
        pool = pool[: args.distinct]
    workload = zipf_workload(
        pool, requests=args.requests, skew=args.zipf, seed=args.seed
    )
    pipeline = _build_pipeline(benchmark, args)
    registry = MetricsRegistry()
    with ServingEngine(
        pipeline, workers=args.workers, metrics=registry
    ) as engine:
        engine.run(workload)
    if args.format == "json":
        out.write(registry.to_json() + "\n")
    elif args.format == "jsonl":
        out.write(registry.to_jsonl() + "\n")
    else:
        out.write(registry.render() + "\n")
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "run": _cmd_run,
    "evaluate": _cmd_evaluate,
    "ablate": _cmd_ablate,
    "baselines": _cmd_baselines,
    "serve-bench": _cmd_serve_bench,
    "recover": _cmd_recover,
    "fsck": _cmd_fsck,
    "crash-fuzz": _cmd_crash_fuzz,
    "drift-fuzz": _cmd_drift_fuzz,
    "trace": _cmd_trace,
    "route-bench": _cmd_route_bench,
    "metrics": _cmd_metrics,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)
