"""Cache primitives shared across layers.

:class:`LRUCache` is the one bounded-map primitive in the codebase: a
thread-safe LRU with optional TTL expiry, hit/miss/eviction accounting and
predicate invalidation.  The serving engine stacks three of them (result /
extraction / few-shot tiers), :class:`~repro.llm.simulated.SimulatedLLM`
bounds its parsed-gold cache with one, and :class:`GoldResultCache` wraps
one behind the gold-execution interface both evaluation runners share.

This module sits below every other layer and is deliberately
dependency-free (stdlib only), so llm, core, evaluation and serving can
all import it without cycles.  :mod:`repro.serving` re-exports the public
names.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

__all__ = [
    "CacheStats",
    "LRUCache",
    "GoldResultCache",
    "normalize_question",
    "result_cache_key",
]


def normalize_question(question: str) -> str:
    """Canonical exact-match cache key for a natural-language question.

    Collapses whitespace, strips trailing sentence punctuation and lowers
    case, so retyped variants of the same request ("How many  heads…?" vs
    "how many heads") share one result-cache entry.
    """
    return " ".join(question.split()).rstrip(" ?.!").lower()


def result_cache_key(example, pipeline=None) -> tuple:
    """Result-tier cache key for one request.

    The base key is ``(db_id, normalized question)``.  When ``pipeline``
    routes requests into cost tiers (duck-typed on ``route_tier``), the
    routed tier joins the key: after a router config/seed change, an old
    FAST answer can never mask the FULL answer the new routing would
    produce — the keys differ, so the request recomputes.  When the
    pipeline carries an epoch-versioned catalog (duck-typed on
    ``epochs``, an :class:`repro.livedata.EpochRegistry`), the
    database's current ``schema_epoch`` joins the key too: an answer
    derived from a pre-mutation catalog can never be served once the
    database moves on.  ``db_id`` stays first in every shape, keeping
    :meth:`LRUCache.invalidate_db` effective.
    """
    key: tuple = (example.db_id, normalize_question(example.question))
    route_tier = getattr(pipeline, "route_tier", None)
    if route_tier is not None:
        key = key + (route_tier(example),)
    epochs = getattr(pipeline, "epochs", None)
    if epochs is not None:
        key = key + (epochs.epoch(example.db_id),)
    return key


@dataclass
class CacheStats:
    """Counters one cache maintains over its lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total get() calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """hits / lookups, or 0.0 before the first lookup."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-ready view (used by ServingStats reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Thread-safe LRU cache with optional TTL expiry and stats.

    ``maxsize=0`` disables the cache (every get misses, puts are dropped)
    so callers can keep one code path for "tier on/off".  ``ttl`` is in
    seconds on the injected ``clock`` (monotonic by default); entries past
    their deadline count as misses and are dropped on access.
    """

    def __init__(
        self,
        maxsize: int = 128,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None for no expiry)")
        self.maxsize = maxsize
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, tuple[Any, Optional[float]]]" = (
            OrderedDict()
        )
        self.stats = CacheStats()

    @property
    def enabled(self) -> bool:
        """False when the cache was constructed with ``maxsize=0``."""
        return self.maxsize > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Non-mutating membership test (no LRU touch, no stats)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            _value, deadline = entry
            return deadline is None or self._clock() <= deadline

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value (refreshing its recency), or ``default``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return default
            value, deadline = entry
            if deadline is not None and self._clock() > deadline:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``; evicts the LRU entry past ``maxsize``."""
        if not self.enabled:
            return
        deadline = self._clock() + self.ttl if self.ttl is not None else None
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, deadline)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Cached value for ``key``, computing and storing it on a miss.

        ``compute`` runs outside the cache lock, so a slow computation does
        not block other keys; two threads racing on the same cold key may
        both compute (the results are assumed deterministic, so last-write
        -wins is harmless).
        """
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = compute()
        self.put(key, value)
        return value

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns the
        number removed (accounted as invalidations, not evictions)."""
        with self._lock:
            victims = [key for key in self._entries if predicate(key)]
            for key in victims:
                del self._entries[key]
            self.stats.invalidations += len(victims)
            return len(victims)

    def invalidate_db(self, db_id: str) -> int:
        """Per-database invalidation for tuple keys shaped ``(db_id, …)``."""
        return self.invalidate(
            lambda key: isinstance(key, tuple) and bool(key) and key[0] == db_id
        )

    def clear(self) -> None:
        """Drop every entry (counted as invalidations); stats survive."""
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the counters (e.g. after a warm-up pass)."""
        with self._lock:
            self.stats = CacheStats()


class GoldResultCache:
    """Lock-protected cache of gold-SQL execution outcomes.

    Both evaluation runners and the serving bench score predictions against
    the same gold result per ``question_id``; this helper is the one shared
    implementation (previously copy-pasted dicts in ``evaluate_pipeline``
    and ``evaluate_system``).  Execution happens under the lock so a
    question's gold SQL runs exactly once even when parallel workers race
    on it.
    """

    def __init__(self, maxsize: int = 4096):
        self._cache = LRUCache(maxsize=maxsize)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        """Hit/miss accounting of the underlying LRU."""
        return self._cache.stats

    def outcome(self, example, executor):
        """The gold execution outcome for ``example`` (computed once).

        ``executor`` must be bound to the example's database; the outcome
        type is :class:`~repro.execution.executor.ExecutionOutcome` (kept
        untyped here to stay import-cycle-free).
        """
        with self._lock:
            cached = self._cache.get(example.question_id)
            if cached is not None:
                return cached
            gold = executor.execute(example.gold_sql)
            self._cache.put(example.question_id, gold)
            return gold
