"""Schema serialization: DDL for building databases, prompt text for LLMs.

The prompt format follows the paper's "Database schema / db_info" style:
one block per table listing columns with type, description and value
examples, then the foreign-key list.  Token cost of prompts (Table 6)
is measured on this rendered text.
"""

from __future__ import annotations

from repro.schema.model import Column, Database, Table
from repro.sqlkit.render import quote_identifier

__all__ = ["schema_to_ddl", "schema_to_prompt", "column_doc"]


def schema_to_ddl(database: Database) -> str:
    """Render CREATE TABLE statements for every table in ``database``."""
    statements = []
    fk_by_table: dict[str, list] = {}
    for fk in database.foreign_keys:
        fk_by_table.setdefault(fk.table.lower(), []).append(fk)
    for table in database.tables:
        lines = []
        for column in table.columns:
            parts = [quote_identifier(column.name), column.type_name]
            if column.is_primary:
                parts.append("PRIMARY KEY")
            if column.not_null and not column.is_primary:
                parts.append("NOT NULL")
            lines.append("    " + " ".join(parts))
        for fk in fk_by_table.get(table.name.lower(), []):
            lines.append(
                "    FOREIGN KEY ({}) REFERENCES {}({})".format(
                    quote_identifier(fk.column),
                    quote_identifier(fk.ref_table),
                    quote_identifier(fk.ref_column),
                )
            )
        body = ",\n".join(lines)
        statements.append(
            f"CREATE TABLE {quote_identifier(table.name)} (\n{body}\n)"
        )
    return ";\n".join(statements) + ";"


def column_doc(table: Table, column: Column) -> str:
    """One-line prompt description of a column."""
    parts = [f"{table.name}.{column.name} ({column.type_name})"]
    if column.is_primary:
        parts.append("[primary key]")
    if column.description:
        parts.append(f"-- {column.description}")
    if column.value_examples:
        examples = ", ".join(repr(v) for v in column.value_examples[:3])
        parts.append(f"examples: {examples}")
    return " ".join(parts)


def schema_to_prompt(database: Database, include_examples: bool = True) -> str:
    """Render the database schema block used in extraction/generation
    prompts."""
    lines: list[str] = [f"Database: {database.name}"]
    if database.description:
        lines.append(f"-- {database.description}")
    for table in database.tables:
        lines.append(f"# Table: {table.name}")
        if table.description:
            lines.append(f"#   {table.description}")
        for column in table.columns:
            if include_examples:
                lines.append("  " + column_doc(table, column))
            else:
                lines.append(f"  {table.name}.{column.name} ({column.type_name})")
    if database.foreign_keys:
        lines.append("# Foreign keys:")
        for fk in database.foreign_keys:
            lines.append(
                f"  {fk.table}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
            )
    return "\n".join(lines)
