"""Database schema model, SQLite introspection, join-path inference and
schema-to-prompt serialization."""

from repro.schema.model import Column, Database, ForeignKey, Table
from repro.schema.introspect import introspect_sqlite
from repro.schema.joins import JoinPathError, assemble_select, join_path
from repro.schema.serialize import schema_to_ddl, schema_to_prompt

__all__ = [
    "Column",
    "Database",
    "ForeignKey",
    "JoinPathError",
    "Table",
    "assemble_select",
    "introspect_sqlite",
    "join_path",
    "schema_to_ddl",
    "schema_to_prompt",
]
