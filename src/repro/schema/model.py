"""In-memory model of a relational schema.

The model is deliberately richer than raw DDL: columns carry natural
language descriptions and value examples because the extraction stage
serializes them into prompts, and the whole database carries a join graph
used to reconstruct FROM clauses from SQL-Like statements.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional

__all__ = ["Column", "ForeignKey", "Table", "Database"]


@dataclass(frozen=True)
class Column:
    """A column with prompt-facing metadata.

    ``type_name`` uses SQLite affinity names (TEXT, INTEGER, REAL, DATE —
    DATE maps to TEXT storage but drives date-function handling).
    """

    name: str
    type_name: str = "TEXT"
    description: str = ""
    is_primary: bool = False
    not_null: bool = False
    value_examples: tuple[str, ...] = ()

    @property
    def is_text(self) -> bool:
        """True for TEXT-affinity columns (the only ones value-indexed)."""
        return self.type_name.upper() in {"TEXT", "DATE", "DATETIME", "VARCHAR", "CHAR"}


@dataclass(frozen=True)
class ForeignKey:
    """``table.column`` references ``ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str


@dataclass(frozen=True)
class Table:
    """A table: ordered columns plus its part of the FK graph."""

    name: str
    columns: tuple[Column, ...]
    description: str = ""

    def __post_init__(self):
        names = [c.name.lower() for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {self.name!r}")

    def column(self, name: str) -> Column:
        """Look up a column case-insensitively; raises KeyError if absent."""
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        raise KeyError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        """Case-insensitive column existence check."""
        lowered = name.lower()
        return any(col.name.lower() == lowered for col in self.columns)

    @property
    def primary_key(self) -> tuple[Column, ...]:
        """The table's primary-key columns, in schema order."""
        return tuple(c for c in self.columns if c.is_primary)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return tuple(c.name for c in self.columns)


@dataclass(frozen=True)
class Database:
    """A database schema: named tables, foreign keys and optional source path."""

    name: str
    tables: tuple[Table, ...]
    foreign_keys: tuple[ForeignKey, ...] = ()
    description: str = ""
    path: Optional[str] = None

    def __post_init__(self):
        names = [t.name.lower() for t in self.tables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate table names in database {self.name!r}")
        for fk in self.foreign_keys:
            src = self.table(fk.table)
            dst = self.table(fk.ref_table)
            if not src.has_column(fk.column):
                raise ValueError(f"foreign key source column missing: {fk}")
            if not dst.has_column(fk.ref_column):
                raise ValueError(f"foreign key target column missing: {fk}")

    def table(self, name: str) -> Table:
        """Look up a table case-insensitively; raises KeyError if absent."""
        lowered = name.lower()
        for table in self.tables:
            if table.name.lower() == lowered:
                return table
        raise KeyError(f"no table {name!r} in database {self.name!r}")

    def has_table(self, name: str) -> bool:
        """Case-insensitive table existence check."""
        lowered = name.lower()
        return any(t.name.lower() == lowered for t in self.tables)

    @property
    def table_names(self) -> tuple[str, ...]:
        """Table names in schema order."""
        return tuple(t.name for t in self.tables)

    def iter_columns(self) -> Iterator[tuple[Table, Column]]:
        """Yield every (table, column) pair in schema order."""
        for table in self.tables:
            for column in table.columns:
                yield table, column

    def column_count(self) -> int:
        """Total number of columns across all tables."""
        return sum(len(t.columns) for t in self.tables)

    def same_name_columns(self, column_name: str) -> list[tuple[str, str]]:
        """All (table, column) pairs whose column name matches
        ``column_name`` case-insensitively.  Used by Info Alignment to
        guard against same-name column mix-ups (paper §3.4)."""
        lowered = column_name.lower()
        return [
            (table.name, column.name)
            for table, column in self.iter_columns()
            if column.name.lower() == lowered
        ]

    def subset(self, keep: dict[str, Iterable[str]]) -> "Database":
        """Build a pruned schema containing only ``keep``'s tables/columns.

        ``keep`` maps table name → iterable of column names (case
        insensitive).  Primary keys are always retained so join paths stay
        expressible, and foreign keys are filtered to surviving endpoints.
        Unknown table or column names are ignored (the caller may be acting
        on hallucinated output — that is exactly the situation Info
        Alignment exists to absorb).
        """
        lowered_keep = {t.lower(): {c.lower() for c in cols} for t, cols in keep.items()}
        # Join keys must survive pruning: every foreign-key endpoint column
        # between two kept tables is retained alongside the primary keys,
        # otherwise pruning would disconnect the join graph.
        for fk in self.foreign_keys:
            if fk.table.lower() in lowered_keep and fk.ref_table.lower() in lowered_keep:
                lowered_keep[fk.table.lower()].add(fk.column.lower())
                lowered_keep[fk.ref_table.lower()].add(fk.ref_column.lower())
        new_tables: list[Table] = []
        for table in self.tables:
            wanted = lowered_keep.get(table.name.lower())
            if wanted is None:
                continue
            columns = tuple(
                column
                for column in table.columns
                if column.is_primary or column.name.lower() in wanted
            )
            if columns:
                new_tables.append(replace(table, columns=columns))
        surviving = {t.name.lower(): t for t in new_tables}
        new_fks = tuple(
            fk
            for fk in self.foreign_keys
            if fk.table.lower() in surviving
            and fk.ref_table.lower() in surviving
            and surviving[fk.table.lower()].has_column(fk.column)
            and surviving[fk.ref_table.lower()].has_column(fk.ref_column)
        )
        return replace(self, tables=tuple(new_tables), foreign_keys=new_fks)

    def resolve_column(self, name: str, table_hint: Optional[str] = None) -> list[tuple[Table, Column]]:
        """All (table, column) matches for a bare or hinted column name."""
        matches: list[tuple[Table, Column]] = []
        for table, column in self.iter_columns():
            if column.name.lower() != name.lower():
                continue
            if table_hint is not None and table.name.lower() != table_hint.lower():
                continue
            matches.append((table, column))
        return matches
