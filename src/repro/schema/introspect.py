"""Build a :class:`~repro.schema.model.Database` from a live SQLite file.

This is the Preprocessing step's "understand the real database structure"
half: PRAGMA-based table/column/foreign-key discovery plus sampling a few
distinct values per text column for prompt value examples.
"""

from __future__ import annotations

import sqlite3
from typing import Optional

from repro.schema.model import Column, Database, ForeignKey, Table

__all__ = ["introspect_sqlite"]


def introspect_sqlite(
    connection: sqlite3.Connection,
    name: str = "database",
    value_examples: int = 3,
    descriptions: Optional[dict[tuple[str, str], str]] = None,
) -> Database:
    """Introspect every user table reachable from ``connection``.

    ``descriptions`` optionally maps ``(table, column)`` to a natural
    language description (BIRD ships these as CSV "database description"
    files; our synthetic datasets provide them directly).
    """
    descriptions = descriptions or {}
    cursor = connection.cursor()
    cursor.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' "
        "AND name NOT LIKE 'sqlite_%' ORDER BY name"
    )
    table_names = [row[0] for row in cursor.fetchall()]

    tables: list[Table] = []
    foreign_keys: list[ForeignKey] = []
    for table_name in table_names:
        columns: list[Column] = []
        cursor.execute(f'PRAGMA table_info("{table_name}")')
        for _cid, col_name, col_type, not_null, _default, is_pk in cursor.fetchall():
            type_name = (col_type or "TEXT").upper()
            examples: tuple[str, ...] = ()
            if value_examples and _is_textual(type_name):
                examples = _sample_values(cursor, table_name, col_name, value_examples)
            columns.append(
                Column(
                    name=col_name,
                    type_name=type_name,
                    description=descriptions.get((table_name, col_name), ""),
                    is_primary=bool(is_pk),
                    not_null=bool(not_null),
                    value_examples=examples,
                )
            )
        tables.append(Table(name=table_name, columns=tuple(columns)))

        cursor.execute(f'PRAGMA foreign_key_list("{table_name}")')
        for row in cursor.fetchall():
            # (id, seq, ref_table, from_col, to_col, on_update, on_delete, match)
            _id, _seq, ref_table, from_col, to_col = row[0], row[1], row[2], row[3], row[4]
            if to_col is None:
                # Implicit reference to the target's primary key.
                to_col = _primary_key_of(cursor, ref_table)
            if to_col is not None:
                foreign_keys.append(
                    ForeignKey(
                        table=table_name,
                        column=from_col,
                        ref_table=ref_table,
                        ref_column=to_col,
                    )
                )

    return Database(
        name=name,
        tables=tuple(tables),
        foreign_keys=tuple(foreign_keys),
    )


def _is_textual(type_name: str) -> bool:
    upper = type_name.upper()
    return any(word in upper for word in ("TEXT", "CHAR", "DATE", "CLOB"))


def _sample_values(
    cursor: sqlite3.Cursor, table: str, column: str, limit: int
) -> tuple[str, ...]:
    cursor.execute(
        f'SELECT DISTINCT "{column}" FROM "{table}" '
        f'WHERE "{column}" IS NOT NULL ORDER BY "{column}" LIMIT ?',
        (limit,),
    )
    return tuple(str(row[0]) for row in cursor.fetchall())


def _primary_key_of(cursor: sqlite3.Cursor, table: str) -> Optional[str]:
    cursor.execute(f'PRAGMA table_info("{table}")')
    for _cid, col_name, _type, _nn, _default, is_pk in cursor.fetchall():
        if is_pk:
            return col_name
    return None
