"""Join-path inference: turn a SQL-Like statement into a full SELECT.

SQL-Like (paper §3.5) omits FROM/JOIN entirely.  Reconstructing them is a
Steiner-tree-flavoured problem on the foreign-key graph: find a connected
subgraph touching every referenced table.  We use the standard
approximation — iteratively attach the nearest unconnected terminal via a
BFS shortest path — which is exact on the tree-shaped FK graphs that
BIRD-style schemas overwhelmingly have.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.schema.model import Database, ForeignKey
from repro.sqlkit.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    Join,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
)
from repro.sqlkit.sql_like import SQLLike
from repro.sqlkit.transform import map_expressions

__all__ = ["JoinPathError", "join_path", "assemble_select"]


class JoinPathError(ValueError):
    """Raised when the referenced tables cannot be connected through the
    foreign-key graph (typically a hallucinated table name)."""


def _edges(database: Database) -> dict[str, list[tuple[str, ForeignKey]]]:
    graph: dict[str, list[tuple[str, ForeignKey]]] = {
        t.name.lower(): [] for t in database.tables
    }
    for fk in database.foreign_keys:
        a, b = fk.table.lower(), fk.ref_table.lower()
        if a in graph and b in graph:
            graph[a].append((b, fk))
            graph[b].append((a, fk))
    return graph


def _shortest_path(
    graph: dict[str, list[tuple[str, ForeignKey]]],
    sources: set[str],
    target: str,
) -> Optional[list[tuple[str, str, ForeignKey]]]:
    """BFS from any source to ``target``; returns (from, to, fk) steps."""
    queue = deque(sources)
    parents: dict[str, Optional[tuple[str, ForeignKey]]] = {s: None for s in sources}
    while queue:
        node = queue.popleft()
        if node == target:
            steps: list[tuple[str, str, ForeignKey]] = []
            while parents[node] is not None:
                prev, fk = parents[node]  # type: ignore[misc]
                steps.append((prev, node, fk))
                node = prev
            steps.reverse()
            return steps
        for neighbor, fk in graph[node]:
            if neighbor not in parents:
                parents[neighbor] = (node, fk)
                queue.append(neighbor)
    return None


def join_path(database: Database, tables: list[str]) -> list[tuple[str, str, ForeignKey]]:
    """Connect ``tables`` through the FK graph.

    Returns an ordered list of join steps ``(already_joined_table,
    new_table, fk)``.  The first requested table is the anchor; steps may
    route through intermediate tables not in the request.  Raises
    :class:`JoinPathError` when a table is unknown or unreachable.
    """
    if not tables:
        raise JoinPathError("no tables to join")
    graph = _edges(database)
    normalized: list[str] = []
    for name in tables:
        if not database.has_table(name):
            raise JoinPathError(f"unknown table {name!r}")
        lowered = name.lower()
        if lowered not in normalized:
            normalized.append(lowered)

    connected: set[str] = {normalized[0]}
    steps: list[tuple[str, str, ForeignKey]] = []
    for target in normalized[1:]:
        if target in connected:
            continue
        path = _shortest_path(graph, connected, target)
        if path is None:
            raise JoinPathError(
                f"no foreign-key path from {sorted(connected)} to {target!r}"
            )
        for from_table, to_table, fk in path:
            if to_table not in connected:
                steps.append((from_table, to_table, fk))
                connected.add(to_table)
    return steps


def assemble_select(database: Database, sql_like: SQLLike) -> Select:
    """Turn a SQL-Like statement into a full SELECT with aliases T1..Tn.

    Column references are requalified from real table names to the aliases
    introduced for them.  Unqualified columns are resolved against the
    referenced tables when unambiguous; ambiguous or unknown ones are left
    untouched (downstream alignment/refinement will catch them at
    execution time).
    """
    tables = list(sql_like.tables())
    if not tables:
        raise JoinPathError("SQL-Like references no tables")

    steps = join_path(database, tables)
    ordered: list[str] = [database.table(tables[0]).name]
    for _from, to, _fk in steps:
        ordered.append(database.table(to).name)

    multi = len(ordered) > 1
    alias_of: dict[str, Optional[str]] = {}
    for index, table_name in enumerate(ordered, start=1):
        alias_of[table_name.lower()] = f"T{index}" if multi else None

    def binding(table_name: str) -> str:
        alias = alias_of[table_name.lower()]
        return alias if alias else database.table(table_name).name

    def requalify(expr: Expr) -> Optional[Expr]:
        if isinstance(expr, ColumnRef):
            if expr.table and expr.table.lower() in alias_of:
                return ColumnRef(column=expr.column, table=binding(expr.table))
            if expr.table is None:
                matches = [
                    t for t in ordered if database.table(t).has_column(expr.column)
                ]
                if len(matches) == 1:
                    return ColumnRef(column=expr.column, table=binding(matches[0]))
        if isinstance(expr, Star) and expr.table and expr.table.lower() in alias_of:
            return Star(table=binding(expr.table))
        return None

    def convert(expr: Optional[Expr]) -> Optional[Expr]:
        if expr is None:
            return None
        return map_expressions(expr, requalify)  # type: ignore[return-value]

    from_table = TableRef(
        name=database.table(ordered[0]).name,
        alias=alias_of[ordered[0].lower()],
    )
    joins: list[Join] = []
    for from_tbl, to_tbl, fk in steps:
        real_to = database.table(to_tbl).name
        # Orient the FK condition between the two endpoint bindings.
        if fk.table.lower() == from_tbl:
            left = ColumnRef(column=fk.column, table=binding(fk.table))
            right = ColumnRef(column=fk.ref_column, table=binding(fk.ref_table))
        else:
            left = ColumnRef(column=fk.ref_column, table=binding(fk.ref_table))
            right = ColumnRef(column=fk.column, table=binding(fk.table))
        joins.append(
            Join(
                table=TableRef(name=real_to, alias=alias_of[to_tbl]),
                kind="INNER",
                condition=BinaryOp("=", left, right),
            )
        )

    items = tuple(
        SelectItem(expr=convert(item.expr), alias=item.alias) for item in sql_like.items
    )
    return Select(
        items=items,
        from_table=from_table,
        joins=tuple(joins),
        where=convert(sql_like.where),
        group_by=tuple(convert(e) for e in sql_like.group_by),
        having=convert(sql_like.having),
        order_by=tuple(
            OrderItem(expr=convert(o.expr), desc=o.desc) for o in sql_like.order_by
        ),
        limit=sql_like.limit,
        offset=sql_like.offset,
        distinct=sql_like.distinct,
    )
