"""Serving-side accounting: per-request records and the ServingStats report.

Throughput in a simulation needs care: the simulator reports model latency
instead of sleeping it, so wall-clock throughput would be meaninglessly
high.  The engine therefore tracks a **virtual clock** per worker thread —
each worker serializes the *service time* (real wall + simulated model
seconds) of the requests it handled — and the run's makespan is the
busiest worker's accumulated virtual time.  Serial execution makes the
makespan the sum of all service times; four workers split it roughly four
ways, which is exactly the concurrency win a real deployment would see
when model latency dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.serving.latency import LatencySummary

__all__ = ["RequestRecord", "ServingStats"]


@dataclass(frozen=True)
class RequestRecord:
    """What happened to one admitted request."""

    question_id: str
    db_id: str
    #: "ok" (pipeline ran), "cached" (result-tier hit), "coalesced"
    #: (async single-flight follower), "failed" (raised)
    status: str
    wall_seconds: float = 0.0
    #: simulated model decode seconds summed over the request's LLM calls
    model_seconds: float = 0.0
    error: Optional[str] = None
    #: the request's deadline truncated or skipped pipeline work
    deadline_exceeded: bool = False

    @property
    def service_seconds(self) -> float:
        """The request's total virtual service time."""
        return self.wall_seconds + self.model_seconds

    @property
    def cache_hit(self) -> bool:
        """True when the result tier answered without running the pipeline."""
        return self.status == "cached"


@dataclass
class ServingStats:
    """One serving run's complete accounting (a point-in-time snapshot)."""

    workers: int = 1
    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    #: probabilistic sheds from a degraded/unhealthy pipeline health grade
    shed_health: int = 0
    rejected_open: int = 0
    rejected_budget: int = 0
    rejected_draining: int = 0
    #: per-database bulkhead rejections (full + db-circuit-open + quarantined)
    rejected_bulkhead: int = 0
    result_hits: int = 0
    #: completed requests whose deadline truncated pipeline work
    deadline_exceeded: int = 0
    breaker_state: str = "closed"
    #: tier name → CacheStats.to_dict() payload
    cache_tiers: dict = field(default_factory=dict)
    #: HedgeStats.to_dict() payload (empty when hedging is off)
    hedge: dict = field(default_factory=dict)
    #: HealthMonitor.snapshot() payload (empty when not wired)
    health: dict = field(default_factory=dict)
    #: BulkheadRegistry.to_dict() payload (per-db accounting + quarantine)
    bulkheads: dict = field(default_factory=dict)
    #: BackendPool.snapshot() payload (empty when serving a single backend)
    backends: dict = field(default_factory=dict)
    latency: LatencySummary = field(default_factory=LatencySummary)
    #: busiest worker's accumulated virtual service seconds
    makespan_seconds: float = 0.0
    #: real elapsed seconds between first admit and last completion
    wall_seconds: float = 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per virtual second (the headline number)."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.completed / self.makespan_seconds

    @property
    def wall_throughput_rps(self) -> float:
        """Completed requests per real wall second (simulation-fast)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def result_hit_rate(self) -> float:
        """Result-tier hits / completed requests."""
        return self.result_hits / self.completed if self.completed else 0.0

    def to_dict(self) -> dict:
        """JSON-ready report (what ``serve-bench`` and the bench print)."""
        return {
            "workers": self.workers,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "shed_health": self.shed_health,
            "rejected_open": self.rejected_open,
            "rejected_budget": self.rejected_budget,
            "rejected_draining": self.rejected_draining,
            "rejected_bulkhead": self.rejected_bulkhead,
            "result_hits": self.result_hits,
            "result_hit_rate": round(self.result_hit_rate, 4),
            "deadline_exceeded": self.deadline_exceeded,
            "breaker_state": self.breaker_state,
            "cache_tiers": dict(self.cache_tiers),
            "hedge": dict(self.hedge),
            "health": dict(self.health),
            "bulkheads": dict(self.bulkheads),
            "backends": dict(self.backends),
            "latency": self.latency.to_dict(),
            "makespan_seconds": round(self.makespan_seconds, 3),
            "throughput_rps": round(self.throughput_rps, 4),
            "wall_seconds": round(self.wall_seconds, 3),
            "wall_throughput_rps": round(self.wall_throughput_rps, 2),
        }

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"workers     : {self.workers}",
            f"requests    : {self.submitted} submitted / {self.admitted} admitted"
            f" / {self.completed} completed / {self.failed} failed",
            f"rejections  : {self.shed} shed, {self.shed_health} health-shed,"
            f" {self.rejected_open} circuit-open,"
            f" {self.rejected_budget} budget, {self.rejected_draining} draining,"
            f" {self.rejected_bulkhead} bulkhead",
            f"deadlines   : {self.deadline_exceeded} exceeded (degraded, not failed)",
            f"breaker     : {self.breaker_state}",
            f"throughput  : {self.throughput_rps:.3f} req/s (virtual),"
            f" makespan {self.makespan_seconds:.1f}s",
            f"latency     : p50 {self.latency.p50:.2f}s  p95 {self.latency.p95:.2f}s"
            f"  p99 {self.latency.p99:.2f}s  mean {self.latency.mean:.2f}s",
        ]
        for tier, stats in self.cache_tiers.items():
            lines.append(
                f"cache[{tier:10s}]: {stats['hits']} hits / {stats['misses']} misses"
                f" / {stats['evictions']} evictions"
                f" (hit rate {stats['hit_rate']:.1%})"
            )
        if self.hedge:
            lines.append(
                f"hedging     : {self.hedge.get('launched', 0)} launched /"
                f" {self.hedge.get('wins', 0)} wins"
                f" ({self.hedge.get('recovered_error', 0)} errors,"
                f" {self.hedge.get('recovered_slow', 0)} slow recovered)"
            )
        if self.health:
            lines.append(f"health      : {self.health.get('status', 'unknown')}")
        if self.bulkheads and self.bulkheads.get("quarantined"):
            roster = ", ".join(sorted(self.bulkheads["quarantined"]))
            lines.append(f"quarantine  : {roster}")
        if self.backends:
            served = self.backends.get("served", {})
            lines.append(
                f"backends    : primary {self.backends.get('primary', 0)},"
                f" served {sum(served.values())} across {len(served)} replicas,"
                f" {self.backends.get('failovers', 0)} failovers,"
                f" {self.backends.get('exhausted', 0)} exhausted"
            )
        return "\n".join(lines)
