"""Latency accounting: percentile math and per-request summaries.

The simulator *reports* model latency instead of sleeping it (see
``SimulatedLLM._latency``), so serving latency is the sum of two clocks:
real executor/orchestration wall time plus simulated model decode time.
This module aggregates those per-request totals into the p50/p95/p99 view
a serving report prints.  Stdlib-only, import-cycle-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["percentile", "LatencySummary"]

# The LatencySummary field named ``max`` shadows the builtin at class scope;
# keep an alias for use inside the classmethod.
_builtin_max = max


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) of ``values``, nearest-rank method.

    Returns 0.0 for an empty sequence; the nearest-rank convention makes
    the result an actually-observed latency, which is what a serving SLO
    report wants (no interpolation between samples).
    """
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Aggregated latency distribution of a batch of requests."""

    count: int = 0
    total_seconds: float = 0.0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        """Summarize a sequence of per-request latencies."""
        if not values:
            return cls()
        total = float(sum(values))
        return cls(
            count=len(values),
            total_seconds=total,
            mean=total / len(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            max=float(_builtin_max(values)),
        )

    def to_dict(self) -> dict:
        """JSON-ready view, rounded for report readability."""
        return {
            "count": self.count,
            "total_seconds": round(self.total_seconds, 3),
            "mean": round(self.mean, 4),
            "p50": round(self.p50, 4),
            "p95": round(self.p95, 4),
            "p99": round(self.p99, 4),
            "max": round(self.max, 4),
        }
