"""The concurrent serving engine.

``ServingEngine`` turns a preprocessed :class:`~repro.core.pipeline.
OpenSearchSQL` into a service: requests are admitted through a bounded
queue (:class:`~repro.serving.admission.AdmissionController`, wired to the
reliability layer's circuit breaker and a request budget), executed on a
thread pool, and answered through three cache tiers:

1. **result** — exact-match on normalized ``(db_id, question)`` (plus the
   routed tier when the pipeline is a
   :class:`~repro.routing.TieredPipeline`); a hit skips the pipeline
   entirely;
2. **extraction** — the Extraction stage's output per question, shared by
   repeat requests that miss the result tier (e.g. after invalidation);
3. **fewshot** — Masked-Question retrieval results from the few-shot
   library, the hot inner loop of Generation.

Every tier keeps hit/miss/eviction stats and supports per-database
invalidation (``invalidate_db``) for when a database's content changes.

Per-request latency is the **service time**: real wall seconds around the
request plus the simulated model decode seconds its LLM calls reported.
Each worker thread accumulates the service time of the requests it ran —
a per-worker virtual clock — and :meth:`stats` aggregates those into the
p50/p95/p99 + throughput view of :class:`~repro.serving.stats.ServingStats`.

Thread-safety contract: the wrapped pipeline must be *reentrant* —
``SimulatedLLM`` draws from per-call hash-derived seeds (order-independent
by construction), ``SQLExecutor`` serializes per-connection access, and
the engine never mutates pipeline state after construction.  Do not
``rebind_llm`` a pipeline while an engine is serving it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional, Sequence

from repro.core.pipeline import OpenSearchSQL, PipelineResult
from repro.datasets.types import Example
from repro.observability.context import add_event
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import Trace
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.deadline import Deadline
from repro.reliability.faults import BudgetExceededError, CircuitOpenError
from repro.serving.admission import AdmissionController, AdmissionError
from repro.caching import LRUCache, normalize_question, result_cache_key
from repro.serving.backends import BackendPool
from repro.serving.bulkhead import (
    BulkheadFullError,
    BulkheadRegistry,
    DbCircuitOpenError,
    QuarantinedError,
)
from repro.livedata.epoch import EpochRegistry
from repro.livedata.errors import StaleCatalogError
from repro.livedata.guard import EpochGuardExecutor, EpochPins
from repro.serving.health import HealthMonitor
from repro.serving.hedging import HedgedExecutor, HedgeStats
from repro.serving.journal import ServingJournal
from repro.serving.latency import LatencySummary
from repro.serving.stats import RequestRecord, ServingStats

__all__ = ["ServingEngine", "CachingExtractor", "CachingFewShotLibrary"]


class CachingExtractor:
    """Extraction-tier cache: wraps an Extractor, memoizing ``run``.

    Keyed on ``(db_id, question_id)`` — extraction is deterministic per
    example, so repeats reuse the stage output without paying its LLM
    calls.  When an :class:`~repro.livedata.epoch.EpochRegistry` is
    attached (``epochs``), the database's current ``schema_epoch`` joins
    the key, so a mutation self-invalidates every cached extraction
    derived from the old catalog.  Attribute access falls through to the
    wrapped extractor so the pipeline's other touch points (``config``,
    ``vectorizer``) keep working.
    """

    def __init__(self, inner, cache: LRUCache):
        self.inner = inner
        self.cache = cache
        self.epochs: Optional[EpochRegistry] = None

    def run(self, example, pre, cost=None, span=None):
        key: tuple = (example.db_id, example.question_id)
        if self.epochs is not None:
            key = key + (self.epochs.epoch(example.db_id),)
        hit = self.cache.get(key)
        if hit is not None:
            if span is not None:
                span.cache = "hit"
                span.event("extraction_cache", outcome="hit")
            return hit
        if span is not None:
            span.cache = "miss"
            span.event("extraction_cache", outcome="miss")
            result = self.inner.run(example, pre, cost, span=span)
        else:
            result = self.inner.run(example, pre, cost)
        self.cache.put(key, result)
        return result

    def __getattr__(self, name):
        return getattr(self.inner, name)


class CachingFewShotLibrary:
    """Few-shot-tier cache: wraps a FewShotLibrary, memoizing ``search``.

    MQs retrieval re-embeds and re-searches the masked question on every
    generation call; the key ``(normalized question, surfaces, k, db_id)``
    captures every argument that shapes the result.  The question is
    normalized like the result tier's key — retrieval embeds case-folded
    masked text, so variants differing only in trailing ``?`` spacing or
    case retrieve identically and must share one entry.  ``add``
    invalidates the whole tier (new entries can change any ranking).

    The keys carry the *requesting* database, not the databases the
    retrieved shots came from, so per-database invalidation keeps a
    **db→keys side index**: every cached result is indexed under the
    db of each shot it contains (plus the requester), and
    :meth:`invalidate_db` drops exactly those keys — a mutated database
    cannot keep serving as a stale neighbor while unrelated entries
    survive.  When an :class:`~repro.livedata.epoch.EpochRegistry` is
    attached, the requesting db's ``schema_epoch`` joins the key too.
    """

    def __init__(self, inner, cache: LRUCache):
        self.inner = inner
        self.cache = cache
        self.epochs: Optional[EpochRegistry] = None
        self._db_keys: dict[str, set] = {}
        self._keys_lock = threading.Lock()

    def search(self, question, surfaces=(), k=5, db_id=None):
        key: tuple = (normalize_question(question), tuple(surfaces), k, db_id)
        if self.epochs is not None and db_id is not None:
            key = key + (self.epochs.epoch(db_id),)
        hit = self.cache.get(key)
        if hit is not None:
            # Generation's stage span is ambient here; the event lands on it.
            add_event("fewshot_cache", outcome="hit")
            return hit
        add_event("fewshot_cache", outcome="miss")
        result = self.inner.search(question, surfaces=surfaces, k=k, db_id=db_id)
        self.cache.put(key, result)
        self._index_key(key, result, db_id)
        return result

    def _index_key(self, key, result, db_id) -> None:
        """Record ``key`` under every database its result touches."""
        dbs = set()
        for entry in result:
            example = getattr(entry, "example", None)
            if example is not None and getattr(example, "db_id", None):
                dbs.add(example.db_id)
        if db_id is not None:
            dbs.add(db_id)
        with self._keys_lock:
            for db in dbs:
                self._db_keys.setdefault(db, set()).add(key)

    def invalidate_db(self, db_id: str) -> int:
        """Drop every cached result containing (or requested by) ``db_id``."""
        with self._keys_lock:
            victims = self._db_keys.pop(db_id, set())
            for keys in self._db_keys.values():
                keys -= victims
        if not victims:
            return 0
        return self.cache.invalidate(lambda key: key in victims)

    def add(self, entry):
        self.inner.add(entry)
        self.cache.clear()
        with self._keys_lock:
            self._db_keys.clear()

    def __len__(self):
        return len(self.inner)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class ServingEngine:
    """Concurrent, cached, admission-controlled front end for a pipeline."""

    def __init__(
        self,
        pipeline: OpenSearchSQL,
        workers: int = 4,
        queue_capacity: int = 32,
        result_cache_size: int = 512,
        result_cache_ttl: Optional[float] = None,
        extraction_cache_size: int = 1024,
        fewshot_cache_size: int = 1024,
        breaker: Optional[CircuitBreaker] = None,
        max_requests: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        hedge_threshold: Optional[float] = None,
        tracing: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        db_max_inflight: Optional[int] = None,
        quarantine_threshold: int = 3,
        journal: Optional[ServingJournal] = None,
        backends: Optional[BackendPool] = None,
        health_shed: Optional[dict] = None,
        clock=time.perf_counter,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be > 0")
        self.pipeline = pipeline
        self.workers = workers
        self.deadline_seconds = deadline_seconds
        self.tracing = tracing
        self.metrics = metrics
        self._clock = clock
        # The health monitor exists before admission so the controller can
        # poll the pipeline component's grade on every admit.  Shedding is
        # keyed to the *pipeline* grade specifically: deadline pressure is
        # an intentional degradation (truncated answers still serve), but
        # pipeline failures predict breaker trips — shed before the cliff.
        self.health = HealthMonitor()
        self.journal = journal
        self.backends = backends
        self.bulkheads = BulkheadRegistry(
            max_inflight=db_max_inflight,
            quarantine_threshold=quarantine_threshold,
        )
        self.admission = AdmissionController(
            capacity=queue_capacity,
            breaker=breaker or CircuitBreaker(failure_threshold=5, cooldown_calls=8),
            max_requests=max_requests,
            health_grade=lambda: self.health.component_grade("pipeline"),
            health_shed_probability=health_shed,
        )
        self.result_cache = LRUCache(result_cache_size, ttl=result_cache_ttl)
        self.extraction_cache = LRUCache(extraction_cache_size)
        self.fewshot_cache = LRUCache(fewshot_cache_size)
        # Wire the inner tiers into the pipeline's stage objects.  The
        # wrappers are transparent when their tier is disabled (size 0:
        # every get misses and puts drop), so one code path serves both.
        if extraction_cache_size > 0:
            pipeline.extractor = CachingExtractor(
                pipeline.extractor, self.extraction_cache
            )
        if fewshot_cache_size > 0 and pipeline.library is not None:
            pipeline.library = CachingFewShotLibrary(
                pipeline.library, self.fewshot_cache
            )
        # Hedged SQL execution composes with any wrapper already installed
        # (e.g. a chaos bench's fault injector): the hedge wraps outermost
        # so it sees — and can recover — injected faults.
        self.hedge_stats: Optional[HedgeStats] = None
        if hedge_threshold is not None:
            self.hedge_stats = HedgeStats()
            previous = pipeline.executor_wrapper

            def _hedged(executor, db_id):
                inner = previous(executor, db_id) if previous else executor
                return HedgedExecutor(
                    inner,
                    threshold_seconds=hedge_threshold,
                    stats=self.hedge_stats,
                )

            pipeline.set_executor_wrapper(_hedged)
        self.health.register_probe(
            "breaker", lambda: {"state": self.admission.breaker.state.value}
        )
        self.health.register_probe(
            "caches",
            lambda: {
                "result_hit_rate": self.result_cache.stats.to_dict()["hit_rate"],
                "extraction_hit_rate": self.extraction_cache.stats.to_dict()[
                    "hit_rate"
                ],
            },
        )
        if self.hedge_stats is not None:
            self.health.register_probe("hedging", self.hedge_stats.to_dict)
        if self.backends is not None:
            self.health.register_probe("backends", self.backends.snapshot)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serving"
        )
        self._stats_lock = threading.Lock()
        self._records: list[RequestRecord] = []
        self._worker_busy: dict[int, float] = {}
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None
        self._closed = False
        # Per-request traces (question_id → Trace) in completion order.
        self._traces: dict[str, Trace] = {}
        self._traces_lock = threading.Lock()
        self._latest_trace: Optional[Trace] = None
        # Live-data wiring (attach_livedata): epoch registry, per-thread
        # pins for the pre-execute staleness check, and the stale counters.
        self.epochs: Optional[EpochRegistry] = None
        self._epoch_pins: Optional[EpochPins] = None
        self._m_stale = None
        self.livedata_stats = {
            "stale_detected": 0,
            "stale_retried": 0,
            "stale_served": 0,
            "invalidations": 0,
        }
        if metrics is not None:
            self._m_requests = metrics.counter(
                "repro_serving_requests_total",
                "requests by terminal status",
                labelnames=("status",),
            )
            self._m_service = metrics.histogram(
                "repro_serving_service_seconds",
                "per-request service time (wall + virtual model seconds)",
            )
            self._m_model_seconds = metrics.counter(
                "repro_serving_model_seconds_total",
                "simulated model decode seconds across all requests",
            )
            self._m_quarantine = metrics.counter(
                "repro_serving_quarantine_total",
                "(db_id, question) keys quarantined after consecutive crashes",
            )
            self._m_bulkhead_rejections = metrics.counter(
                "repro_serving_bulkhead_rejections_total",
                "requests rejected at the per-database bulkhead",
                labelnames=("channel",),
            )
            # The free-floating stats objects surface in the unified export
            # via collectors — their accounting is untouched.
            self._m_tier = metrics.counter(
                "repro_routing_tier_total",
                "freshly answered requests by final routing tier",
                labelnames=("tier",),
            )
            self._m_escalations = metrics.counter(
                "repro_routing_escalations_total",
                "tier promotions by escalation reason",
                labelnames=("reason",),
            )
            self._m_tier_tokens = metrics.counter(
                "repro_routing_tokens_total",
                "tokens spent per routing tier (escalated attempts included)",
                labelnames=("tier",),
            )
            if hasattr(pipeline, "routing_stats"):
                metrics.register_collector("routing", pipeline.routing_stats)
            metrics.register_collector("serving", lambda: self.stats().to_dict())
            metrics.register_collector("health", self.health.snapshot)
            metrics.register_collector("bulkheads", self.bulkheads.to_dict)
            if self.hedge_stats is not None:
                metrics.register_collector("hedging", self.hedge_stats.to_dict)
            if self.backends is not None:
                metrics.register_collector("backends", self.backends.snapshot)
            if self.journal is not None:
                metrics.register_collector("journal", self.journal.stats_dict)
                self._m_storage_disabled = metrics.counter(
                    "repro_storage_journal_disabled_total",
                    "journal write-path brownouts (serve continued un-journaled)",
                )
                self._m_storage_errors = metrics.counter(
                    "repro_storage_write_errors_total",
                    "storage write errors on the journal append path",
                    labelnames=("kind",),
                )
        if self.journal is not None:
            # Brownout wiring: an ENOSPC/EIO on the append path degrades
            # health and fires counters/trace events instead of killing
            # the worker.
            self.journal.add_storage_listener(self._on_journal_disabled)

    # ------------------------------------------------------------ live data

    def attach_livedata(self, registry: EpochRegistry) -> None:
        """Wire an epoch-versioned catalog into the serving path.

        After this call:

        * every cache tier's key carries the database's current
          ``schema_epoch`` (mutations self-invalidate stale entries);
        * journal commit records are stamped with the epoch the answer
          was produced under, so ``recover`` can refuse cross-epoch
          replay;
        * SQL execution runs behind the pre-execute epoch check
          (:class:`~repro.livedata.guard.EpochGuardExecutor`): a catalog
          that moved mid-request raises a typed
          :class:`~repro.livedata.errors.StaleCatalogError`, and the
          handler re-extracts and retries exactly once against the new
          epoch before failing the request.

        Stale events surface in ``repro_livedata_stale_total`` (labeled
        ``detected`` / ``retried`` / ``served``) and in
        ``livedata_stats``; ``served`` counting a completed answer whose
        catalog moved after its last SQL execution — the certifier's
        zero-stale-serve gate reads that slot.
        """
        self.epochs = registry
        # result_cache_key duck-types on pipeline.epochs for the result
        # tier's epoch suffix.
        self.pipeline.epochs = registry
        extractor = self.pipeline.extractor
        if isinstance(extractor, CachingExtractor):
            extractor.epochs = registry
        library = self.pipeline.library
        if isinstance(library, CachingFewShotLibrary):
            library.epochs = registry
        if self.journal is not None:
            self.journal.epoch_provider = registry.epoch
        self._epoch_pins = pins = EpochPins()
        # TieredPipeline delegates set_executor_wrapper to its base but
        # does not re-export the attribute; read it off the base.
        previous = getattr(self.pipeline, "base", self.pipeline).executor_wrapper

        def _guarded(executor, db_id):
            inner = previous(executor, db_id) if previous else executor
            return EpochGuardExecutor(inner, db_id, registry, pins)

        self.pipeline.set_executor_wrapper(_guarded)
        if self.metrics is not None:
            self._m_stale = self.metrics.counter(
                "repro_livedata_stale_total",
                "stale-catalog events on the serving path",
                labelnames=("event",),
            )
            self.metrics.register_collector(
                "livedata", lambda: dict(self.livedata_stats)
            )

    def _count_stale(self, event: str) -> None:
        with self._stats_lock:
            self.livedata_stats[f"stale_{event}"] += 1
        if self._m_stale is not None:
            self._m_stale.labels(event=event).inc()

    # ------------------------------------------------------------ requests

    def submit(
        self,
        example: Example,
        block: bool = False,
        seq: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> "Future[PipelineResult]":
        """Admit and enqueue one request; returns a Future.

        Raises :class:`~repro.serving.admission.QueueFullError` (shed),
        :class:`~repro.serving.admission.HealthShedError` (degraded
        health grade), a bulkhead rejection
        (:class:`~repro.serving.bulkhead.BulkheadFullError` /
        :class:`~repro.serving.bulkhead.DbCircuitOpenError` /
        :class:`~repro.serving.bulkhead.QuarantinedError`),
        :class:`~repro.reliability.faults.CircuitOpenError` or
        :class:`~repro.reliability.faults.BudgetExceededError` when the
        request is not admitted.  ``block=True`` waits for a queue slot
        instead of shedding (closed-loop clients).

        ``seq`` journals the request under an externally assigned
        sequence number (a shard coordinator assigns global positions so
        per-shard journal segments stay mergeable); ``deadline_seconds``
        overrides the engine-wide deadline for this request (how a
        coordinator forwards the *remaining* end-to-end budget after
        queue time).
        """
        if self._closed:
            raise RuntimeError("engine is shut down")
        key = (example.db_id, normalize_question(example.question))
        # The bulkhead gate runs first: a quarantined key or a saturated
        # database must not consume a shared queue slot (or count as
        # admitted) before being turned away.
        try:
            self.bulkheads.acquire(example.db_id, key, block=block)
        except (BulkheadFullError, DbCircuitOpenError, QuarantinedError) as exc:
            if self.metrics is not None:
                channel = {
                    BulkheadFullError: "full",
                    DbCircuitOpenError: "open",
                    QuarantinedError: "quarantined",
                }[type(exc)]
                self._m_bulkhead_rejections.labels(channel=channel).inc()
            raise
        try:
            self.admission.admit(block=block)
        except BaseException:
            self.bulkheads.release(example.db_id)
            raise
        with self._stats_lock:
            if self._started_at is None:
                self._started_at = self._clock()
        if self.journal is not None:
            seq = self.journal.accept(example, seq=seq)
        try:
            return self._pool.submit(self._handle, example, seq, deadline_seconds)
        except BaseException:
            self.admission.release()
            self.bulkheads.release(example.db_id)
            raise

    def answer(self, example: Example) -> PipelineResult:
        """Synchronous convenience: admit (blocking) and wait."""
        return self.submit(example, block=True).result()

    def run(
        self, examples: Sequence[Example], block: bool = True
    ) -> list[Optional[PipelineResult]]:
        """Serve a whole workload; results align with ``examples``.

        Rejected (shed / circuit-open / budget) and failed requests yield
        ``None`` at their position — the stats report carries the counts.
        """
        futures: list[Optional[Future]] = []
        for example in examples:
            try:
                futures.append(self.submit(example, block=block))
            except (AdmissionError, BudgetExceededError, CircuitOpenError):
                futures.append(None)
        results: list[Optional[PipelineResult]] = []
        for future in futures:
            if future is None:
                results.append(None)
                continue
            try:
                results.append(future.result())
            except Exception:
                results.append(None)
        return results

    # ------------------------------------------------------------- handler

    def _handle(
        self,
        example: Example,
        seq: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> PipelineResult:
        start = self._clock()
        budget = (
            deadline_seconds if deadline_seconds is not None else self.deadline_seconds
        )
        key = result_cache_key(example, self.pipeline)
        trace = (
            Trace(question_id=example.question_id, db_id=example.db_id)
            if self.tracing
            else None
        )
        try:
            cached = self.result_cache.get(key)
            if cached is not None:
                if trace is not None:
                    trace.root.cache = "hit"
                    trace.root.event("result_cache", outcome="hit")
                    self._store_trace(trace.finish())
                self.bulkheads.record_success(example.db_id, key)
                if self.journal is not None and seq is not None:
                    self.journal.commit(seq, "cached")
                self._record(example, "cached", start, model_seconds=0.0)
                return cached
            if trace is not None:
                trace.root.cache = "miss"
                trace.root.event("result_cache", outcome="miss")
            deadline = (
                Deadline(budget, clock=self._clock) if budget is not None else None
            )
            try:
                result = self._answer_guarded(example, deadline, trace)
            except Exception as exc:
                self.admission.record_failure()
                self.health.record("pipeline", False, detail=str(exc))
                if self.bulkheads.record_crash(example.db_id, key):
                    add_event(
                        "quarantine",
                        db_id=example.db_id,
                        question_id=example.question_id,
                    )
                    if self.metrics is not None:
                        self._m_quarantine.inc()
                if self.journal is not None and seq is not None:
                    self.journal.commit(
                        seq, "failed", error=f"{type(exc).__name__}: {exc}"
                    )
                if trace is not None:
                    trace.root.status = "failed"
                    trace.root.event("request_failed", error=str(exc))
                    self._store_trace(trace.finish(deadline=deadline))
                self._record(example, "failed", start, error=str(exc))
                raise
            if trace is not None:
                # pipeline.answer already finished the root with totals
                self._store_trace(trace)
            self.admission.record_success()
            self.health.record("pipeline", True)
            self.bulkheads.record_success(example.db_id, key)
            exceeded = result.deadline_exceeded
            self.health.record("deadline", not exceeded)
            if not exceeded:
                # a deadline-truncated answer is a degraded stand-in;
                # caching it would keep serving the degradation after
                # load subsides
                if self.epochs is not None:
                    # a stale retry moved the epoch mid-request; re-derive
                    # the key so the entry lands under the catalog that
                    # actually produced it
                    key = result_cache_key(example, self.pipeline)
                self.result_cache.put(key, result)
            if self.journal is not None and seq is not None:
                self.journal.commit(seq, "ok", result=result)
            routing = getattr(result, "routing", None)
            if self.metrics is not None and routing is not None:
                self._m_tier.labels(tier=routing.final_tier).inc()
                for event in routing.escalations:
                    self._m_escalations.labels(reason=event.reason).inc()
                for attempt in routing.attempts:
                    self._m_tier_tokens.labels(tier=attempt.tier).inc(
                        attempt.tokens
                    )
            self._record(
                example,
                "ok",
                start,
                model_seconds=result.cost.total_model_seconds,
                deadline_exceeded=exceeded,
            )
            return result
        finally:
            self.bulkheads.release(example.db_id)
            self.admission.release()

    def _answer_guarded(
        self,
        example: Example,
        deadline: Optional[Deadline],
        trace: Optional[Trace],
    ) -> PipelineResult:
        """Run the pipeline under the stale-catalog guard.

        With no live-data registry attached this is a plain
        ``pipeline.answer``.  Otherwise the request pins the database's
        current epoch for the worker thread; a mutation landing before
        any of the request's SQL executions raises
        :class:`StaleCatalogError` from the executor guard, and the
        request re-extracts and retries exactly once against the new
        epoch (the epoch-suffixed cache keys make the retry recompute
        instead of rehitting stale entries).  A second staleness hit
        propagates into the normal failure path.
        """
        kwargs = {"trace": trace} if trace is not None else {}
        pins = self._epoch_pins
        if pins is None:
            return self.pipeline.answer(example, deadline=deadline, **kwargs)
        db_id = example.db_id
        for attempt in (0, 1):
            pinned = self.epochs.epoch(db_id)
            pins.pin(db_id, pinned)
            try:
                result = self.pipeline.answer(example, deadline=deadline, **kwargs)
            except StaleCatalogError as exc:
                self._count_stale("detected")
                if trace is not None:
                    trace.root.event(
                        "stale_catalog",
                        db_id=db_id,
                        pinned_epoch=exc.pinned_epoch,
                        current_epoch=exc.current_epoch,
                        retrying=attempt == 0,
                    )
                if attempt == 0:
                    self._count_stale("retried")
                    continue
                raise
            finally:
                pins.clear()
            if self.epochs.epoch(db_id) != pinned:
                # The catalog moved after this request's last execution:
                # the answer it computed is already stale on arrival.
                # This is the slot the certifier requires to stay zero.
                self._count_stale("served")
                if trace is not None:
                    trace.root.event("stale_serve", db_id=db_id, pinned_epoch=pinned)
            return result
        raise AssertionError("unreachable")  # pragma: no cover

    def _record(
        self,
        example: Example,
        status: str,
        start: float,
        model_seconds: float = 0.0,
        error: Optional[str] = None,
        deadline_exceeded: bool = False,
    ) -> None:
        wall = self._clock() - start
        record = RequestRecord(
            question_id=example.question_id,
            db_id=example.db_id,
            status=status,
            wall_seconds=wall,
            model_seconds=model_seconds,
            error=error,
            deadline_exceeded=deadline_exceeded,
        )
        ident = threading.get_ident()
        with self._stats_lock:
            self._records.append(record)
            self._worker_busy[ident] = (
                self._worker_busy.get(ident, 0.0) + record.service_seconds
            )
            self._finished_at = self._clock()
        if self.metrics is not None:
            self._m_requests.labels(status=status).inc()
            self._m_service.observe(record.service_seconds)
            self._m_model_seconds.inc(model_seconds)

    # -------------------------------------------------------------- tracing

    def _store_trace(self, trace: Trace) -> None:
        with self._traces_lock:
            self._traces[trace.question_id] = trace
            self._latest_trace = trace

    def last_trace(self) -> Optional[Trace]:
        """The most recently completed request's trace (requires
        ``tracing=True``)."""
        with self._traces_lock:
            return self._latest_trace

    def trace_for(self, question_id: str) -> Optional[Trace]:
        """The trace of one served request, by question id."""
        with self._traces_lock:
            return self._traces.get(question_id)

    def traces(self) -> list[Trace]:
        """Every stored trace, in completion order."""
        with self._traces_lock:
            return list(self._traces.values())

    # ------------------------------------------------------------ lifecycle

    def warm_result_cache(
        self, records: Sequence[tuple[Example, PipelineResult]]
    ) -> int:
        """Re-seed the result tier from previously committed outcomes.

        A restarted (or rebalance-adopting) cluster worker replays its
        journal segment's committed results through this so repeat
        questions keep hitting the result tier exactly as they would have
        in an undisturbed run — the property that keeps a recovered
        cluster report byte-identical to a single-process one.  Deadline-
        truncated results are skipped, mirroring the live-path rule that
        degraded answers are never cached.  Returns the number warmed.
        """
        warmed = 0
        for example, result in records:
            if result is None or result.deadline_exceeded:
                continue
            self.result_cache.put(result_cache_key(example, self.pipeline), result)
            warmed += 1
        return warmed

    def invalidate_db(self, db_id: str) -> dict[str, int]:
        """Drop every cached entry derived from ``db_id`` in all tiers.

        The result and extraction tiers key on ``(db_id, …)`` and
        invalidate positionally.  The few-shot tier's keys carry the
        question rather than the source databases, so the caching wrapper
        maintains a db→keys side index and drops exactly the cached
        retrievals that contain (or were requested by) the mutated
        database — stale neighbors go, unrelated entries survive.  When
        the pipeline's library is not the caching wrapper (side index
        unavailable) the tier falls back to a wholesale clear.
        """
        dropped = {
            "result": self.result_cache.invalidate_db(db_id),
            "extraction": self.extraction_cache.invalidate_db(db_id),
        }
        library = self.pipeline.library
        if isinstance(library, CachingFewShotLibrary):
            dropped["fewshot"] = library.invalidate_db(db_id)
        else:
            dropped["fewshot"] = self.fewshot_cache.invalidate(lambda _key: True)
        with self._stats_lock:
            self.livedata_stats["invalidations"] += 1
        return dropped

    def reset_stats(self) -> None:
        """Zero request records and cache counters (post-warm-up)."""
        with self._stats_lock:
            self._records = []
            self._worker_busy = {}
            self._started_at = None
            self._finished_at = None
        for cache in (self.result_cache, self.extraction_cache, self.fewshot_cache):
            cache.reset_stats()

    def stats(self) -> ServingStats:
        """A snapshot of the run's complete serving accounting."""
        with self._stats_lock:
            records = list(self._records)
            busy = dict(self._worker_busy)
            started = self._started_at
            finished = self._finished_at
        admission = self.admission.to_dict()
        bulkheads = self.bulkheads.to_dict()
        bulkhead_rejected = (
            bulkheads["rejected_full"]
            + bulkheads["rejected_open"]
            + bulkheads["rejected_quarantined"]
        )
        finished_records = [r for r in records if r.status != "failed"]
        return ServingStats(
            workers=self.workers,
            # bulkhead rejections happen before the admission gate, so the
            # client-visible submitted total is the sum of both layers
            submitted=admission["submitted"] + bulkhead_rejected,
            admitted=admission["admitted"],
            completed=len(finished_records),
            failed=sum(1 for r in records if r.status == "failed"),
            shed=admission["shed"],
            shed_health=admission["shed_health"],
            rejected_open=admission["rejected_open"],
            rejected_budget=admission["rejected_budget"],
            rejected_draining=admission["rejected_draining"],
            rejected_bulkhead=bulkhead_rejected,
            result_hits=sum(1 for r in records if r.cache_hit),
            deadline_exceeded=sum(1 for r in records if r.deadline_exceeded),
            breaker_state=admission["breaker_state"],
            cache_tiers={
                "result": self.result_cache.stats.to_dict(),
                "extraction": self.extraction_cache.stats.to_dict(),
                "fewshot": self.fewshot_cache.stats.to_dict(),
            },
            hedge=self.hedge_stats.to_dict() if self.hedge_stats else {},
            health=self.health.snapshot(),
            bulkheads=bulkheads,
            backends=self.backends.snapshot() if self.backends else {},
            latency=LatencySummary.from_values(
                [r.service_seconds for r in finished_records]
            ),
            makespan_seconds=max(busy.values()) if busy else 0.0,
            wall_seconds=(finished - started)
            if started is not None and finished is not None
            else 0.0,
        )

    def shutdown(self, wait: bool = True, drain: bool = False) -> None:
        """Stop accepting requests and (optionally) drain the pool.

        ``drain=True`` is the graceful path: the admission gate closes
        first — new submissions (and callers blocked waiting for a queue
        slot) are rejected with a typed
        :class:`~repro.serving.admission.DrainingError` — then every
        already-admitted request runs to completion before the pool stops.
        Plain ``shutdown()`` keeps the historical contract: later
        ``submit`` calls raise ``RuntimeError``.
        """
        if drain:
            # _closed stays False: post-drain submissions route through the
            # closed admission gate and get the typed DrainingError.
            self.admission.close()
            self._pool.shutdown(wait=True)
            if self.journal is not None:
                self.journal.seal()
            return
        self._closed = True
        self._pool.shutdown(wait=wait)
        if wait and self.journal is not None:
            # Clean shutdown: epoch-stamped seal + fsync, so the next
            # load can tell a finished run from an interrupted one.
            self.journal.seal()

    def _on_journal_disabled(self, exc: OSError) -> None:
        """Journal brownout listener: degrade, count, trace — keep serving."""
        self.health.record("storage", False, detail=f"journal disabled: {exc}")
        add_event("journal_disabled", error=str(exc))
        if self.metrics is not None:
            self._m_storage_disabled.inc()
            for kind, count in self.journal.write_errors.items():
                self._m_storage_errors.labels(kind=kind).inc(count)

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
