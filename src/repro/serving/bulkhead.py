"""Per-database bulkheads and poison-pill quarantine for the serving engine.

The engine's thread pool and admission queue are *shared*: one pathological
database — a corrupted file that crashes every request, a hot db_id whose
queries are all slow — can occupy every worker and starve the healthy
databases.  The bulkhead pattern bounds the blast radius:

* **bounded sub-pools** — each ``db_id`` may hold at most
  ``max_inflight`` of the shared workers at once; excess requests for
  that database are rejected with :class:`BulkheadFullError` while other
  databases keep flowing;
* **per-database breakers** — each ``db_id`` has its own
  :class:`~repro.reliability.breaker.CircuitBreaker` fed by that
  database's request outcomes, so a failing database stops being
  dispatched (:class:`DbCircuitOpenError`) without opening the engine-wide
  breaker for everyone;
* **poison-pill quarantine** — a ``(db_id, normalized question)`` key that
  crashes ``quarantine_threshold`` consecutive times is quarantined:
  later requests for the exact key are rejected up front
  (:class:`QuarantinedError`) and never occupy a slot again, so a
  deterministic crasher cannot keep burning its bulkhead's budget.

All three rejections subclass
:class:`~repro.serving.admission.AdmissionError`, so existing callers that
count admission rejections see them uniformly.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.reliability.breaker import CircuitBreaker
from repro.serving.admission import AdmissionError

__all__ = [
    "BulkheadFullError",
    "DbCircuitOpenError",
    "QuarantinedError",
    "BulkheadRegistry",
]

Key = tuple[str, str]


class BulkheadFullError(AdmissionError):
    """The database's bounded sub-pool is at capacity."""


class DbCircuitOpenError(AdmissionError):
    """The database's own circuit breaker is open."""


class QuarantinedError(AdmissionError):
    """The (db_id, question) key is quarantined after repeated crashes."""


class _DbState:
    """One database's bulkhead accounting (guarded by the registry lock)."""

    __slots__ = (
        "inflight", "peak_inflight", "admitted", "rejected_full",
        "rejected_open", "rejected_quarantined", "crashes", "breaker",
    )

    def __init__(self, breaker: CircuitBreaker):
        self.inflight = 0
        self.peak_inflight = 0
        self.admitted = 0
        self.rejected_full = 0
        self.rejected_open = 0
        self.rejected_quarantined = 0
        self.crashes = 0
        self.breaker = breaker


class BulkheadRegistry:
    """Bounded, breaker-guarded, quarantine-aware per-database gates.

    ``max_inflight=None`` disables the sub-pool bound (breaker and
    quarantine still apply); ``quarantine_threshold=0`` disables the
    poison-pill quarantine.  ``acquire`` must be paired with exactly one
    ``release`` per admitted request; outcomes are reported through
    ``record_success`` / ``record_crash``.
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        quarantine_threshold: int = 3,
        breaker_failure_threshold: int = 5,
        breaker_cooldown_calls: int = 8,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None to disable)")
        if quarantine_threshold < 0:
            raise ValueError("quarantine_threshold must be >= 0")
        self.max_inflight = max_inflight
        self.quarantine_threshold = quarantine_threshold
        self._breaker_failure_threshold = breaker_failure_threshold
        self._breaker_cooldown_calls = breaker_cooldown_calls
        self._lock = threading.Condition()
        self._dbs: dict[str, _DbState] = {}
        #: key → consecutive crash count (pruned on success)
        self._strikes: dict[Key, int] = {}
        #: key → crash count at quarantine time (permanent until reset)
        self._quarantined: dict[Key, int] = {}

    def _state(self, db_id: str) -> _DbState:
        state = self._dbs.get(db_id)
        if state is None:
            state = self._dbs[db_id] = _DbState(
                CircuitBreaker(
                    failure_threshold=self._breaker_failure_threshold,
                    cooldown_calls=self._breaker_cooldown_calls,
                )
            )
        return state

    # ------------------------------------------------------------ the gate

    def acquire(self, db_id: str, key: Key, block: bool = False) -> None:
        """Claim one of the database's slots or raise the typed rejection.

        Quarantine and an open per-db breaker always raise — waiting in
        line cannot heal either.  A full sub-pool raises
        :class:`BulkheadFullError` for open-loop callers (``block=False``)
        and waits for a released slot for closed-loop ones.
        """
        with self._lock:
            state = self._state(db_id)
            if key in self._quarantined:
                state.rejected_quarantined += 1
                raise QuarantinedError(
                    f"key {key!r} quarantined after "
                    f"{self._quarantined[key]} consecutive crashes"
                )
            if not state.breaker.allow():
                state.rejected_open += 1
                raise DbCircuitOpenError(
                    f"circuit open for database {db_id!r} "
                    f"(state={state.breaker.state.value})"
                )
            if (
                self.max_inflight is not None
                and state.inflight >= self.max_inflight
            ):
                if not block:
                    state.rejected_full += 1
                    raise BulkheadFullError(
                        f"bulkhead for database {db_id!r} at capacity "
                        f"({self.max_inflight})"
                    )
                self._lock.wait_for(
                    lambda: state.inflight < self.max_inflight
                )
            state.inflight += 1
            state.admitted += 1
            state.peak_inflight = max(state.peak_inflight, state.inflight)

    def release(self, db_id: str) -> None:
        """Return the database slot (call exactly once per acquire)."""
        with self._lock:
            state = self._dbs.get(db_id)
            if state is None or state.inflight <= 0:
                raise RuntimeError("release() without a matching acquire()")
            state.inflight -= 1
            self._lock.notify_all()

    # ------------------------------------------------------------ outcomes

    def record_success(self, db_id: str, key: Key) -> None:
        """A request for ``key`` completed; clears its strike count."""
        with self._lock:
            self._state(db_id).breaker.record_success()
            self._strikes.pop(key, None)

    def record_crash(self, db_id: str, key: Key) -> bool:
        """A request for ``key`` crashed; returns True when the key was
        quarantined by this strike."""
        with self._lock:
            state = self._state(db_id)
            state.crashes += 1
            state.breaker.record_failure()
            strikes = self._strikes.get(key, 0) + 1
            self._strikes[key] = strikes
            if (
                self.quarantine_threshold
                and strikes >= self.quarantine_threshold
                and key not in self._quarantined
            ):
                self._quarantined[key] = strikes
                return True
            return False

    # ----------------------------------------------------------- reporting

    def quarantined(self) -> dict[Key, int]:
        """Quarantined keys → consecutive crashes that tripped them."""
        with self._lock:
            return dict(self._quarantined)

    def unquarantine(self, key: Key) -> bool:
        """Manually lift one key's quarantine (operator override)."""
        with self._lock:
            self._strikes.pop(key, None)
            return self._quarantined.pop(key, None) is not None

    def inflight(self, db_id: str) -> int:
        """The database's current in-flight count."""
        with self._lock:
            state = self._dbs.get(db_id)
            return state.inflight if state else 0

    def to_dict(self) -> dict:
        """JSON-ready snapshot: per-db accounting + quarantine roster."""
        with self._lock:
            databases = {
                db_id: {
                    "inflight": state.inflight,
                    "peak_inflight": state.peak_inflight,
                    "admitted": state.admitted,
                    "rejected_full": state.rejected_full,
                    "rejected_open": state.rejected_open,
                    "rejected_quarantined": state.rejected_quarantined,
                    "crashes": state.crashes,
                    "breaker_state": state.breaker.state.value,
                }
                for db_id, state in sorted(self._dbs.items())
            }
            quarantined = {
                f"{db_id}::{question}": strikes
                for (db_id, question), strikes in sorted(self._quarantined.items())
            }
        totals = {
            "rejected_full": sum(d["rejected_full"] for d in databases.values()),
            "rejected_open": sum(d["rejected_open"] for d in databases.values()),
            "rejected_quarantined": sum(
                d["rejected_quarantined"] for d in databases.values()
            ),
        }
        return {
            "max_inflight": self.max_inflight,
            "quarantine_threshold": self.quarantine_threshold,
            "databases": databases,
            "quarantined": quarantined,
            **totals,
        }
