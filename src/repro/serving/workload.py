"""Serving workload generation: Zipf-skewed question repetition.

Real question traffic is heavy-tailed — a few questions account for most
requests ("Cheaper, Better, Faster, Stronger" builds its cost analysis on
exactly this redundancy).  ``zipf_workload`` draws a request stream over a
pool of distinct examples with rank-frequency ``p(r) ∝ 1/r^skew``, which
is what makes the exact-match result tier earn its keep in the serving
bench.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.types import Example

__all__ = ["zipf_weights", "zipf_workload"]


def zipf_weights(n: int, skew: float = 1.2) -> np.ndarray:
    """Normalized rank-frequency weights ``p(r) ∝ 1/r^skew`` for n ranks.

    ``skew=0`` degenerates to uniform traffic; 1.2 is a typical web-query
    exponent.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** -skew
    return weights / weights.sum()

def zipf_workload(
    examples: Sequence[Example],
    requests: int,
    skew: float = 1.2,
    seed: int = 0,
) -> list[Example]:
    """A request stream of ``requests`` draws over ``examples``.

    Which example gets which popularity rank is itself shuffled by the
    seed, so different seeds stress different questions; the draw sequence
    is fully deterministic per (examples, requests, skew, seed).
    """
    if not examples:
        raise ValueError("need at least one example")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(examples))
    weights = zipf_weights(len(examples), skew)
    picks = rng.choice(len(examples), size=requests, p=weights)
    return [examples[order[pick]] for pick in picks]
