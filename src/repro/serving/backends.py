"""Replicated LLM backends with health-aware routing and failover.

One resilient transport (PR 1) survives a *flaky* backend; it cannot
survive a *dead* one.  :class:`BackendPool` wraps N independent replicas —
typically each a :class:`~repro.reliability.transport.ResilientLLM` around
its own fault-injected client — behind the single
:class:`~repro.llm.base.LLMClient` protocol, so the pipeline binds to the
pool exactly as it would to one model:

* **health-score routing** — every replica feeds success/failure
  observations into a shared :class:`~repro.serving.health.HealthMonitor`
  sliding window; a replica's score is ``1 - failure_rate`` over its
  window, zeroed while its circuit breaker is open;
* **sticky-with-decay primary** — the pool keeps serving from the current
  primary while its score (plus a stickiness bonus that decays with each
  consecutive primary failure) still beats the best alternative, so
  routing does not flap on isolated faults but does move off a backend
  that keeps failing;
* **automatic failover** — when the chosen replica raises (its breaker is
  open, its retries gave up on a timeout, the backend is down), the pool
  records the failure and tries the next-healthiest replica in the same
  call; the caller only sees an exception when *every* replica failed;
* **shadow calls** — optionally every ``shadow_every``-th served call is
  duplicated to the next-healthiest non-serving replica and the first
  completion texts are compared into :class:`BackendPoolStats` (and the
  ambient span), without ever affecting the served result.

Accounting invariant (the failover bench certifies it): each successful
``complete`` is served by exactly one replica, so the per-replica
``served`` counts always sum to the pool's successful call count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.llm.base import LLMClient, LLMResponse
from repro.observability.context import add_event
from repro.serving.health import HealthMonitor

__all__ = ["AllBackendsFailedError", "BackendPoolStats", "BackendPool"]


class AllBackendsFailedError(RuntimeError):
    """Every replica in the pool failed the same call."""

    def __init__(self, message: str, causes: Optional[list[Exception]] = None):
        super().__init__(message)
        self.causes = causes or []


@dataclass
class BackendPoolStats:
    """What the pool did over its lifetime (thread-safe via the pool lock)."""

    #: successful ``complete`` calls (each served by exactly one replica)
    calls: int = 0
    #: calls where every replica failed
    exhausted: int = 0
    #: replica index → calls it served
    served: dict[int, int] = field(default_factory=dict)
    #: replica index → failed attempts routed to it
    errors: dict[int, int] = field(default_factory=dict)
    #: intra-call replica switches after a failed attempt
    failovers: int = 0
    #: primary re-elections between calls (sticky primary moved)
    primary_switches: int = 0
    shadow_calls: int = 0
    shadow_agreements: int = 0
    shadow_disagreements: int = 0
    shadow_errors: int = 0

    def to_dict(self) -> dict:
        """JSON-ready counters for stats reports and metrics collectors."""
        return {
            "calls": self.calls,
            "exhausted": self.exhausted,
            "served": {str(k): v for k, v in sorted(self.served.items())},
            "errors": {str(k): v for k, v in sorted(self.errors.items())},
            "failovers": self.failovers,
            "primary_switches": self.primary_switches,
            "shadow_calls": self.shadow_calls,
            "shadow_agreements": self.shadow_agreements,
            "shadow_disagreements": self.shadow_disagreements,
            "shadow_errors": self.shadow_errors,
        }


class BackendPool:
    """N replicas behind one LLMClient, routed by health score.

    ``replicas`` are tried in health order; the first success is the
    answer.  ``stickiness`` is the score bonus the current primary enjoys,
    decayed by ``sticky_decay`` per consecutive primary failure (so a
    healthy primary holds the route, a failing one loses it after a few
    strikes even before its sliding window degrades).  ``shadow_every=k``
    mirrors every k-th served call to a second replica for comparison
    (0 disables shadowing).

    Thread-safe: routing state, stats and the shared HealthMonitor are
    guarded; the replica calls themselves run outside the lock (replicas
    must be individually thread-safe, which ``ResilientLLM`` is).
    """

    def __init__(
        self,
        replicas: Sequence[LLMClient],
        health: Optional[HealthMonitor] = None,
        stickiness: float = 0.15,
        sticky_decay: float = 0.5,
        shadow_every: int = 0,
        window: int = 32,
    ):
        if not replicas:
            raise ValueError("need at least one replica")
        if not 0.0 <= stickiness <= 1.0:
            raise ValueError("stickiness must be in [0, 1]")
        if not 0.0 <= sticky_decay <= 1.0:
            raise ValueError("sticky_decay must be in [0, 1]")
        if shadow_every < 0:
            raise ValueError("shadow_every must be >= 0")
        self.replicas = list(replicas)
        self.health = health if health is not None else HealthMonitor(window=window)
        self.stickiness = stickiness
        self.sticky_decay = sticky_decay
        self.shadow_every = shadow_every
        self.stats = BackendPoolStats()
        self.model_name = self.replicas[0].model_name
        self._lock = threading.Lock()
        self._primary = 0
        self._primary_failures = 0
        self._shadow_tick = 0

    # ------------------------------------------------------------- routing

    def component(self, index: int) -> str:
        """The HealthMonitor component name of one replica."""
        return f"backend:{index}"

    def _breaker_open(self, index: int) -> bool:
        breaker = getattr(self.replicas[index], "breaker", None)
        state = getattr(breaker, "state", None)
        return getattr(state, "value", None) == "open"

    def score(self, index: int) -> float:
        """One replica's routing score: ``1 - failure_rate``, 0 while its
        breaker is open, 1 while unobserved."""
        if self._breaker_open(index):
            return 0.0
        status = self.health.component_status(self.component(index))
        if status is None:
            return 1.0
        return 1.0 - status["failure_rate"]

    def _route_order(self) -> list[int]:
        """Replica indexes to try, healthiest first, sticky primary bonus
        applied.  Re-elects the primary when a rival's score beats the
        primary's decayed sticky score."""
        with self._lock:
            primary = self._primary
            bonus = self.stickiness * (self.sticky_decay ** self._primary_failures)
        scored = []
        for index in range(len(self.replicas)):
            score = self.score(index)
            if index == primary:
                score += bonus
            # ties break toward lower index, then toward the primary
            scored.append((-score, index != primary, index))
        scored.sort()
        order = [index for _, _, index in scored]
        if order[0] != primary:
            with self._lock:
                if self._primary == primary:  # nobody re-elected meanwhile
                    self._primary = order[0]
                    self._primary_failures = 0
                    self.stats.primary_switches += 1
            add_event("backend_primary_switch", previous=primary, now=order[0])
        return order

    def _record_outcome(self, index: int, ok: bool, detail: str = "") -> None:
        self.health.record(self.component(index), ok, detail=detail)
        with self._lock:
            if ok:
                self.stats.served[index] = self.stats.served.get(index, 0) + 1
                if index == self._primary:
                    self._primary_failures = 0
            else:
                self.stats.errors[index] = self.stats.errors.get(index, 0) + 1
                if index == self._primary:
                    self._primary_failures += 1

    # ------------------------------------------------------------- shadows

    def _maybe_shadow(
        self,
        served_index: int,
        order: list[int],
        served: list[LLMResponse],
        prompt: str,
        temperature: float,
        n: int,
        task: Optional[object],
    ) -> None:
        if self.shadow_every <= 0 or len(self.replicas) < 2:
            return
        with self._lock:
            self._shadow_tick += 1
            if self._shadow_tick % self.shadow_every != 0:
                return
            self.stats.shadow_calls += 1
        shadow_index = next(
            (index for index in order if index != served_index), None
        )
        if shadow_index is None:  # pragma: no cover - len >= 2 guarantees one
            return
        try:
            shadow = self.replicas[shadow_index].complete(
                prompt, temperature=temperature, n=n, task=task
            )
        except Exception as exc:  # noqa: BLE001 — shadow must never hurt
            with self._lock:
                self.stats.shadow_errors += 1
            add_event(
                "backend_shadow_error",
                replica=shadow_index,
                error=type(exc).__name__,
            )
            return
        agree = bool(shadow) and bool(served) and shadow[0].text == served[0].text
        with self._lock:
            if agree:
                self.stats.shadow_agreements += 1
            else:
                self.stats.shadow_disagreements += 1
        add_event(
            "backend_shadow_compare",
            served_replica=served_index,
            shadow_replica=shadow_index,
            agree=agree,
        )

    # ----------------------------------------------------------------- API

    def complete(
        self,
        prompt: str,
        *,
        temperature: float = 0.0,
        n: int = 1,
        task: Optional[object] = None,
    ) -> list[LLMResponse]:
        """Serve one completion from the healthiest willing replica."""
        order = self._route_order()
        causes: list[Exception] = []
        for position, index in enumerate(order):
            try:
                responses = self.replicas[index].complete(
                    prompt, temperature=temperature, n=n, task=task
                )
            except Exception as exc:  # noqa: BLE001 — replica boundary
                causes.append(exc)
                self._record_outcome(index, False, detail=f"{type(exc).__name__}: {exc}")
                if position + 1 < len(order):
                    with self._lock:
                        self.stats.failovers += 1
                    add_event(
                        "backend_failover",
                        from_replica=index,
                        to_replica=order[position + 1],
                        cause=type(exc).__name__,
                    )
                continue
            self._record_outcome(index, True)
            with self._lock:
                self.stats.calls += 1
            self._maybe_shadow(
                index, order, responses, prompt, temperature, n, task
            )
            return responses
        with self._lock:
            self.stats.exhausted += 1
        add_event("backend_pool_exhausted", attempts=len(order))
        raise AllBackendsFailedError(
            f"all {len(order)} backends failed "
            f"(last: {type(causes[-1]).__name__}: {causes[-1]})",
            causes=causes,
        )

    def snapshot(self) -> dict:
        """Routing state + per-replica health, for probes and metrics."""
        with self._lock:
            primary = self._primary
            failures = self._primary_failures
        replicas = {}
        for index in range(len(self.replicas)):
            status = self.health.component_status(self.component(index))
            replicas[str(index)] = {
                "score": round(self.score(index), 4),
                "breaker_open": self._breaker_open(index),
                "health": status["status"] if status else "unobserved",
            }
        return {
            "primary": primary,
            "primary_consecutive_failures": failures,
            "replicas": replicas,
            **self.stats.to_dict(),
        }
