"""Component health tracking for the serving engine.

A deployment needs a cheap answer to "is this instance fit to serve?".
:class:`HealthMonitor` keeps a sliding window of success/failure
observations per component (pipeline calls, SQL execution, deadline
outcomes — whatever the engine reports) plus registered *probes*: zero-
argument callables sampled at snapshot time for point-in-time state such
as the circuit breaker's position or cache hit rates.

``snapshot()`` grades each windowed component ``healthy`` / ``degraded``
/ ``unhealthy`` from its recent failure rate and rolls the worst grade up
into an overall status — the shape a readiness endpoint would serve.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional

__all__ = ["HealthMonitor"]

_GRADES = ("healthy", "degraded", "unhealthy")


class HealthMonitor:
    """Windowed per-component health with pluggable probes.

    ``window`` bounds how many recent observations per component count
    toward the failure rate; ``degraded_at`` / ``unhealthy_at`` are the
    failure-rate thresholds for the two bad grades.
    """

    def __init__(
        self,
        window: int = 64,
        degraded_at: float = 0.1,
        unhealthy_at: float = 0.5,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 <= degraded_at <= unhealthy_at <= 1.0:
            raise ValueError("need 0 <= degraded_at <= unhealthy_at <= 1")
        self.window = window
        self.degraded_at = degraded_at
        self.unhealthy_at = unhealthy_at
        self._lock = threading.Lock()
        self._observations: dict[str, deque] = {}
        self._last_failure: dict[str, str] = {}
        self._probes: dict[str, Callable[[], object]] = {}

    # ------------------------------------------------------------- feeding

    def record(self, component: str, ok: bool, detail: str = "") -> None:
        """Add one success/failure observation for ``component``."""
        with self._lock:
            if component not in self._observations:
                self._observations[component] = deque(maxlen=self.window)
            self._observations[component].append(bool(ok))
            if not ok and detail:
                self._last_failure[component] = detail

    def register_probe(self, name: str, probe: Callable[[], object]) -> None:
        """Attach a point-in-time state sampler, called at snapshot time.

        A probe returning a falsy non-dict value reads as a failing
        component; dict payloads are reported verbatim (state, not grade).
        """
        with self._lock:
            self._probes[name] = probe

    # ------------------------------------------------------------ reporting

    def component_status(self, component: str) -> Optional[dict]:
        """The graded view of one windowed component (None when unseen)."""
        with self._lock:
            observations = self._observations.get(component)
            if not observations:
                return None
            failures = sum(1 for ok in observations if not ok)
            rate = failures / len(observations)
            detail = self._last_failure.get(component, "")
        if rate >= self.unhealthy_at:
            grade = "unhealthy"
        elif rate >= self.degraded_at:
            grade = "degraded"
        else:
            grade = "healthy"
        payload = {
            "status": grade,
            "failure_rate": round(rate, 4),
            "window": len(observations),
        }
        if detail:
            payload["last_failure"] = detail
        return payload

    @classmethod
    def from_snapshot(
        cls,
        snapshot: dict,
        window: int = 64,
        degraded_at: float = 0.1,
        unhealthy_at: float = 0.5,
    ) -> "HealthMonitor":
        """Rebuild a monitor from a :meth:`snapshot` dict (JSON round-trip).

        Component windows are replayed from their reported size and
        failure rate — ``round(rate * window)`` recovers the exact
        failure count for any window ≤ 64 at the 4-decimal rounding
        :meth:`component_status` applies.  Probes come back as static
        samplers returning the captured payload (state, not liveness).
        Pass the original thresholds when they were non-default, or the
        recomputed grades may differ from the captured ones.
        """
        components = snapshot.get("components", {})
        widest = max(
            [window, *(s.get("window", 1) for s in components.values())]
        )
        monitor = cls(
            window=widest, degraded_at=degraded_at, unhealthy_at=unhealthy_at
        )
        for component, status in components.items():
            size = int(status.get("window", 0))
            failures = round(status.get("failure_rate", 0.0) * size)
            detail = status.get("last_failure", "")
            for _ in range(size - failures):
                monitor.record(component, True)
            for _ in range(failures):
                monitor.record(component, False, detail=detail)
            if detail and not failures:
                # the failure slid out of the window but its detail stuck
                monitor._last_failure[component] = detail
        for name, payload in snapshot.get("probes", {}).items():
            monitor.register_probe(name, lambda payload=payload: payload)
        return monitor

    def component_grade(self, component: str) -> str:
        """One component's grade alone — ``"healthy"`` when unobserved.

        The cheap form admission control polls on every request: no probe
        sampling, no dict building beyond :meth:`component_status`.
        """
        status = self.component_status(component)
        return status["status"] if status is not None else "healthy"

    def snapshot(self) -> dict:
        """Full health report: overall grade, components and probe state."""
        with self._lock:
            components = list(self._observations)
            probes = dict(self._probes)
        report: dict = {"components": {}, "probes": {}}
        worst = 0
        for component in components:
            status = self.component_status(component)
            if status is None:
                continue
            report["components"][component] = status
            worst = max(worst, _GRADES.index(status["status"]))
        for name, probe in probes.items():
            try:
                value = probe()
            except Exception as exc:
                report["probes"][name] = {"error": f"{type(exc).__name__}: {exc}"}
                worst = max(worst, _GRADES.index("unhealthy"))
                continue
            if isinstance(value, dict):
                report["probes"][name] = value
            else:
                report["probes"][name] = {"value": value}
                if not value:
                    worst = max(worst, _GRADES.index("degraded"))
        report["status"] = _GRADES[worst]
        return report
