"""Durable write-ahead journal for the serving path.

A serving process can die at any instruction — OOM-killed, SIGKILLed by an
orchestrator, power loss.  The journal makes a serve-bench run *crash
recoverable*: the engine appends one JSONL record when a request is
**accepted** (before any work) and one when its result is **committed**
(after the pipeline answered), so after a crash :func:`recover_run` can
replay committed results from disk and re-run exactly the uncommitted
requests — and, because every pipeline draw derives from per-call hashed
seeds, the recovered run is *bit-identical* to an uninterrupted one.

Record grammar v2 (one JSON object per line, append-only; every line
additionally carries the :mod:`repro.storage.format` integrity frame —
a ``crc`` CRC32 over the canonical body and a monotone ``rec`` record
sequence — and a clean shutdown appends an epoch-stamped ``seal``)::

    {"type": "header", "version": 2, "config": {...workload parameters...}}
    {"type": "accepted",  "seq": 7, "question_id": ..., "db_id": ...}
    {"type": "committed", "seq": 7, "status": "ok"|"cached"|"coalesced"|"failed",
     "result": {final_sql, generation_sql, refined_sql, degradations,
                routing?},
     "cost": {stage: {...}}, "error": null, "schema_epoch": 0}
    {"type": "seal", "epoch": 1, "committed": 12}

(``schema_epoch`` appears only on runs with a live-mutation catalog
attached — see ``epoch_provider`` — and records the database's
catalog epoch at commit time.  It is unrelated to the seal ``epoch``,
which counts journal *sessions*.  :func:`recover_run` refuses to replay
records whose ``schema_epoch`` differs from the replay catalog's
current epoch: the world those answers were computed against no longer
exists.)

v1 journals (no ``crc`` fields, ``version: 1`` header) load unchanged:
lines without a CRC are accepted unverified, and strict interior-damage
detection only applies to files whose header declares v2.

The optional ``routing`` payload (present only when a
:class:`~repro.routing.TieredPipeline` answered the request) stores the
tier decision, attempts and escalation events, so a kill/recover replay
is *tier-faithful*: replayed requests keep their original tier
accounting and re-run requests route identically by seed.

Durability properties:

* **torn-tail tolerance, interior strictness** — a line truncated by a
  kill mid-write at the *tail* is truncated away on load and its request
  re-runs; damage in the *interior* of a v2 journal (bit flip, lost
  line) raises a typed
  :class:`~repro.storage.format.JournalCorruptionError` with scoped
  loss accounting instead of silently skipping — ``repro fsck --repair``
  quarantines it offline (v1 journals keep the old skip semantics);
* **write-error brownout** — an ``ENOSPC``/``EIO`` on the append path
  disables disk writes (``journal_disabled``) but keeps the in-memory
  bookkeeping, so serving continues un-journaled instead of crashing;
  storage listeners (engine health/metrics, cluster worker) are told
  once;
* **exactly-once replay** — a committed seq is never re-run, an
  uncommitted seq is re-run exactly once per recovery (and committing it
  makes later recoveries no-ops), so repeated ``repro recover`` calls are
  idempotent;
* **double-count-proof costs** — each seq contributes its cost to the
  recovered report exactly once: committed seqs from their stored
  :class:`~repro.core.cost.CostTracker`, re-run seqs from the fresh
  execution, cache-hit seqs as zero (in the original run *and* in
  recovery, which warms its result cache from committed records so the
  hit pattern matches).

``fsync_every_n`` forces an fsync every n appends for power-loss
semantics (0 = flush only, the default — kill-resilient, not
power-loss-resilient); :meth:`ServingJournal.seal` / ``close()`` always
fsync, so the final partial batch of a clean shutdown is never
droppable.  The ``opener`` hook swaps the filesystem out from under the
journal — :class:`repro.storage.FaultyStorage` plugs in there.
"""

from __future__ import annotations

import errno
import os
import threading
from pathlib import Path
from typing import Callable, Optional, Union

from repro.caching import LRUCache, result_cache_key
from repro.core.cost import CostTracker
from repro.core.pipeline import OpenSearchSQL, PipelineResult
from repro.datasets.types import Example
from repro.reliability.checkpoint import decode_cost, encode_cost
from repro.reliability.deadline import Deadline
from repro.reliability.degradation import DegradationEvent
from repro.storage.format import (
    JournalCorruptionError,
    JournalVersionError,
    encode_record,
    scan_file,
)

__all__ = [
    "JOURNAL_VERSION",
    "ServingJournal",
    "recover_run",
    "assemble_report",
    "epoch_stamps",
    "check_epoch_stamps",
    "JournalCorruptionError",
    "JournalVersionError",
]

JOURNAL_VERSION = 2


def _default_opener(path: Path, mode: str):
    return open(path, mode, encoding="utf-8")


def _classify_errno(exc: OSError) -> str:
    if exc.errno == errno.ENOSPC:
        return "enospc"
    if exc.errno == errno.EIO:
        return "eio"
    return "other"


class ServingJournal:
    """Append-only JSONL journal of accepted/committed serving requests."""

    def __init__(
        self,
        path: Union[str, Path],
        fsync_every_n: int = 0,
        on_commit: Optional[Callable[[int], None]] = None,
        opener: Optional[Callable] = None,
        on_storage_error: Optional[Callable[[OSError], None]] = None,
        epoch_provider: Optional[Callable[[str], int]] = None,
    ):
        if fsync_every_n < 0:
            raise ValueError("fsync_every_n must be >= 0")
        self.path = Path(path)
        self.fsync_every_n = fsync_every_n
        #: ``epoch_provider(db_id)`` → current catalog ``schema_epoch``;
        #: when set, every committed record is stamped with the epoch of
        #: its request's database (the live-mutation harness wires the
        #: EpochRegistry here)
        self.epoch_provider = epoch_provider
        #: called with the cumulative commit count after each commit line
        #: reaches the OS — the hook the kill-after harness uses to
        #: SIGKILL the process at a deterministic journal position
        self.on_commit = on_commit
        #: ``opener(path, "a")`` must return a writable text-file-shaped
        #: handle (write/flush/fileno/close, optionally ``sync()``) —
        #: the storage fault-injection seam
        self._opener = opener or _default_opener
        self._storage_listeners: list[Callable[[OSError], None]] = []
        if on_storage_error is not None:
            self._storage_listeners.append(on_storage_error)
        self._lock = threading.Lock()
        self._appends = 0
        self._unsynced = 0
        self._commits = 0
        self._next_seq = 0
        self._next_rec = 0
        #: brownout flag: a write-path OSError permanently disables disk
        #: appends for this journal instance (memory bookkeeping continues)
        self.disabled = False
        self.disable_reason: Optional[str] = None
        self.write_errors: dict[str, int] = {}
        #: this session's seal epoch (1 + highest epoch already on disk)
        self.epoch = 1
        #: the loaded file ended with a seal (clean shutdown last time)
        self.sealed = False
        self._sealed_now = False
        self.config: dict = {}
        self._accepted: dict[int, dict] = {}
        self._committed: dict[int, dict] = {}
        if self.path.exists():
            self._load()

    # -------------------------------------------------------------- loading

    def _load(self) -> None:
        scan = scan_file(self.path)
        version = scan.header_version
        if version is not None and version > JOURNAL_VERSION:
            raise JournalVersionError(self.path, version, JOURNAL_VERSION)
        strict = (version or 1) >= 2
        if strict and scan.interior_issues:
            raise JournalCorruptionError(self.path, scan)
        if scan.torn_tail:
            # Drop the tear now: appending after a partial line would
            # concatenate the next record onto the garbage.
            try:
                os.truncate(self.path, scan.good_bytes)
            except OSError:
                pass  # read-only segment: loads fine, appends will brown out
        for record in scan.parsed:
            kind = record.get("type")
            if kind == "header":
                if not self.config:
                    self.config = record.get("config", {}) or {}
            elif kind == "accepted":
                self._accepted[record["seq"]] = record
            elif kind == "committed":
                self._committed[record["seq"]] = record
        if self._accepted or self._committed:
            self._next_seq = 1 + max([*self._accepted, *self._committed])
        self._next_rec = scan.next_rec
        self.epoch = scan.epoch + 1
        self.sealed = scan.sealed

    # ------------------------------------------------------------ appending

    def _fsync(self, handle) -> None:
        sync = getattr(handle, "sync", None)
        if callable(sync):
            sync()
        else:
            os.fsync(handle.fileno())
        self._unsynced = 0

    def _disable(self, exc: OSError) -> None:
        """Brown out: stop touching the disk, keep serving from memory."""
        kind = _classify_errno(exc)
        self.write_errors[kind] = self.write_errors.get(kind, 0) + 1
        if self.disabled:
            return
        self.disabled = True
        self.disable_reason = f"{kind}: {exc}"
        for listener in list(self._storage_listeners):
            listener(exc)

    def add_storage_listener(self, listener: Callable[[OSError], None]) -> None:
        """Subscribe to the (one-shot) journal_disabled brownout event."""
        self._storage_listeners.append(listener)

    def _append(self, record: dict, force_sync: bool = False) -> None:
        """Write one CRC-framed line; must be called with the lock held.

        A storage ``OSError`` trips the brownout instead of propagating:
        the caller's in-memory state is already updated and serving must
        outlive a full disk.
        """
        if self.disabled:
            return
        line = encode_record(record, self._next_rec)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._opener(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                self._appends += 1
                self._unsynced += 1
                if force_sync or (
                    self.fsync_every_n
                    and self._appends % self.fsync_every_n == 0
                ):
                    self._fsync(handle)
        except OSError as exc:
            self._disable(exc)
            return
        self._next_rec += 1
        if record.get("type") != "seal":
            # any new record past a seal re-opens the file's history
            self.sealed = False

    def write_header(self, config: dict) -> None:
        """Record the run's workload parameters (idempotent per journal)."""
        with self._lock:
            if self.config:
                return
            self.config = dict(config)
            self._append(
                {"type": "header", "version": JOURNAL_VERSION, "config": self.config}
            )

    def accept(self, example: Example, seq: Optional[int] = None) -> int:
        """Journal one accepted request and return its sequence number.

        Without ``seq`` the journal assigns the next monotone number —
        which equals the workload index when one client thread submits the
        workload in order.  Recovery passes explicit seqs so re-run
        requests land on their original positions.
        """
        with self._lock:
            if seq is None:
                seq = self._next_seq
            record = {
                "type": "accepted",
                "seq": seq,
                "question_id": example.question_id,
                "db_id": example.db_id,
            }
            self._accepted[seq] = record
            self._next_seq = max(self._next_seq, seq + 1)
            self._append(record)
            return seq

    def commit(
        self,
        seq: int,
        status: str,
        result: Optional[PipelineResult] = None,
        error: Optional[str] = None,
    ) -> None:
        """Journal one request's terminal outcome.

        ``status="cached"`` commits with zero cost (a result-tier hit did
        no model work); ``"coalesced"`` likewise (the async engine served
        the request from an in-flight leader's result); ``"ok"`` stores
        the SQL observables + the request's cost; ``"failed"`` stores the
        error (the request will *not* be re-run on recovery — its failure
        is part of the run's history).
        """
        record: dict = {"type": "committed", "seq": seq, "status": status,
                        "error": error}
        if status == "ok" and result is not None:
            record["result"] = {
                "question_id": result.question_id,
                "final_sql": result.final_sql,
                "generation_sql": result.generation_sql,
                "refined_sql": result.refined_sql,
                "degradations": [e.to_dict() for e in result.degradations],
            }
            routing = getattr(result, "routing", None)
            if routing is not None:
                record["result"]["routing"] = routing.to_dict()
            record["cost"] = encode_cost(result.cost)
        with self._lock:
            if self.epoch_provider is not None:
                accepted = self._accepted.get(seq)
                db_id = accepted.get("db_id") if accepted else None
                if db_id is not None:
                    record["schema_epoch"] = self.epoch_provider(db_id)
            self._committed[seq] = record
            self._append(record)
            self._commits += 1
            commits = self._commits
        if self.on_commit is not None:
            self.on_commit(commits)

    # -------------------------------------------------------------- sealing

    def seal(self) -> None:
        """Append an epoch-stamped seal and fsync — the clean-shutdown mark.

        Always syncs, even when the append count isn't a multiple of
        ``fsync_every_n``: a sealed journal's final batch must never be
        droppable on power cut.  Idempotent per journal instance; a
        browned-out journal skips sealing (the disk already rejected us).
        """
        with self._lock:
            if self._sealed_now or self.disabled:
                return
            self._sealed_now = True
            self._append(
                {
                    "type": "seal",
                    "epoch": self.epoch,
                    "committed": len(self._committed),
                },
                force_sync=True,
            )
            if not self.disabled:
                self.sealed = True

    def close(self) -> None:
        """Alias for :meth:`seal` — journals close by sealing."""
        self.seal()

    # ------------------------------------------------------------ reporting

    def __len__(self) -> int:
        return len(self._committed)

    def committed(self, seq: int) -> Optional[dict]:
        """The committed record for one seq, or None."""
        with self._lock:
            return self._committed.get(seq)

    def committed_seqs(self) -> list[int]:
        """Every committed seq (sorted)."""
        with self._lock:
            return sorted(self._committed)

    def accepted_seqs(self) -> list[int]:
        """Every accepted seq (sorted)."""
        with self._lock:
            return sorted(self._accepted)

    def stats_dict(self) -> dict:
        """JSON-ready accounting for metrics collectors."""
        with self._lock:
            accepted = len(self._accepted)
            committed = len(self._committed)
            pending = len(set(self._accepted) - set(self._committed))
        return {
            "path": str(self.path),
            "accepted": accepted,
            "committed": committed,
            "pending": pending,
            "fsync_every_n": self.fsync_every_n,
            "version": JOURNAL_VERSION,
            "epoch": self.epoch,
            "sealed": self.sealed,
            "disabled": self.disabled,
            "disable_reason": self.disable_reason,
            "write_errors": dict(self.write_errors),
        }

    def pending(self) -> list[int]:
        """Accepted-but-uncommitted seqs (in order)."""
        with self._lock:
            return sorted(set(self._accepted) - set(self._committed))

    @staticmethod
    def decode_result(record: dict) -> tuple[Optional[PipelineResult], CostTracker]:
        """Reconstruct the scoreable slice of a committed "ok" record."""
        payload = record.get("result")
        if payload is None:
            return None, CostTracker()
        cost = decode_cost(record.get("cost") or {})
        routing = None
        if payload.get("routing") is not None:
            # Local import: repro.serving stays importable without the
            # routing package (which pulls in the LLM skill profiles).
            from repro.routing.tiered import RoutingInfo

            routing = RoutingInfo.from_dict(payload["routing"])
        result = PipelineResult(
            question_id=payload["question_id"],
            final_sql=payload["final_sql"],
            generation_sql=payload.get("generation_sql"),
            refined_sql=payload.get("refined_sql"),
            cost=cost,
            degradations=[
                DegradationEvent.from_dict(d)
                for d in payload.get("degradations", [])
            ],
            routing=routing,
        )
        return result, cost


def epoch_stamps(journal: ServingJournal, workload: list[Example]) -> dict[str, list[int]]:
    """Per-database ``schema_epoch`` stamps found in committed records.

    Returns ``{db_id: sorted distinct epochs}`` for every database whose
    committed records carry a stamp (empty for pre-livedata journals).
    """
    recorded: dict[str, set[int]] = {}
    for seq, example in enumerate(workload):
        record = journal.committed(seq)
        if record is not None and "schema_epoch" in record:
            recorded.setdefault(example.db_id, set()).add(record["schema_epoch"])
    return {db_id: sorted(epochs) for db_id, epochs in sorted(recorded.items())}


def check_epoch_stamps(
    journal: ServingJournal, pipeline: OpenSearchSQL, workload: list[Example]
) -> None:
    """Refuse cross-epoch replay (see :func:`recover_run`)."""
    stamps = epoch_stamps(journal, workload)
    if not stamps:
        return
    from repro.livedata.errors import CrossEpochReplayError

    registry = getattr(pipeline, "epochs", None)
    for db_id, epochs in stamps.items():
        current = registry.epoch(db_id) if registry is not None else 0
        if epochs != [current]:
            raise CrossEpochReplayError(db_id, tuple(epochs), current)


def recover_run(
    journal: ServingJournal,
    pipeline: OpenSearchSQL,
    workload: list[Example],
    result_cache_size: int = 512,
    deadline_seconds: Optional[float] = None,
) -> list[tuple[str, Optional[PipelineResult], CostTracker, Optional[str]]]:
    """Replay a journaled run to completion, exactly once per request.

    Walks the workload in sequence order: committed seqs are replayed from
    the journal (their result also warms the recovery result cache, so a
    later duplicate hits the cache exactly as it did — or would have — in
    the original run); uncommitted seqs are served fresh against the
    deterministic pipeline and committed, making recovery idempotent.

    Returns one ``(status, result, cost, error)`` tuple per workload
    position — the deterministic inputs a report builder needs.  Crashed
    requests (committed ``"failed"`` or a fresh raise) carry ``None``
    results, mirroring ``ServingEngine.run``.

    Raises :class:`~repro.livedata.errors.CrossEpochReplayError` when any
    committed record carries a ``schema_epoch`` stamp that differs from
    the replay catalog's current epoch for that database (a freshly
    rebuilt pipeline is at epoch 0 everywhere): replaying it would
    re-serve answers computed against a catalog that no longer exists.
    """
    check_epoch_stamps(journal, pipeline, workload)
    # size 0 disables the tier (every get misses), matching the engine's
    # --no-cache semantics so recovery mirrors the original hit pattern
    cache = LRUCache(result_cache_size)
    outcomes: list[tuple[str, Optional[PipelineResult], CostTracker, Optional[str]]] = []
    for seq, example in enumerate(workload):
        # Tier-aware like the engine's key: a routed run recovers with the
        # same per-tier hit pattern the uninterrupted run had.
        key = result_cache_key(example, pipeline)
        record = journal.committed(seq)
        if record is not None:
            status = record.get("status", "ok")
            if status == "failed":
                outcomes.append(("failed", None, CostTracker(), record.get("error")))
                continue
            result, cost = ServingJournal.decode_result(record)
            if status in ("cached", "coalesced"):
                # "coalesced" is the async engine's single-flight follower:
                # served from an in-flight leader at zero cost.  Its seq is
                # always greater than its leader's (registration order), so
                # by the time it replays the leader's "ok" has warmed the
                # recovery cache and the hit below serves the same result.
                hit = cache.get(key)
                # serve the warmed original when available; the SQL
                # observables are identical either way
                outcomes.append((status, hit if hit is not None else result,
                                 CostTracker(), None))
                continue
            if result is not None and not result.deadline_exceeded:
                cache.put(key, result)
            outcomes.append(("ok", result, cost, None))
            continue

        # Uncommitted: serve fresh, mirroring the engine's cache semantics.
        hit = cache.get(key)
        if hit is not None:
            journal.accept(example, seq=seq)
            journal.commit(seq, "cached")
            outcomes.append(("cached", hit, CostTracker(), None))
            continue
        journal.accept(example, seq=seq)
        deadline = (
            Deadline(deadline_seconds) if deadline_seconds is not None else None
        )
        try:
            result = pipeline.answer(example, deadline=deadline)
        except Exception as exc:  # noqa: BLE001 — containment boundary
            error = f"{type(exc).__name__}: {exc}"
            journal.commit(seq, "failed", error=error)
            outcomes.append(("failed", None, CostTracker(), error))
            continue
        journal.commit(seq, "ok", result=result)
        if not result.deadline_exceeded:
            cache.put(key, result)
        outcomes.append(("ok", result, result.cost, None))
    return outcomes


def assemble_report(
    outcomes: list[tuple[str, Optional[PipelineResult], CostTracker, Optional[str]]],
    workload: list[Example],
    pipeline: OpenSearchSQL,
    name: str = "journaled",
    gold_cache=None,
):
    """Score :func:`recover_run` outcomes into an ``EvalReport``.

    Both the uninterrupted and the recovered serve-bench paths build their
    report through this one function (the uninterrupted run's complete
    journal replays without re-running anything), so a crash-recovery
    certification compares two documents produced by identical code.
    Cached outcomes contribute zero cost — in the original run they did no
    model work, and the journal committed them as such.
    """
    # Function-local imports: repro.serving must stay importable without
    # pulling the evaluation package in (which imports serving.latency).
    from repro.caching import GoldResultCache
    from repro.evaluation.metrics import score_example
    from repro.evaluation.runner import EvalReport, _error_score

    report = EvalReport(system=name)
    gold = gold_cache if gold_cache is not None else GoldResultCache()
    tier_mix: dict[str, int] = {}
    escalation_mix: dict[str, int] = {}
    for example, (status, result, cost, error) in zip(workload, outcomes):
        routing = getattr(result, "routing", None)
        if routing is not None:
            tier_mix[routing.final_tier] = tier_mix.get(routing.final_tier, 0) + 1
            for event in routing.escalations:
                escalation_mix[event.reason] = (
                    escalation_mix.get(event.reason, 0) + 1
                )
        if status == "failed" or result is None:
            score = _error_score(example, error or "request failed")
            report.scores.append(score)
            report.generation_scores.append(score)
            report.refined_scores.append(score)
            report.latencies.append(0.0)
            continue
        executor = pipeline.executor(example.db_id)
        gold_outcome = gold.outcome(example, executor)
        report.scores.append(
            score_example(example, result.final_sql, executor, gold_outcome)
        )
        report.generation_scores.append(
            score_example(example, result.generation_sql, executor, gold_outcome)
        )
        report.refined_scores.append(
            score_example(example, result.refined_sql, executor, gold_outcome)
        )
        report.latencies.append(cost.total_model_seconds)
        report.cost.merge(cost)
        for event in result.degradations:
            report.degradations.append(
                {"question_id": example.question_id, **event.to_dict()}
            )
    if tier_mix:
        # Routed runs annotate the report; the annotation replays from
        # journal records, so kill/recover keeps it byte-identical.
        report.meta["tier_mix"] = dict(sorted(tier_mix.items()))
        if escalation_mix:
            report.meta["escalations"] = dict(sorted(escalation_mix.items()))
    return report
