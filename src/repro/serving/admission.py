"""Admission control for the serving engine.

A bounded request queue with three reject channels, each surfaced as a
distinct exception so load generators can tell *why* a request was turned
away:

* **shed** — the queue (queued + in-flight requests) is at capacity and the
  caller asked for non-blocking admission → :class:`QueueFullError`;
* **circuit open** — the engine's
  :class:`~repro.reliability.breaker.CircuitBreaker` has opened after
  consecutive pipeline failures →
  :class:`~repro.reliability.faults.CircuitOpenError`;
* **budget** — the engine's request budget is spent →
  :class:`~repro.reliability.faults.BudgetExceededError`;
* **draining** — the engine is shutting down gracefully and the gate has
  been closed to new work → :class:`DrainingError`;
* **health shed** — a probabilistic early-warning channel: when the wired
  :class:`~repro.serving.health.HealthMonitor` grade degrades, a fraction
  of requests is shed *before* the circuit breaker trips →
  :class:`HealthShedError`.  The breaker is a hard binary gate that only
  opens after consecutive failures; the health shed bleeds load off a
  sliding-window failure rate, so an instance under partial failure
  degrades gradually instead of cliff-dropping.

Closed-loop clients use ``admit(block=True)`` and wait for a slot;
open-loop clients use ``block=False`` and count their sheds.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Mapping, Optional

from repro.reliability.breaker import CircuitBreaker
from repro.reliability.faults import BudgetExceededError, CircuitOpenError

__all__ = [
    "AdmissionError",
    "QueueFullError",
    "DrainingError",
    "HealthShedError",
    "AdmissionController",
    "DEFAULT_HEALTH_SHED",
]

#: shed probability per health grade — the default when health-aware
#: shedding is enabled without an explicit schedule.  "healthy" requests
#: are never shed by this channel.
DEFAULT_HEALTH_SHED: dict[str, float] = {"degraded": 0.25, "unhealthy": 0.75}


class AdmissionError(RuntimeError):
    """Base class for admission-control rejections."""


class QueueFullError(AdmissionError):
    """The request was shed: the bounded queue is at capacity."""


class DrainingError(AdmissionError):
    """The gate is closed: the engine is draining toward shutdown."""


class HealthShedError(AdmissionError):
    """The request was shed because the health grade is degraded."""


class AdmissionController:
    """Bounded-queue admission gate wired to a circuit breaker and budget.

    ``capacity`` bounds queued-plus-running requests.  ``admit`` must be
    called before dispatch and ``release`` exactly once per admitted
    request (success or failure); the engine reports pipeline outcomes to
    the breaker via ``record_success`` / ``record_failure``.
    """

    def __init__(
        self,
        capacity: int = 32,
        breaker: Optional[CircuitBreaker] = None,
        max_requests: Optional[int] = None,
        health_grade: Optional[Callable[[], str]] = None,
        health_shed_probability: Optional[Mapping[str, float]] = None,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.breaker = breaker or CircuitBreaker()
        self.max_requests = max_requests
        #: polled on each admit; returning "degraded"/"unhealthy" activates
        #: the probabilistic shed channel (when a schedule is configured)
        self.health_grade = health_grade
        self.health_shed_probability = (
            dict(health_shed_probability) if health_shed_probability else {}
        )
        for grade, probability in self.health_shed_probability.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"shed probability for {grade!r} must be in [0, 1]"
                )
        self._rng = random.Random(seed)
        self._cond = threading.Condition()
        self._pending = 0
        self.closed = False
        self.submitted = 0
        self.admitted = 0
        self.shed = 0
        self.shed_health = 0
        self.rejected_open = 0
        self.rejected_budget = 0
        self.rejected_draining = 0

    @property
    def pending(self) -> int:
        """Requests currently queued or in flight."""
        with self._cond:
            return self._pending

    def admit(self, block: bool = False, timeout: Optional[float] = None) -> None:
        """Claim a queue slot or raise the applicable rejection.

        With ``block=True`` a full queue waits (closed-loop); breaker and
        budget rejections never block — an open circuit or a spent budget
        will not heal by waiting in line.
        """
        with self._cond:
            self.submitted += 1
            if self.closed:
                self.rejected_draining += 1
                raise DrainingError("engine is draining; no new requests admitted")
            if self.max_requests is not None and self.admitted >= self.max_requests:
                self.rejected_budget += 1
                raise BudgetExceededError(
                    f"request budget of {self.max_requests} exhausted",
                    spent_calls=self.admitted,
                )
            if not self.breaker.allow():
                self.rejected_open += 1
                raise CircuitOpenError(
                    "serving circuit open: recent pipeline failures exceeded "
                    f"threshold (state={self.breaker.state.value})"
                )
            if self.health_grade is not None and self.health_shed_probability:
                grade = self.health_grade()
                probability = self.health_shed_probability.get(grade, 0.0)
                if probability and self._rng.random() < probability:
                    self.shed_health += 1
                    raise HealthShedError(
                        f"request shed: health grade {grade!r} sheds at "
                        f"p={probability}"
                    )
            if self._pending >= self.capacity:
                if not block:
                    self.shed += 1
                    raise QueueFullError(
                        f"queue at capacity ({self.capacity}); request shed"
                    )
                if not self._cond.wait_for(
                    lambda: self._pending < self.capacity or self.closed,
                    timeout=timeout,
                ):
                    self.shed += 1
                    raise QueueFullError(
                        f"queue stayed at capacity ({self.capacity}) for "
                        f"{timeout}s; request shed"
                    )
                if self.closed:
                    # the gate closed while this caller waited in line
                    self.rejected_draining += 1
                    raise DrainingError(
                        "engine is draining; no new requests admitted"
                    )
            self._pending += 1
            self.admitted += 1

    def release(self) -> None:
        """Return an admitted request's slot (call exactly once)."""
        with self._cond:
            if self._pending <= 0:
                raise RuntimeError("release() without a matching admit()")
            self._pending -= 1
            self._cond.notify()

    def close(self) -> None:
        """Close the gate for graceful drain: every later ``admit`` (and
        every caller currently blocked waiting for a slot) raises
        :class:`DrainingError`; in-flight requests release normally."""
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def record_success(self) -> None:
        """Report a completed pipeline call to the breaker."""
        self.breaker.record_success()

    def record_failure(self) -> None:
        """Report a failed pipeline call to the breaker."""
        self.breaker.record_failure()

    def to_dict(self) -> dict:
        """JSON-ready admission accounting."""
        with self._cond:
            return {
                "capacity": self.capacity,
                "closed": self.closed,
                "submitted": self.submitted,
                "admitted": self.admitted,
                "shed": self.shed,
                "shed_health": self.shed_health,
                "rejected_open": self.rejected_open,
                "rejected_budget": self.rejected_budget,
                "rejected_draining": self.rejected_draining,
                "breaker_state": self.breaker.state.value,
            }
