"""The shard coordinator: supervised multi-process serving.

``ShardCoordinator`` partitions ``db_id``s across N spawned worker
processes via a consistent-hash ring, routes requests over pipes, and
supervises the fleet:

* **death detection** — a supervisor thread declares a worker dead when
  its process exits (SIGKILL, OOM, segfault) or its heartbeats go stale
  (hung interpreter); the stale case gets a SIGKILL first so the two
  paths converge;
* **journal-resolved outstanding** — on death the coordinator reloads
  the shard's on-disk journal segment: outstanding requests the dead
  worker *committed* are answered from the segment (they happened —
  re-running them would double-serve), uncommitted ones are shed from
  the shard with a typed :class:`ShardUnavailableError` and re-routed;
* **restart with budget + backoff** — each worker may restart
  ``restart_budget`` times, delayed ``backoff_base * 2**n`` seconds; a
  restarted worker re-opens its segment and warms its result cache from
  it (per-shard journal recovery);
* **rebalance on permanent death** — budget exhausted (or the worker's
  sliding :class:`~repro.serving.health.HealthMonitor` grade reaches
  ``unhealthy`` — a flapping worker is demoted early), the shard is
  removed from the ring, survivors adopt its segment's committed results
  into their caches, and its uncommitted requests retry on their new
  owners; with no owners left the error escapes to the caller;
* **snapshot merge** — workers ship JSON health/metrics/serving
  snapshots (never pickled live objects); the coordinator labels them by
  shard and folds them into one :class:`MetricsRegistry` view.

End-to-end deadlines survive the process hop: the coordinator forwards
the *remaining* budget (configured deadline minus coordinator-side queue
time) with each request, and the worker engine runs the request under
exactly that allowance.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import Future
from typing import Callable, Optional, Sequence

from repro.datasets.types import Example
from repro.observability.metrics import MetricsRegistry
from repro.serving.cluster.config import ClusterConfig, example_to_wire
from repro.serving.cluster.ring import HashRing
from repro.serving.health import HealthMonitor
from repro.serving.journal import JournalCorruptionError, ServingJournal

__all__ = ["ShardCoordinator", "ShardUnavailableError", "ClusterStats"]

#: worker lifecycle states
SPAWNING, READY, DEAD, RESTARTING, REMOVED = (
    "spawning",
    "ready",
    "dead",
    "restarting",
    "removed",
)


class ShardUnavailableError(RuntimeError):
    """No live shard can serve this request.

    Raised (as a Future exception) when a request's shard died and either
    the re-route budget is exhausted or the ring has no owner left for
    its ``db_id``.  Typed so callers can distinguish a shed from a
    pipeline failure — and so the restart-budget-exhaustion smoke can
    assert sheds instead of hangs.
    """

    def __init__(self, db_id: str, reason: str):
        super().__init__(f"no shard available for db_id {db_id!r}: {reason}")
        self.db_id = db_id
        self.reason = reason


class _Request:
    __slots__ = ("seq", "example", "future", "reroutes", "enqueued_at")

    def __init__(self, seq: int, example: Example, enqueued_at: float):
        self.seq = seq
        self.example = example
        self.future: Future = Future()
        self.reroutes = 0
        self.enqueued_at = enqueued_at


class _WorkerHandle:
    """Coordinator-side state of one shard worker."""

    def __init__(self, worker_id: int, segment_path):
        self.id = worker_id
        self.segment_path = segment_path
        self.process: Optional[multiprocessing.Process] = None
        self.conn = None
        self.state = SPAWNING
        self.conn_closed = False
        self.last_heartbeat = time.monotonic()
        self.spawned_at = time.monotonic()
        self.restarts_used = 0
        self.restart_at = 0.0
        #: seq → _Request dispatched to this worker, not yet resolved
        self.outstanding: dict[int, _Request] = {}
        #: requests parked while the worker is spawning/restarting
        self.pending: list[_Request] = []
        self.results = 0
        self.send_lock = threading.Lock()
        self.final_stats: Optional[dict] = None
        #: the worker's segment browned out or was quarantined: it keeps
        #: serving (degraded), it is NOT a death
        self.storage_degraded = False
        self.storage_reason = ""


class ClusterStats:
    """Merged cluster accounting (JSON-ready via :meth:`to_dict`)."""

    def __init__(self, payload: dict):
        self._payload = payload

    def to_dict(self) -> dict:
        return dict(self._payload)

    def __getitem__(self, key):
        return self._payload[key]

    def format(self) -> str:
        p = self._payload
        lines = [
            f"shards      : {p['shards']} configured, "
            f"{len(p['ring_nodes'])} on ring {p['ring_nodes']}",
            f"requests    : {p['dispatched']} dispatched / "
            f"{p['completed']} completed / {p['failed']} failed / "
            f"{p['shed_unavailable']} shard-unavailable",
            f"supervision : {p['deaths']} deaths, {p['restarts']} restarts, "
            f"{p['rebalances']} rebalances, {p['reroutes']} reroutes, "
            f"{p['resolved_from_journal']} resolved-from-journal, "
            f"{p.get('storage_degraded', 0)} storage-degraded",
            "per-shard   : "
            + ", ".join(
                f"shard{k}={n}" for k, n in sorted(p["results_by_shard"].items())
            ),
        ]
        return "\n".join(lines)


class ShardCoordinator:
    """Spawn, route to, and supervise a sharded worker fleet."""

    def __init__(
        self,
        config: ClusterConfig,
        metrics: Optional[MetricsRegistry] = None,
        on_result: Optional[Callable[[int, int], None]] = None,
        mp_context: str = "spawn",
    ):
        self.config = config
        self.metrics = metrics
        #: hook called as (worker_id, results_from_that_worker) after each
        #: result message — the serve-bench kill harness SIGKILLs a worker
        #: from here at a deterministic position in its response stream
        self.on_result = on_result
        self._ctx = multiprocessing.get_context(mp_context)
        self.ring = HashRing(range(config.shards), vnodes=config.ring_vnodes)
        #: sliding per-worker health; a death records a failure, a served
        #: result a success — "unhealthy" demotes the worker permanently
        self.health = HealthMonitor(window=16, degraded_at=0.25, unhealthy_at=0.5)
        self._lock = threading.RLock()
        self._workers: dict[int, _WorkerHandle] = {}
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._counters = {
            "dispatched": 0,
            "completed": 0,
            "failed": 0,
            "shed_unavailable": 0,
            "deaths": 0,
            "restarts": 0,
            "rebalances": 0,
            "reroutes": 0,
            "resolved_from_journal": 0,
            "storage_degraded": 0,
            "invalidations_broadcast": 0,
            "invalidations_acked": 0,
        }
        if metrics is not None:
            self._m_requests = metrics.counter(
                "repro_cluster_requests_total",
                "cluster requests by terminal status",
                labelnames=("status",),
            )
            self._m_events = metrics.counter(
                "repro_cluster_supervision_total",
                "supervision events (death/restart/rebalance/reroute)",
                labelnames=("event",),
            )
            metrics.register_collector("cluster", lambda: self.stats().to_dict())
            metrics.register_collector("cluster_health", self.health.snapshot)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "ShardCoordinator":
        """Spawn every worker and start the supervisor."""
        if self._started:
            return self
        self._started = True
        os.makedirs(self.config.journal_dir, exist_ok=True)
        for worker_id in range(self.config.shards):
            handle = _WorkerHandle(
                worker_id, self.config.segment_path(worker_id)
            )
            self._workers[worker_id] = handle
            self._spawn(handle)
        supervisor = threading.Thread(
            target=self._supervise, name="cluster-supervisor", daemon=True
        )
        supervisor.start()
        self._threads.append(supervisor)
        return self

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or restart) one worker process and its receiver."""
        from repro.serving.cluster.worker import worker_main

        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(handle.id, self.config.to_dict(), child_conn),
            name=f"shard-{handle.id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.conn_closed = False
        handle.state = SPAWNING
        handle.spawned_at = time.monotonic()
        handle.last_heartbeat = time.monotonic()
        receiver = threading.Thread(
            target=self._receive,
            args=(handle, parent_conn),
            name=f"cluster-recv-{handle.id}",
            daemon=True,
        )
        receiver.start()
        self._threads.append(receiver)

    def __enter__(self) -> "ShardCoordinator":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------- routing

    def submit(self, example: Example, seq: Optional[int] = None) -> Future:
        """Route one request to its shard; returns a Future.

        The Future resolves to the worker's committed-record dict
        (``{"status", "result", "cost", ...}``) or raises
        :class:`ShardUnavailableError` / a typed worker rejection.
        """
        if not self._started:
            raise RuntimeError("coordinator not started")
        with self._lock:
            if seq is None:
                seq = self._counters["dispatched"]
            self._counters["dispatched"] += 1
            request = _Request(seq, example, time.monotonic())
            self._dispatch(request)
        return request.future

    def run(self, workload: Sequence[Example]) -> list:
        """Serve a whole workload; one committed-record dict (or None for
        a shed/failed request) per position."""
        futures = [self.submit(example, seq=seq) for seq, example in enumerate(workload)]
        results = []
        for future in futures:
            try:
                results.append(future.result(timeout=self.config.request_timeout))
            except Exception:
                results.append(None)
        return results

    def _dispatch(self, request: _Request) -> None:
        """Send (or park) a request on its owning shard; lock held."""
        owner = self.ring.lookup(request.example.db_id)
        if owner is None:
            self._resolve_shed(request, "consistent-hash ring is empty")
            return
        handle = self._workers[owner]
        if handle.state in (SPAWNING, RESTARTING, DEAD):
            # parked; flushed on ready (or re-routed on permanent death)
            handle.pending.append(request)
            return
        self._send_request(handle, request)

    def _send_request(self, handle: _WorkerHandle, request: _Request) -> None:
        handle.outstanding[request.seq] = request
        deadline_remaining = None
        if self.config.deadline_seconds is not None:
            elapsed = time.monotonic() - request.enqueued_at
            deadline_remaining = max(
                self.config.deadline_seconds - elapsed, 1e-3
            )
        message = {
            "type": "request",
            "seq": request.seq,
            "example": example_to_wire(request.example),
            "deadline_seconds": deadline_remaining,
        }
        try:
            with handle.send_lock:
                handle.conn.send(message)
        except (OSError, ValueError):
            # pipe already broken: leave it in outstanding — the death
            # handler resolves it from the journal or re-routes it
            handle.conn_closed = True

    def _resolve_shed(self, request: _Request, reason: str) -> None:
        self._counters["shed_unavailable"] += 1
        if self.metrics is not None:
            self._m_requests.labels(status="shed_unavailable").inc()
        request.future.set_exception(
            ShardUnavailableError(request.example.db_id, reason)
        )

    def _reroute(self, request: _Request, reason: str) -> None:
        """Retry-on-new-owner after a shard death; lock held."""
        request.reroutes += 1
        self._counters["reroutes"] += 1
        if self.metrics is not None:
            self._m_events.labels(event="reroute").inc()
        if request.reroutes > self.config.max_reroutes:
            self._resolve_shed(
                request, f"re-route budget exhausted after: {reason}"
            )
            return
        self._dispatch(request)

    # ----------------------------------------------------------- receiving

    def _receive(self, handle: _WorkerHandle, conn) -> None:
        """Pipe reader for one worker generation (daemon thread)."""
        while not self._stop.is_set():
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            self._on_message(handle, message)
        handle.conn_closed = True

    def _on_message(self, handle: _WorkerHandle, message: dict) -> None:
        kind = message.get("type")
        if kind == "heartbeat":
            handle.last_heartbeat = time.monotonic()
            return
        if kind == "ready":
            with self._lock:
                handle.state = READY
                handle.last_heartbeat = time.monotonic()
                parked, handle.pending = handle.pending, []
                for request in parked:
                    self._send_request(handle, request)
            return
        if kind == "result":
            with self._lock:
                request = handle.outstanding.pop(message["seq"], None)
                handle.results += 1
                results = handle.results
                self._counters["completed"] += 1 if request is not None else 0
            if request is not None:
                record = message["record"]
                self.health.record(f"worker-{handle.id}", True)
                if self.metrics is not None:
                    self._m_requests.labels(
                        status=record.get("status", "ok")
                    ).inc()
                request.future.set_result(record)
            if self.on_result is not None:
                self.on_result(handle.id, results)
            return
        if kind == "error":
            with self._lock:
                request = handle.outstanding.pop(message["seq"], None)
                if request is not None:
                    self._counters["failed"] += 1
            if request is not None:
                if self.metrics is not None:
                    self._m_requests.labels(status="failed").inc()
                request.future.set_exception(
                    RuntimeError(message.get("error", "worker error"))
                )
            return
        if kind == "storage":
            # Degraded-not-dead: the shard's segment went read-only (or
            # was quarantined corrupt) but the worker still serves from
            # memory.  No death, no restart — routing stays put; the
            # degradation is surfaced in stats/metrics.
            with self._lock:
                first = not handle.storage_degraded
                handle.storage_degraded = True
                handle.storage_reason = message.get("reason", "")
                if first:
                    self._counters["storage_degraded"] += 1
            if first and self.metrics is not None:
                self._m_events.labels(event="storage_degraded").inc()
            return
        if kind == "stats":
            with self._lock:
                handle.final_stats = message
            return
        if kind == "invalidated":
            # a worker finished dropping its caches for a broadcast
            # invalidation; counted so tests can await full propagation
            with self._lock:
                self._counters["invalidations_acked"] += 1
            return
        # "adopted" and anything unknown: informational only

    # ---------------------------------------------------------- supervision

    def _supervise(self) -> None:
        poll = min(0.02, self.config.heartbeat_interval / 2)
        while not self._stop.wait(poll):
            now = time.monotonic()
            with self._lock:
                for handle in self._workers.values():
                    if handle.state in (DEAD, REMOVED):
                        continue
                    if handle.state == RESTARTING:
                        if now >= handle.restart_at:
                            handle.restarts_used += 1
                            self._counters["restarts"] += 1
                            if self.metrics is not None:
                                self._m_events.labels(event="restart").inc()
                            self._spawn(handle)
                        continue
                    dead = handle.process is not None and not handle.process.is_alive()
                    dead = dead or handle.conn_closed
                    grace = (
                        self.config.heartbeat_timeout
                        if handle.state == READY
                        else max(self.config.heartbeat_timeout, 60.0)
                    )
                    hung = now - handle.last_heartbeat > grace
                    if hung and not dead:
                        # converge the hung path onto the death path
                        self._kill_process(handle)
                        dead = True
                    if dead:
                        self._handle_death(
                            handle, "hung (heartbeat timeout)" if hung else "process exited"
                        )

    def _kill_process(self, handle: _WorkerHandle) -> None:
        try:
            if handle.process is not None and handle.process.pid:
                os.kill(handle.process.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass

    def _handle_death(self, handle: _WorkerHandle, reason: str) -> None:
        """One worker died; resolve, then restart or rebalance. Lock held."""
        handle.state = DEAD
        self._counters["deaths"] += 1
        if self.metrics is not None:
            self._m_events.labels(event="death").inc()
        self.health.record(f"worker-{handle.id}", False, detail=reason)
        if handle.process is not None:
            handle.process.join(timeout=5)

        # The segment on disk is the worker's last word: anything it
        # committed happened and must not re-run; anything else re-runs
        # exactly once elsewhere.
        try:
            segment = ServingJournal(handle.segment_path)
        except (OSError, JournalCorruptionError):
            # unreadable or corrupt segment: everything outstanding
            # re-runs elsewhere (safe — nothing outstanding was ever
            # answered to a caller, so re-serving cannot double-serve)
            segment = None
        orphans: list[_Request] = []
        outstanding, handle.outstanding = handle.outstanding, {}
        parked, handle.pending = handle.pending, []
        for request in list(outstanding.values()) + parked:
            record = segment.committed(request.seq) if segment is not None else None
            if record is not None:
                self._counters["resolved_from_journal"] += 1
                self._counters["completed"] += 1
                if self.metrics is not None:
                    self._m_requests.labels(
                        status=record.get("status", "ok")
                    ).inc()
                request.future.set_result(record)
            else:
                orphans.append(request)

        exhausted = handle.restarts_used >= self.config.restart_budget
        flapping = self.health.component_grade(f"worker-{handle.id}") == "unhealthy"
        if exhausted or (flapping and handle.restarts_used > 0):
            self._remove_worker(handle, orphans, reason)
        else:
            handle.state = RESTARTING
            handle.restart_at = time.monotonic() + self.config.backoff_base * (
                2**handle.restarts_used
            )
            # orphans stay with this shard; they re-dispatch on ready
            handle.pending.extend(orphans)

    def _remove_worker(
        self, handle: _WorkerHandle, orphans: list[_Request], reason: str
    ) -> None:
        """Permanent death: rebalance the ring and re-route orphans."""
        handle.state = REMOVED
        self.ring.remove(handle.id)
        self._counters["rebalances"] += 1
        if self.metrics is not None:
            self._m_events.labels(event="rebalance").inc()
        # Survivors adopt the dead shard's committed results so repeat
        # questions re-routed to them keep their result-cache hits (the
        # byte-identical recovery property across a rebalance).
        for other in self._workers.values():
            if other.id == handle.id or other.state in (DEAD, REMOVED):
                continue
            try:
                with other.send_lock:
                    other.conn.send(
                        {"type": "adopt", "segment": str(handle.segment_path)}
                    )
            except (OSError, ValueError):
                other.conn_closed = True
        for request in orphans:
            self._reroute(request, f"shard {handle.id} removed ({reason})")

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker process (chaos/testing hook)."""
        with self._lock:
            handle = self._workers[worker_id]
        self._kill_process(handle)

    def broadcast_invalidate(self, db_id: str, epoch: Optional[int] = None) -> int:
        """Tell every live worker ``db_id``'s catalog moved to ``epoch``.

        The cluster half of live-mutation robustness: a mutation observed
        at the coordinator (or by an external DDL watcher) fans out to
        all shards — not just ``db_id``'s ring owner, because adopted
        segments and rebalances mean any shard may hold cached state for
        any database.  Each worker advances its epoch registry (monotone,
        so replayed or reordered broadcasts are no-ops), drops every
        cache tier keyed by the db, and acks with ``invalidated``.
        Returns the number of workers the broadcast reached.
        """
        sent = 0
        with self._lock:
            self._counters["invalidations_broadcast"] += 1
            for handle in self._workers.values():
                if handle.state in (DEAD, REMOVED):
                    continue
                try:
                    with handle.send_lock:
                        handle.conn.send(
                            {"type": "invalidate", "db_id": db_id, "epoch": epoch}
                        )
                    sent += 1
                except (OSError, ValueError):
                    handle.conn_closed = True
        if self.metrics is not None:
            self._m_events.labels(event="invalidate_broadcast").inc()
        return sent

    def invalidations_acked(self) -> int:
        """Workers that have acked an ``invalidate`` broadcast so far."""
        with self._lock:
            return self._counters["invalidations_acked"]

    # ------------------------------------------------------------ reporting

    def stats(self) -> ClusterStats:
        """Merged cluster accounting snapshot."""
        with self._lock:
            counters = dict(self._counters)
            workers = {
                handle.id: {
                    "state": handle.state,
                    "restarts_used": handle.restarts_used,
                    "results": handle.results,
                    "outstanding": len(handle.outstanding),
                    "storage_degraded": handle.storage_degraded,
                }
                for handle in self._workers.values()
            }
            results_by_shard = {
                handle.id: handle.results for handle in self._workers.values()
            }
            ring_nodes = self.ring.nodes()
        return ClusterStats(
            {
                "shards": self.config.shards,
                "ring_nodes": ring_nodes,
                "workers": workers,
                "results_by_shard": results_by_shard,
                **counters,
            }
        )

    def shard_snapshots(self) -> dict[int, dict]:
        """Final per-shard stats payloads (populated during shutdown)."""
        with self._lock:
            return {
                handle.id: dict(handle.final_stats)
                for handle in self._workers.values()
                if handle.final_stats is not None
            }

    def merged_metrics(self) -> MetricsRegistry:
        """One shard-labelled registry merging every worker's snapshot.

        Cluster-level instruments/collectors live on the coordinator's
        own registry (when one was passed); this view adds each worker's
        shipped snapshot under ``shard<K>.*`` collectors — the merged
        document ``repro metrics`` renders for the whole cluster.
        """
        registry = self.metrics if self.metrics is not None else MetricsRegistry()
        if self.metrics is None:
            registry.register_collector("cluster", lambda: self.stats().to_dict())
            registry.register_collector("cluster_health", self.health.snapshot)
        for worker_id, payload in sorted(self.shard_snapshots().items()):
            for section in ("serving", "health", "journal"):
                data = payload.get(section)
                if data is not None:
                    registry.register_collector(
                        f"shard{worker_id}.{section}", lambda d=data: d
                    )
            metrics_snapshot = payload.get("metrics")
            if metrics_snapshot:
                for name, instrument in metrics_snapshot.get("metrics", {}).items():
                    registry.register_collector(
                        f"shard{worker_id}.metric.{name}",
                        lambda inst=instrument: inst.get("samples", {}),
                    )
        return registry

    # ------------------------------------------------------------- shutdown

    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain workers, collect final snapshots, stop supervision."""
        with self._lock:
            live = [
                handle
                for handle in self._workers.values()
                if handle.state in (READY, SPAWNING)
                and handle.process is not None
                and handle.process.is_alive()
            ]
        for handle in live:
            try:
                with handle.send_lock:
                    handle.conn.send({"type": "shutdown"})
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for handle in live:
            remaining = max(deadline - time.monotonic(), 0.1)
            handle.process.join(timeout=remaining)
        self._stop.set()
        for handle in self._workers.values():
            if handle.process is not None and handle.process.is_alive():
                self._kill_process(handle)
                handle.process.join(timeout=5)
            try:
                if handle.conn is not None:
                    handle.conn.close()
            except OSError:
                pass
        # fail anything still unresolved — shutdown must never leave a
        # caller blocked on a Future
        with self._lock:
            for handle in self._workers.values():
                for request in list(handle.outstanding.values()) + handle.pending:
                    if not request.future.done():
                        self._resolve_shed(request, "coordinator shut down")
                handle.outstanding = {}
                handle.pending = []
