"""Consistent-hash ring: deterministic db_id → shard placement.

The cluster partitions request keys (``db_id``s) across worker shards.
A consistent-hash ring with virtual nodes gives three properties the
coordinator's rebalance logic leans on:

* **determinism** — placement is a pure function of (nodes, vnodes,
  key) through MD5, so every process (coordinator, workers, a later
  ``repro recover`` run) computes the same owner without coordination;
* **minimal movement** — removing a node moves *only* the keys that
  node owned (≈ ``1/N`` of the keyspace); every other key keeps its
  owner, which is what keeps surviving shards' result caches and journal
  segments valid across a rebalance;
* **balance** — ``vnodes`` points per node smooth the arc lengths so no
  shard owns a grossly outsized share of the keyspace.

Keys and nodes are hashed as strings; nodes are typically small ints
(worker ids) and keys are ``db_id``s.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Optional, Sequence

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: virtual nodes per physical node; 128 keeps the max/min keyspace-share
#: ratio low even at 3-4 nodes (see tests/serving/test_ring.py)
DEFAULT_VNODES = 128


def _point(key: str) -> int:
    """A stable 64-bit ring position for ``key`` (MD5, not ``hash()`` —
    placement must survive interpreter restarts and PYTHONHASHSEED)."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over hashable nodes with virtual nodes."""

    def __init__(self, nodes: Iterable[Hashable] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        # parallel sorted arrays: ring position -> owning node
        self._points: list[tuple[int, str]] = []
        self._owners: list[Hashable] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------ mutation

    def _vnode_keys(self, node: Hashable) -> list[tuple[int, str]]:
        # the string marker breaks (vanishingly unlikely) point ties
        # deterministically, independent of insertion order
        return [
            (_point(f"node:{node}#{index}"), f"{node}#{index}")
            for index in range(self.vnodes)
        ]

    def add(self, node: Hashable) -> None:
        """Place ``node``'s virtual nodes on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for entry in self._vnode_keys(node):
            index = bisect.bisect_left(self._points, entry)
            self._points.insert(index, entry)
            self._owners.insert(index, node)

    def remove(self, node: Hashable) -> None:
        """Take ``node`` off the ring; only its keys change owners."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # ------------------------------------------------------------- lookup

    def lookup(self, key: str) -> Optional[Hashable]:
        """The node owning ``key`` (first vnode clockwise), None if empty."""
        if not self._points:
            return None
        point = _point(f"key:{key}")
        index = bisect.bisect_right(self._points, (point, "￿"))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._owners[index]

    def nodes(self) -> list:
        """Live nodes in sorted order."""
        return sorted(self._nodes, key=str)

    def assignments(self, keys: Sequence[str]) -> dict:
        """node → list of keys it owns (deterministic order); every live
        node appears, even with an empty share."""
        placement: dict = {node: [] for node in self.nodes()}
        for key in keys:
            owner = self.lookup(key)
            if owner is not None:
                placement[owner].append(key)
        return placement

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes
