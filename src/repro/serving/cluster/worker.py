"""The shard worker process.

``worker_main`` is the spawn entry point: it rebuilds its whole serving
stack from :class:`~repro.serving.cluster.config.ClusterConfig` (nothing
is inherited from the coordinator), opens the shard's own journal
segment ``journal-shard-K.jsonl``, warms the result cache from any
committed records already in it (that is per-shard journal recovery —
a SIGKILLed-and-restarted worker resumes with the cache state its
previous life earned), and then serves requests from the coordinator
pipe until shutdown or pipe EOF.

Wire protocol (JSON-ready dicts over a ``multiprocessing`` pipe):

coordinator → worker
    ``{"type": "request", "seq", "example", "deadline_seconds"}``
    ``{"type": "adopt", "segment": path}``   — warm cache from a dead
    peer's segment after a ring rebalance handed this worker its keys
    ``{"type": "invalidate", "db_id", "epoch"}`` — the database mutated:
    adopt the new ``schema_epoch`` (monotone) and drop every cache tier
    keyed by it
    ``{"type": "shutdown"}``                 — drain, report, exit

worker → coordinator
    ``{"type": "ready", "worker": k}``       — engine built, serving
    ``{"type": "heartbeat", "worker": k}``   — liveness, on a timer
    ``{"type": "result", "worker", "seq", "record"}`` — the journal's
    committed record verbatim (status/result/cost), never a pickled
    live object
    ``{"type": "storage", "worker": k, "event", "reason"}`` — the
    shard's segment browned out (``journal_disabled``) or was
    quarantined corrupt on startup; the coordinator marks the worker
    degraded-not-dead and keeps routing to it
    ``{"type": "invalidated", "worker", "db_id", "epoch", "dropped"}`` —
    ack that the broadcast invalidation finished, with per-tier drop
    counts
    ``{"type": "stats", ...}``               — final shard-labelled
    serving/health/metrics/journal snapshots, sent during shutdown

Every response the worker sends is derived from its journal: a request's
``result`` message *is* the committed record, so anything the
coordinator saw on the wire is also on disk, and anything on disk can
stand in for a response that never arrived.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.observability.metrics import MetricsRegistry
from repro.serving.cluster.config import ClusterConfig, build_worker_pipeline
from repro.serving.engine import ServingEngine
from repro.serving.journal import JournalCorruptionError, ServingJournal
from repro.storage.faults import FaultyStorage, StorageFaultPlan

__all__ = ["worker_main", "warm_engine_from_segment"]


def warm_engine_from_segment(engine, journal, example_index) -> int:
    """Warm ``engine``'s result tier from a segment's committed records.

    ``example_index`` maps question_id → Example (the worker's benchmark
    provides it; committed records carry ids, not question text).
    Records whose example is unknown are skipped — a foreign segment may
    reference databases this worker never serves.
    """
    pairs = []
    for seq in sorted(journal.committed_seqs()):
        record = journal.committed(seq)
        if record is None or record.get("status") != "ok":
            continue
        result, _cost = ServingJournal.decode_result(record)
        if result is None:
            continue
        example = example_index.get(result.question_id)
        if example is None:
            continue
        pairs.append((example, result))
    return engine.warm_result_cache(pairs)


class _Heartbeat(threading.Thread):
    """Periodic liveness signal, running from process entry (before the
    expensive benchmark build) so a slow start never reads as a death."""

    def __init__(self, worker_id: int, send, interval: float):
        super().__init__(name=f"shard-{worker_id}-heartbeat", daemon=True)
        self.worker_id = worker_id
        self.send = send
        self.interval = interval
        self.stop = threading.Event()

    def run(self) -> None:
        while not self.stop.wait(self.interval):
            try:
                self.send({"type": "heartbeat", "worker": self.worker_id})
            except OSError:
                return  # coordinator is gone; process will exit shortly


def worker_main(worker_id: int, config_payload: dict, conn) -> None:
    """Entry point of one spawned shard worker (see module docstring)."""
    config = ClusterConfig.from_dict(config_payload)
    send_lock = threading.Lock()

    def send(message: dict) -> None:
        with send_lock:
            conn.send(message)

    heartbeat = _Heartbeat(worker_id, send, config.heartbeat_interval)
    heartbeat.start()

    benchmark, pipeline = build_worker_pipeline(config)
    example_index = {
        example.question_id: example
        for split in ("train", "dev", "test")
        for example in benchmark.split(split)
    }
    opener = None
    if config.storage:
        plan = StorageFaultPlan.from_dict(config.storage)
        seed = config.storage.get("seed", config.seed)
        opener = FaultyStorage(plan, seed=seed).opener

    def on_storage_error(exc: OSError) -> None:
        # Brownout is degraded-not-dead: tell the coordinator and keep
        # serving from memory.
        send(
            {
                "type": "storage",
                "worker": worker_id,
                "event": "journal_disabled",
                "reason": f"{type(exc).__name__}: {exc}",
            }
        )

    segment_path = config.segment_path(worker_id)
    try:
        journal = ServingJournal(
            segment_path, opener=opener, on_storage_error=on_storage_error
        )
    except JournalCorruptionError as exc:
        # A restarted worker must not die on a segment its previous life
        # corrupted: quarantine the damaged file (evidence preserved)
        # and start a fresh segment — recovery re-runs what it lost.
        quarantined = segment_path.with_name(segment_path.name + ".corrupt")
        segment_path.replace(quarantined)
        send(
            {
                "type": "storage",
                "worker": worker_id,
                "event": "segment_quarantined",
                "reason": str(exc),
            }
        )
        journal = ServingJournal(
            segment_path, opener=opener, on_storage_error=on_storage_error
        )
    journal.write_header(config.header_config(worker_id))
    metrics = MetricsRegistry()
    engine = ServingEngine(
        pipeline,
        workers=config.engine_workers,
        queue_capacity=config.queue_capacity,
        result_cache_size=config.result_cache_size,
        extraction_cache_size=config.extraction_cache_size,
        fewshot_cache_size=config.fewshot_cache_size,
        journal=journal,
        metrics=metrics,
    )
    registry = None
    if config.livedata:
        from repro.livedata.epoch import EpochRegistry

        # The epoch-versioned catalog: commit records get schema_epoch
        # stamps, cache keys become epoch-scoped, and the pre-execute
        # guard turns catalog races into typed retries.  A resumed
        # cluster adopts the coordinator's epoch snapshot — a worker
        # restarting its counters at 0 would stamp lies.
        registry = EpochRegistry()
        for db_id, epoch in sorted(config.schema_epochs.items()):
            registry.advance(db_id, int(epoch))
        engine.attach_livedata(registry)
    warmed = warm_engine_from_segment(engine, journal, example_index)
    send({"type": "ready", "worker": worker_id, "warmed": warmed})

    from repro.serving.cluster.config import example_from_wire

    def _respond(seq: int):
        def callback(future) -> None:
            record = journal.committed(seq)
            if record is None:
                # the engine rejected before accepting (should not happen
                # under cluster admission settings) — fail typed, not silent
                error = "request finished without a journal commit"
                exc = future.exception()
                if exc is not None:
                    error = f"{type(exc).__name__}: {exc}"
                send(
                    {
                        "type": "error",
                        "worker": worker_id,
                        "seq": seq,
                        "error": error,
                    }
                )
                return
            send(
                {
                    "type": "result",
                    "worker": worker_id,
                    "seq": seq,
                    "record": record,
                }
            )

        return callback

    def _shutdown_payload() -> dict:
        return {
            "type": "stats",
            "worker": worker_id,
            "serving": engine.stats().to_dict(),
            "health": engine.health.snapshot(),
            "metrics": metrics.snapshot(),
            "journal": journal.stats_dict(),
            "traces": [trace.structure() for trace in engine.traces()],
        }

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # coordinator died; exit without draining
            kind = message.get("type")
            if kind == "request":
                example = example_from_wire(message["example"])
                try:
                    future = engine.submit(
                        example,
                        block=True,
                        seq=message["seq"],
                        deadline_seconds=message.get("deadline_seconds"),
                    )
                except Exception as exc:  # noqa: BLE001 — typed reject path
                    send(
                        {
                            "type": "error",
                            "worker": worker_id,
                            "seq": message["seq"],
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    )
                    continue
                future.add_done_callback(_respond(message["seq"]))
            elif kind == "invalidate":
                # Cluster-wide invalidation: the coordinator observed a
                # database mutation and broadcasts the new epoch.  The
                # local registry adopts it (monotone — replays no-op),
                # then every cache tier keyed by the db is dropped; the
                # next request re-derives against the new catalog.
                db_id = message["db_id"]
                epoch = message.get("epoch")
                if registry is not None and epoch is not None:
                    registry.advance(db_id, int(epoch))
                dropped = engine.invalidate_db(db_id)
                send(
                    {
                        "type": "invalidated",
                        "worker": worker_id,
                        "db_id": db_id,
                        "epoch": epoch,
                        "dropped": dropped,
                    }
                )
            elif kind == "adopt":
                try:
                    adopted = ServingJournal(message["segment"])
                    count = warm_engine_from_segment(
                        engine, adopted, example_index
                    )
                except (JournalCorruptionError, OSError):
                    # a dead peer's segment may be damaged — adopting
                    # zero records is degraded, dying over it is worse
                    count = 0
                send(
                    {
                        "type": "adopted",
                        "worker": worker_id,
                        "segment": message["segment"],
                        "warmed": count,
                    }
                )
            elif kind == "shutdown":
                engine.shutdown(drain=True)
                send(_shutdown_payload())
                break
    finally:
        heartbeat.stop.set()
        try:
            conn.close()
        except OSError:
            pass
