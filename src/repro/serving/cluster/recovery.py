"""Per-shard journal recovery: discover segments, replay as one run.

A cluster run journals into ``<dir>/journal-shard-K.jsonl``, one segment
per worker.  After a crash (or a clean run), recovery must see the run as
a *single* journal again: :func:`discover_segments` finds every segment
in a directory and :class:`ShardedJournalView` merges them behind the
exact duck-type :func:`~repro.serving.journal.recover_run` already
consumes — ``committed(seq)`` reads resolve against whichever segment
holds the seq, while ``accept``/``commit`` writes for re-run requests are
routed by the consistent-hash ring to the segment that owns the request's
``db_id`` (so a second recovery of the same directory finds them where it
expects them).

The view also asserts the cluster's conservation invariant on load: a
seq committed in *two* segments means a request was double-served — the
one failure mode supervision must never produce — and raises rather than
silently picking one.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Union

from repro.datasets.types import Example
from repro.serving.cluster.config import SEGMENT_PREFIX
from repro.serving.cluster.ring import DEFAULT_VNODES, HashRing
from repro.serving.journal import ServingJournal

__all__ = ["discover_segments", "ShardedJournalView", "DoubleServeError"]

_SEGMENT_RE = re.compile(re.escape(SEGMENT_PREFIX) + r"(\d+)\.jsonl$")


class DoubleServeError(RuntimeError):
    """The same seq was committed by two shards — conservation violated."""

    def __init__(self, seq: int, shards: tuple[int, int]):
        super().__init__(
            f"seq {seq} committed by shard {shards[0]} and shard {shards[1]}; "
            "a request was double-served"
        )
        self.seq = seq
        self.shards = shards


def discover_segments(directory: Union[str, Path]) -> dict[int, Path]:
    """Map shard id → segment path for every segment in ``directory``."""
    directory = Path(directory)
    segments: dict[int, Path] = {}
    for path in directory.iterdir():
        match = _SEGMENT_RE.fullmatch(path.name)
        if match:
            segments[int(match.group(1))] = path
    return segments


class ShardedJournalView:
    """N shard segments presented as one ``ServingJournal``-shaped run.

    Reads merge: ``committed(seq)`` answers from whichever segment holds
    the commit, ``pending()`` is the union of accepted-but-uncommitted
    seqs minus anything *any* segment committed (a request accepted by a
    worker that died and re-served by a survivor is not pending).  Writes
    route: re-run requests journal into the segment owning their
    ``db_id`` on the rebuilt consistent-hash ring — falling back to the
    segment that originally *accepted* the seq when the accepting shard
    is known (keeps a request's whole history in one segment).
    """

    def __init__(self, directory: Union[str, Path], opener=None):
        self.directory = Path(directory)
        found = discover_segments(self.directory)
        if not found:
            raise FileNotFoundError(
                f"no {SEGMENT_PREFIX}*.jsonl segments in {self.directory}"
            )
        # A corrupt segment raises the journal's typed
        # JournalCorruptionError here — merged recovery must report the
        # damaged shard, not silently replay around it.
        self.segments: dict[int, ServingJournal] = {
            shard: ServingJournal(path, opener=opener)
            for shard, path in sorted(found.items())
        }
        #: seq → shard holding its commit
        self._commit_owner: dict[int, int] = {}
        #: seq → shard that accepted it (last writer wins on re-accepts)
        self._accept_owner: dict[int, int] = {}
        for shard, journal in self.segments.items():
            for seq in journal.committed_seqs():
                prior = self._commit_owner.get(seq)
                if prior is not None:
                    raise DoubleServeError(seq, (prior, shard))
                self._commit_owner[seq] = shard
            for seq in journal.accepted_seqs():
                self._accept_owner.setdefault(seq, shard)
        # Rebuild the placement ring the coordinator used.  Segments on
        # disk define membership: every shard that journaled anything is
        # a valid write target for re-runs.
        vnodes = next(
            (
                journal.config["ring_vnodes"]
                for journal in self.segments.values()
                if "ring_vnodes" in journal.config
            ),
            DEFAULT_VNODES,
        )
        self.ring = HashRing(self.segments, vnodes=vnodes)

    # ------------------------------------------------ ServingJournal duck-type

    @property
    def config(self) -> dict:
        """The shared header config (per-shard ``shard`` key dropped)."""
        for journal in self.segments.values():
            if journal.config:
                merged = dict(journal.config)
                merged.pop("shard", None)
                return merged
        return {}

    def committed(self, seq: int) -> Optional[dict]:
        shard = self._commit_owner.get(seq)
        if shard is None:
            return None
        return self.segments[shard].committed(seq)

    def accept(self, example: Example, seq: Optional[int] = None) -> int:
        shard = self._route(example, seq)
        seq = self.segments[shard].accept(example, seq=seq)
        self._accept_owner[seq] = shard
        return seq

    def commit(self, seq: int, status: str, result=None, error=None) -> None:
        shard = self._accept_owner.get(seq)
        if shard is None:
            raise KeyError(f"seq {seq} was never accepted in any segment")
        self.segments[shard].commit(seq, status, result=result, error=error)
        self._commit_owner[seq] = shard

    def pending(self) -> list[int]:
        accepted = set(self._accept_owner)
        return sorted(accepted - set(self._commit_owner))

    def committed_seqs(self) -> list[int]:
        return sorted(self._commit_owner)

    def accepted_seqs(self) -> list[int]:
        return sorted(self._accept_owner)

    def __len__(self) -> int:
        return len(self._commit_owner)

    def seal(self) -> None:
        """Seal every segment — recovery's clean-completion mark."""
        for journal in self.segments.values():
            journal.seal()

    # ----------------------------------------------------------- accounting

    def _route(self, example: Example, seq: Optional[int]) -> int:
        if seq is not None and seq in self._accept_owner:
            return self._accept_owner[seq]
        owner = self.ring.lookup(example.db_id)
        assert owner is not None  # segments is never empty (ctor raises)
        return owner

    def committed_by_shard(self) -> dict[int, int]:
        """Commit counts per shard (conservation accounting)."""
        counts = {shard: 0 for shard in self.segments}
        for shard in self._commit_owner.values():
            counts[shard] += 1
        return counts

    def stats_dict(self) -> dict:
        return {
            "directory": str(self.directory),
            "segments": {
                shard: journal.stats_dict()
                for shard, journal in self.segments.items()
            },
            "accepted": len(self._accept_owner),
            "committed": len(self._commit_owner),
            "pending": len(self.pending()),
        }
