"""Cluster configuration and the JSON wire codec shared by both sides.

Workers run in *spawned* processes: nothing is inherited, so everything a
worker needs to rebuild its half of the system — benchmark, model skill,
pipeline seeds, engine sizing, journal segment location — must cross the
process boundary as plain JSON-ready data.  :class:`ClusterConfig` is
that contract; :func:`example_to_wire` / :func:`example_from_wire` carry
individual requests the same way (no pickled live objects).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from repro.datasets.types import Example, ValueMention

__all__ = [
    "ClusterConfig",
    "SEGMENT_PREFIX",
    "segment_name",
    "resolve_benchmark",
    "build_worker_pipeline",
    "example_to_wire",
    "example_from_wire",
]

#: journal segment filename stem; shard K journals to
#: ``<journal_dir>/journal-shard-K.jsonl``
SEGMENT_PREFIX = "journal-shard-"


def segment_name(shard: int) -> str:
    """Filename of shard ``shard``'s journal segment."""
    return f"{SEGMENT_PREFIX}{shard}.jsonl"


@dataclass
class ClusterConfig:
    """Everything a coordinator and its workers agree on up front."""

    #: number of worker processes / journal segments
    shards: int = 2
    #: benchmark name workers rebuild ("bird", "spider", "cluster-smoke")
    benchmark: str = "bird"
    model: str = "gpt-4o"
    candidates: int = 21
    seed: int = 0
    #: journal directory; each shard appends to its own segment inside it
    journal_dir: str = ""
    #: virtual nodes per shard on the consistent-hash ring
    ring_vnodes: int = 128
    #: threads inside each worker's ServingEngine; 1 keeps per-shard
    #: processing serial, which the byte-identical recovery cert relies on
    engine_workers: int = 1
    queue_capacity: int = 4096
    result_cache_size: int = 512
    extraction_cache_size: int = 1024
    fewshot_cache_size: int = 1024
    #: end-to-end deadline per request in seconds (None = unbounded);
    #: the coordinator subtracts queue time before forwarding, so the
    #: budget spans the process boundary
    deadline_seconds: Optional[float] = None
    #: worker → coordinator heartbeat period (seconds)
    heartbeat_interval: float = 0.2
    #: missing heartbeats for this long marks a worker dead even if its
    #: process object still reports alive (hung-worker detection)
    heartbeat_timeout: float = 10.0
    #: restarts allowed per worker before its death is permanent
    restart_budget: int = 1
    #: restart delay: backoff_base * 2**restarts_used seconds
    backoff_base: float = 0.05
    #: times one request may be re-routed after shard deaths before the
    #: typed ShardUnavailableError escapes to the caller
    max_reroutes: int = 2
    #: wall-clock ceiling for one request end to end (safety net so a
    #: supervision bug degrades to a typed failure, never a hang)
    request_timeout: float = 120.0
    #: route requests through FAST/FULL/HEAVY cost tiers inside every
    #: worker; the router is deterministic by seed, so each shard routes
    #: its partition exactly as a single process would
    routing: bool = False
    #: RoutingConfig overrides as a plain dict (JSON wire format)
    routing_config: dict = field(default_factory=dict)
    #: extra header fields journaled per segment (the CLI records the
    #: workload parameters here so ``repro recover`` can rebuild the run)
    header: dict = field(default_factory=dict)
    #: storage fault-injection plan for each worker's journal segment
    #: (:class:`repro.storage.StorageFaultPlan` fields, plus an optional
    #: ``seed``); empty dict = real, fault-free filesystem
    storage: dict = field(default_factory=dict)
    #: live-mutation support: each worker attaches an epoch-versioned
    #: catalog (:class:`~repro.livedata.epoch.EpochRegistry`) so commit
    #: records carry ``schema_epoch`` stamps and ``invalidate``
    #: broadcasts from the coordinator drop + re-pin cached state
    livedata: bool = False
    #: starting ``{db_id: schema_epoch}`` snapshot workers adopt on
    #: spawn (a cluster resumed after mutations must not restart its
    #: epoch counters at 0 — commit stamps would lie); journaled in
    #: every segment header so ``repro recover`` sees the catalog
    #: generation the run was serving
    schema_epochs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if not self.journal_dir:
            raise ValueError("cluster serving requires a journal_dir")
        if self.restart_budget < 0:
            raise ValueError("restart_budget must be >= 0")

    def segment_path(self, shard: int) -> Path:
        return Path(self.journal_dir) / segment_name(shard)

    def header_config(self, shard: int) -> dict:
        """The header record shard ``shard`` writes to its segment."""
        header = {
            "benchmark": self.benchmark,
            "model": self.model,
            "skill_profile": self.model,
            "candidates": self.candidates,
            "seed": self.seed,
            "result_cache_size": self.result_cache_size,
            "shards": self.shards,
            "ring_vnodes": self.ring_vnodes,
            "shard": shard,
        }
        if self.routing:
            header["routing"] = True
            header["routing_config"] = dict(self.routing_config)
        if self.livedata:
            header["livedata"] = True
            header["schema_epochs"] = dict(self.schema_epochs)
        header.update(self.header)
        return header

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterConfig":
        return cls(**payload)


def resolve_benchmark(name: str):
    """Build the named benchmark inside a worker process.

    ``"cluster-smoke"`` is a deterministic five-domain profile (~0.5 s to
    build, five distinct ``db_id``s) used by the cluster test-suite so
    spawned workers do not pay the full BIRD build on every test.
    """
    if name == "bird":
        from repro.datasets.bird import build_bird_like

        return build_bird_like()
    if name == "spider":
        from repro.datasets.spider import build_spider_like

        return build_spider_like()
    if name == "cluster-smoke":
        from repro.datasets.build import build_benchmark
        from repro.datasets.domains.finance import DOMAIN as FINANCE
        from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
        from repro.datasets.domains.hockey import DOMAIN as HOCKEY
        from repro.datasets.domains.music import DOMAIN as MUSIC
        from repro.datasets.domains.retail import DOMAIN as RETAIL

        return build_benchmark(
            name="cluster-smoke",
            domains=[HEALTHCARE, HOCKEY, FINANCE, MUSIC, RETAIL],
            per_template_train=2,
            per_template_dev=1,
            per_template_test=1,
            seed=3,
        )
    raise ValueError(f"unknown benchmark {name!r}")


def build_worker_pipeline(config: ClusterConfig):
    """(benchmark, pipeline) for one worker, from config alone."""
    from repro.core.config import PipelineConfig
    from repro.core.pipeline import OpenSearchSQL
    from repro.llm.simulated import SimulatedLLM
    from repro.llm.skills import skill_by_name

    benchmark = resolve_benchmark(config.benchmark)
    llm = SimulatedLLM(skill_by_name(config.model), seed=config.seed)
    pipeline = OpenSearchSQL(
        benchmark,
        llm,
        PipelineConfig(n_candidates=config.candidates, seed=config.seed),
    )
    if config.routing:
        from repro.routing import RoutingConfig, TieredPipeline

        # Router state is per-shard but deterministic by seed: every
        # worker (and a recovery process) routes any given request to the
        # same tier, so a rebalanced or recovered cluster stays
        # tier-faithful.
        pipeline = TieredPipeline(
            pipeline, RoutingConfig.from_dict(config.routing_config)
        )
    return benchmark, pipeline


# ------------------------------------------------------------- wire codec


def example_to_wire(example: Example) -> dict:
    """One Example as a JSON-ready dict (tuples become lists)."""
    payload = asdict(example)
    payload["traits"] = list(example.traits)
    payload["value_mentions"] = [asdict(m) for m in example.value_mentions]
    return payload


def example_from_wire(payload: dict) -> Example:
    """Rebuild an Example from :func:`example_to_wire` output."""
    fields = dict(payload)
    fields["traits"] = tuple(fields.get("traits", ()))
    fields["value_mentions"] = tuple(
        ValueMention(**mention) for mention in fields.get("value_mentions", ())
    )
    return Example(**fields)
