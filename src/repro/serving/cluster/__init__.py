"""Sharded multi-process serving: ring placement, supervised workers,
per-shard journal recovery.

See :mod:`repro.serving.cluster.coordinator` for the supervision model,
:mod:`repro.serving.cluster.ring` for placement, and
:mod:`repro.serving.cluster.recovery` for directory-level replay.
"""

from repro.serving.cluster.config import (
    SEGMENT_PREFIX,
    ClusterConfig,
    example_from_wire,
    example_to_wire,
    segment_name,
)
from repro.serving.cluster.coordinator import (
    ClusterStats,
    ShardCoordinator,
    ShardUnavailableError,
)
from repro.serving.cluster.recovery import (
    DoubleServeError,
    ShardedJournalView,
    discover_segments,
)
from repro.serving.cluster.ring import DEFAULT_VNODES, HashRing

__all__ = [
    "ClusterConfig",
    "ClusterStats",
    "DEFAULT_VNODES",
    "DoubleServeError",
    "HashRing",
    "SEGMENT_PREFIX",
    "ShardCoordinator",
    "ShardUnavailableError",
    "ShardedJournalView",
    "discover_segments",
    "example_from_wire",
    "example_to_wire",
    "segment_name",
]
