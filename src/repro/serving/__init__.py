"""Serving layer: concurrent request execution with multi-tier caching,
admission control and latency accounting.

The ROADMAP's north star is a system that serves heavy traffic; this
package is the subsystem where requests share state.  It provides

* :class:`ServingEngine` — bounded thread-pool execution of
  ``OpenSearchSQL.answer`` behind an :class:`AdmissionController`
  (shed / circuit-open / budget rejections) and three cache tiers
  (exact-match result, extraction, few-shot retrieval);
* :class:`LRUCache` — the thread-safe LRU + TTL primitive every bounded
  map in the codebase shares, with hit/miss/eviction stats and
  per-database invalidation;
* :class:`GoldResultCache` — the lock-protected gold-execution cache both
  evaluation runners and the serving bench reuse;
* :class:`ServingStats` / :class:`LatencySummary` — per-request latency
  (real wall + simulated model seconds) aggregated into p50/p95/p99 and
  virtual-clock throughput;
* :class:`HedgedExecutor` — one-backup hedging over SQL execution that
  recovers transient database faults and slow-query tails;
* :class:`HealthMonitor` — windowed per-component health plus probes,
  rolled into the snapshot a readiness endpoint would serve.

Per-request deadlines (``ServingEngine(deadline_seconds=...)``) bound each
request in virtual time; exhaustion degrades the answer with a typed
``DEADLINE_EXCEEDED`` event instead of failing it, and graceful drain
(``shutdown(drain=True)``) finishes in-flight work while rejecting new
submissions with :class:`DrainingError`.
"""

from repro.caching import (
    CacheStats,
    GoldResultCache,
    LRUCache,
    normalize_question,
)
from repro.serving.admission import (
    AdmissionController,
    AdmissionError,
    DrainingError,
    QueueFullError,
)
from repro.serving.engine import (
    CachingExtractor,
    CachingFewShotLibrary,
    ServingEngine,
)
from repro.serving.health import HealthMonitor
from repro.serving.hedging import HedgedExecutor, HedgeStats
from repro.serving.latency import LatencySummary, percentile
from repro.serving.stats import RequestRecord, ServingStats
from repro.serving.workload import zipf_weights, zipf_workload

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "CacheStats",
    "CachingExtractor",
    "CachingFewShotLibrary",
    "DrainingError",
    "GoldResultCache",
    "HealthMonitor",
    "HedgeStats",
    "HedgedExecutor",
    "LRUCache",
    "LatencySummary",
    "QueueFullError",
    "RequestRecord",
    "ServingEngine",
    "ServingStats",
    "normalize_question",
    "percentile",
    "zipf_weights",
    "zipf_workload",
]
