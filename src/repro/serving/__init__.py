"""Serving layer: concurrent request execution with multi-tier caching,
admission control and latency accounting.

The ROADMAP's north star is a system that serves heavy traffic; this
package is the subsystem where requests share state.  It provides

* :class:`ServingEngine` — bounded thread-pool execution of
  ``OpenSearchSQL.answer`` behind an :class:`AdmissionController`
  (shed / circuit-open / budget rejections) and three cache tiers
  (exact-match result, extraction, few-shot retrieval);
* :class:`AsyncServingEngine` — the asyncio hot path over the same
  layers: single-flight dedup of identical in-flight requests (followers
  are journaled ``"coalesced"`` and charged zero LLM cost) and a
  :class:`MicroBatcher` merging same-stage LLM calls across concurrent
  requests into one batched backend invocation;
* :class:`LRUCache` — the thread-safe LRU + TTL primitive every bounded
  map in the codebase shares, with hit/miss/eviction stats and
  per-database invalidation;
* :class:`GoldResultCache` — the lock-protected gold-execution cache both
  evaluation runners and the serving bench reuse;
* :class:`ServingStats` / :class:`LatencySummary` — per-request latency
  (real wall + simulated model seconds) aggregated into p50/p95/p99 and
  virtual-clock throughput;
* :class:`HedgedExecutor` — one-backup hedging over SQL execution that
  recovers transient database faults and slow-query tails;
* :class:`HealthMonitor` — windowed per-component health plus probes,
  rolled into the snapshot a readiness endpoint would serve;
* :class:`BackendPool` — N replicated LLM backends behind one client,
  health-score routed with sticky-with-decay primary selection, automatic
  failover and optional shadow comparison calls;
* :class:`BulkheadRegistry` — per-database bounded sub-pools, independent
  breaker state per ``db_id`` and a poison-pill quarantine for
  (db_id, question) keys that crash repeatedly;
* :class:`ServingJournal` — durable write-ahead JSONL of accepted /
  committed requests with torn-line tolerance; :func:`recover_run`
  replays a killed run to completion exactly once per request;
* :class:`ShardCoordinator` — N supervised worker *processes* behind a
  consistent-hash :class:`HashRing` over ``db_id``s, each with its own
  engine, bulkheads, backends and journal segment; heartbeat death
  detection, budgeted restarts with exponential backoff, ring rebalance
  on permanent death (typed :class:`ShardUnavailableError` sheds), and
  :class:`ShardedJournalView` replaying a whole segment directory as one
  run.

Per-request deadlines (``ServingEngine(deadline_seconds=...)``) bound each
request in virtual time; exhaustion degrades the answer with a typed
``DEADLINE_EXCEEDED`` event instead of failing it, and graceful drain
(``shutdown(drain=True)``) finishes in-flight work while rejecting new
submissions with :class:`DrainingError`.
"""

from repro.caching import (
    CacheStats,
    GoldResultCache,
    LRUCache,
    normalize_question,
)
from repro.serving.aio import (
    AsyncServingEngine,
    AsyncServingStats,
    BatchingLLM,
    MicroBatcher,
    SingleFlight,
)
from repro.serving.admission import (
    DEFAULT_HEALTH_SHED,
    AdmissionController,
    AdmissionError,
    DrainingError,
    HealthShedError,
    QueueFullError,
)
from repro.serving.backends import (
    AllBackendsFailedError,
    BackendPool,
    BackendPoolStats,
)
from repro.serving.bulkhead import (
    BulkheadFullError,
    BulkheadRegistry,
    DbCircuitOpenError,
    QuarantinedError,
)
from repro.serving.cluster import (
    ClusterConfig,
    ClusterStats,
    DoubleServeError,
    HashRing,
    ShardCoordinator,
    ShardUnavailableError,
    ShardedJournalView,
    discover_segments,
)
from repro.serving.engine import (
    CachingExtractor,
    CachingFewShotLibrary,
    ServingEngine,
)
from repro.serving.journal import (
    JournalCorruptionError,
    JournalVersionError,
    ServingJournal,
    assemble_report,
    recover_run,
)
from repro.serving.health import HealthMonitor
from repro.serving.hedging import HedgedExecutor, HedgeStats
from repro.serving.latency import LatencySummary, percentile
from repro.serving.stats import RequestRecord, ServingStats
from repro.serving.workload import zipf_weights, zipf_workload

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AllBackendsFailedError",
    "AsyncServingEngine",
    "AsyncServingStats",
    "BackendPool",
    "BackendPoolStats",
    "BatchingLLM",
    "MicroBatcher",
    "SingleFlight",
    "BulkheadFullError",
    "BulkheadRegistry",
    "CacheStats",
    "CachingExtractor",
    "CachingFewShotLibrary",
    "ClusterConfig",
    "ClusterStats",
    "DoubleServeError",
    "JournalCorruptionError",
    "JournalVersionError",
    "HashRing",
    "DEFAULT_HEALTH_SHED",
    "DbCircuitOpenError",
    "DrainingError",
    "GoldResultCache",
    "HealthMonitor",
    "HealthShedError",
    "HedgeStats",
    "HedgedExecutor",
    "LRUCache",
    "LatencySummary",
    "QuarantinedError",
    "QueueFullError",
    "RequestRecord",
    "ServingEngine",
    "ServingJournal",
    "ServingStats",
    "ShardCoordinator",
    "ShardUnavailableError",
    "ShardedJournalView",
    "assemble_report",
    "discover_segments",
    "normalize_question",
    "percentile",
    "recover_run",
    "zipf_weights",
    "zipf_workload",
]
