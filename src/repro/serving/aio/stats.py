"""Async-engine accounting: ServingStats plus coalescing/batching counters.

The async engine's makespan is the **backend-busy clock**: the sum of
the charged virtual seconds of every batched backend invocation.  One
shared backend serves all concurrent requests (the continuous-batching
model), so throughput is ``completed / backend_busy`` — directly
comparable to the threaded engine's busiest-worker makespan, and what
``bench_async`` certifies against it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.stats import ServingStats

__all__ = ["AsyncServingStats"]


@dataclass
class AsyncServingStats(ServingStats):
    """One async serving run's accounting."""

    #: follower requests served from an in-flight leader (zero LLM cost)
    coalesced: int = 0
    #: LLM calls parked at the micro-batcher
    llm_calls: int = 0
    #: backend invocations issued (each covers one wave group)
    flushes: int = 0
    #: invocations that covered ≥ 2 member calls
    batched_calls: int = 0
    max_batch: int = 0
    mean_batch: float = 0.0
    #: Σ charged virtual seconds over all backend invocations — the
    #: async makespan (``makespan_seconds`` is set to this)
    backend_busy_seconds: float = 0.0
    #: waves closed by the wall-clock liveness backstop instead of the
    #: all-runners-parked barrier (should be 0 in a healthy run)
    safety_timeouts: int = 0

    @property
    def coalesced_fraction(self) -> float:
        """Coalesced followers / completed requests."""
        return self.coalesced / self.completed if self.completed else 0.0

    def to_dict(self) -> dict:
        payload = super().to_dict()
        payload["async"] = {
            "coalesced": self.coalesced,
            "coalesced_fraction": round(self.coalesced_fraction, 4),
            "llm_calls": self.llm_calls,
            "flushes": self.flushes,
            "batched_calls": self.batched_calls,
            "max_batch": self.max_batch,
            "mean_batch": self.mean_batch,
            "backend_busy_seconds": round(self.backend_busy_seconds, 4),
            "safety_timeouts": self.safety_timeouts,
        }
        return payload

    def format(self) -> str:
        return super().format() + (
            f"\nasync       : {self.coalesced} coalesced"
            f" / {self.batched_calls} batched calls"
            f" / max batch {self.max_batch}"
            f" / backend busy {self.backend_busy_seconds:.1f}s"
        )
