"""Single-flight request coalescing for the async serving path.

When several identical requests — same tier-aware result-cache key
``(db_id, normalized question[, tier])`` — are in flight at once, only
the first (the **leader**) runs the pipeline.  Every later arrival (a
**follower**) parks on the leader's future and is served the same
result at zero LLM cost.  Followers are still first-class requests:
they get their own journal seq (committed ``"coalesced"``), their own
trace, and their own stats record.

The registry is event-loop-confined: ``begin``/``finish`` run on the
loop thread with no awaits in between, so membership decisions are
atomic without locks.  Resolution semantics live in the engine — the
registry only tracks who leads and hands followers the future to await.

Two deliberate asymmetries with the result cache:

* a flight resolved by a **deadline-truncated** answer is not published
  to followers (:data:`RUN_SELF` is set instead and each follower runs
  the pipeline itself), mirroring the cache rule that degraded answers
  are never served to later requests;
* ``invalidate`` (db content changed mid-flight) detaches the key *and*
  **dooms** the flight: new arrivals lead fresh, and already-parked
  followers must not receive the leader's pre-invalidation answer — the
  leader publishes :data:`RUN_SELF` to a doomed flight, so each
  follower re-runs against the mutated content.  (A cache hit returned
  *before* the invalidation stays returned; a parked follower has not
  been answered yet, so it must see the new world.)
"""

from __future__ import annotations

import asyncio
from typing import Callable, Hashable, Optional

__all__ = ["Flight", "SingleFlight", "RUN_SELF"]

#: Sentinel a leader publishes instead of a result when its answer must
#: not be shared (deadline-truncated): each follower, on seeing it,
#: runs the pipeline itself.
RUN_SELF = object()


class Flight:
    """One in-flight leader and the followers coalesced onto it."""

    __slots__ = ("key", "future", "followers", "doomed")

    def __init__(self, key: Hashable, future: "asyncio.Future"):
        self.key = key
        self.future = future
        self.followers = 0
        #: set by :meth:`SingleFlight.invalidate` — the content this
        #: flight computed against changed mid-flight, so its answer
        #: must not be shared (leader publishes RUN_SELF instead)
        self.doomed = False


class SingleFlight:
    """Loop-confined registry of in-flight requests by dedup key."""

    def __init__(self, future_factory: Optional[Callable[[], "asyncio.Future"]] = None):
        self._flights: dict[Hashable, Flight] = {}
        self._future_factory = future_factory
        self.coalesced_total = 0

    def begin(self, key: Hashable) -> tuple[Flight, bool]:
        """Join (or open) the flight for ``key``.

        Returns ``(flight, is_leader)``.  The first caller for a key
        leads; every subsequent caller is counted as a follower until
        the leader calls :meth:`finish`.
        """
        flight = self._flights.get(key)
        if flight is None:
            factory = self._future_factory
            future = (
                factory() if factory is not None
                else asyncio.get_running_loop().create_future()
            )
            flight = Flight(key, future)
            self._flights[key] = flight
            return flight, True
        flight.followers += 1
        self.coalesced_total += 1
        return flight, False

    def finish(self, flight: Flight) -> None:
        """Detach a completed flight so new arrivals lead fresh.

        Call *before* resolving ``flight.future`` (same loop step), so
        there is no window where an arrival can join a resolved flight.
        A flight displaced by :meth:`invalidate` is left alone.
        """
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Detach and doom every in-flight key matching ``predicate``.

        The db-prefix counterpart of the cache tiers' ``invalidate_db``:
        after a database changes, new arrivals for its questions must
        not coalesce onto results computed against the old content, and
        parked followers must not be *served* that content either — the
        flight is marked ``doomed``, which makes its leader publish
        :data:`RUN_SELF` so every follower re-runs the pipeline against
        the new content.  Returns the number of flights detached.
        """
        victims = [key for key in self._flights if predicate(key)]
        for key in victims:
            self._flights[key].doomed = True
            del self._flights[key]
        return len(victims)

    def inflight(self) -> int:
        """Number of distinct keys currently in flight."""
        return len(self._flights)
