"""Async serving core: single-flight coalescing + micro-batched LLM calls.

See :mod:`repro.serving.aio.engine` for the architecture notes and
``DESIGN.md`` ("Async core & coalescing") for the dedup key, batching
window, and replay semantics.
"""

from repro.serving.aio.batcher import BatchingLLM, MicroBatcher, stage_of
from repro.serving.aio.engine import AsyncServingEngine
from repro.serving.aio.singleflight import RUN_SELF, Flight, SingleFlight
from repro.serving.aio.stats import AsyncServingStats

__all__ = [
    "AsyncServingEngine",
    "AsyncServingStats",
    "BatchingLLM",
    "Flight",
    "MicroBatcher",
    "RUN_SELF",
    "SingleFlight",
    "stage_of",
]
