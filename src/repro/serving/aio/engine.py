"""The async serving engine: single-flight coalescing + micro-batching.

``AsyncServingEngine`` keeps every layer of the threaded
:class:`~repro.serving.engine.ServingEngine` — admission, bulkheads,
cache tiers, deadlines, hedging, journal, traces, metrics — and rebuilds
the hot path on asyncio:

1. **Registration phase** (event-loop thread, workload order): every
   request runs its synchronous prologue — bulkhead acquire, admission,
   journal ``accept``, result-cache probe, single-flight ``begin`` —
   before any pipeline work completes.  This makes leader/follower
   assignment a pure function of the workload: on a cold run exactly one
   leader per distinct key, every repeat a follower.  Deterministic
   coalescing is what lets CI diff two runs byte-for-byte.
2. **Leaders** run the pipeline on a thread pool (the event loop stays
   free); their LLM calls park at the :class:`MicroBatcher`, which
   batches same-stage calls across all concurrent leaders into single
   backend invocations.  Extraction/retrieval compute of one request
   overlaps the (virtual) decode waits of the others at those
   rendezvous points.
3. **Followers** await the leader's future (shielded, so one follower's
   cancellation cannot poison the flight), then commit ``"coalesced"``
   to the journal — zero payload, zero cost — which ``recover_run``
   replays exactly like a result-tier hit.

Replay semantics: a follower's seq is always greater than its leader's
(registration order), so serial recovery commits the leader's ``"ok"``
— warming the recovery cache — before any of its followers replay.
Edge rules mirror the cache tiers: a **deadline-truncated** leader
answer is never shared (followers each run the pipeline themselves and
commit their own outcome); a **failed** leader fails its followers with
the same error string, which a fresh recovery re-derives identically.

Virtual accounting: the async makespan is the backend-busy clock — the
sum of charged seconds over all batched invocations — because one
continuously-batching backend serves every concurrent request.  The
threaded engine's makespan is its busiest worker's virtual clock; the
two are directly comparable and ``bench_async`` certifies the ratio.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from repro.core.pipeline import PipelineResult
from repro.datasets.types import Example
from repro.observability.context import add_event
from repro.observability.trace import Trace
from repro.reliability.deadline import Deadline
from repro.reliability.faults import BudgetExceededError, CircuitOpenError
from repro.caching import normalize_question, result_cache_key
from repro.serving.admission import AdmissionError
from repro.serving.bulkhead import (
    BulkheadFullError,
    DbCircuitOpenError,
    QuarantinedError,
)
from repro.serving.engine import ServingEngine
from repro.serving.stats import ServingStats
from repro.serving.aio.batcher import BatchingLLM, MicroBatcher
from repro.serving.aio.singleflight import RUN_SELF, SingleFlight
from repro.serving.aio.stats import AsyncServingStats

__all__ = ["AsyncServingEngine"]


class _Ctx:
    """Per-request registration outcome carried into the async phase."""

    __slots__ = (
        "example", "seq", "start", "budget", "key", "trace",
        "role", "flight", "result", "deadline",
    )

    def __init__(self, example):
        self.example = example
        self.seq = None
        self.start = 0.0
        self.budget = None
        self.key = None
        self.trace = None
        self.role = None  # "lead" | "follow" | "cached"
        self.flight = None
        self.result = None
        self.deadline = None


class AsyncServingEngine(ServingEngine):
    """Coalescing, micro-batching asyncio front end for a pipeline.

    Accepts every :class:`ServingEngine` parameter plus the batching
    knobs.  The wrapped pipeline's LLM transports are rerouted through
    the micro-batcher at construction (before the cache tiers wrap the
    stage objects), so a pipeline handed to this engine must not be
    served by another engine concurrently — same contract as the
    threaded engine's cache wiring.
    """

    def __init__(
        self,
        pipeline,
        *args,
        max_batch: int = 32,
        batch_safety_window: float = 5.0,
        run_slots: Optional[int] = None,
        **kwargs,
    ):
        self.batcher = MicroBatcher(
            max_batch=max_batch,
            safety_timeout=batch_safety_window,
            on_flush=self._on_flush,
        )
        # Install the batching shim while pipeline.extractor/generator/
        # refiner are still the raw stage objects — the cache wrappers
        # super() installs would otherwise shadow the rebind.
        pipeline.wrap_llms(lambda llm: BatchingLLM(llm, self.batcher))
        super().__init__(pipeline, *args, **kwargs)
        self.singleflight = SingleFlight()
        self._async_lock = threading.Lock()
        # Pipeline runs need one thread each for the batcher's barrier to
        # see the whole cohort; admission's queue_capacity bounds how many
        # can be in flight, so size the pool to it.
        slots = run_slots if run_slots is not None else max(
            self.workers, self.admission.capacity
        )
        self._run_pool = ThreadPoolExecutor(
            max_workers=slots, thread_name_prefix="aio-run"
        )
        if self.metrics is not None:
            self._m_coalesced = self.metrics.counter(
                "repro_async_coalesced_total",
                "follower requests served from an in-flight leader",
            )
            self._m_batched = self.metrics.counter(
                "repro_async_batched_calls_total",
                "batched backend invocations (>= 2 member calls) by stage",
                labelnames=("stage",),
            )
            self._m_batch_size = self.metrics.histogram(
                "repro_async_batch_size",
                "member calls per backend invocation",
                buckets=(1, 2, 4, 8, 16, 32),
            )

    def _on_flush(self, size: int, seconds: float, stage: str) -> None:
        if getattr(self, "metrics", None) is None:
            return
        self._m_batch_size.observe(size)
        if size >= 2:
            self._m_batched.labels(stage=stage).inc()

    # -------------------------------------------------------- serving API

    def run(
        self, examples: Sequence[Example], block: bool = True
    ) -> list[Optional[PipelineResult]]:
        """Serve a whole workload on a fresh event loop.

        Same contract as the threaded engine: results align with
        ``examples``; rejected and failed requests yield ``None``.
        ``block`` is accepted for signature compatibility — admission is
        always non-blocking here (a blocking admit would stall the loop),
        so the queue must be sized for the workload.
        """
        return asyncio.run(self.serve(examples))

    async def serve(
        self, examples: Sequence[Example]
    ) -> list[Optional[PipelineResult]]:
        """Serve a workload on the current event loop."""
        ctxs: list[Optional[_Ctx]] = []
        for example in examples:
            try:
                ctxs.append(self._register(example))
            except (AdmissionError, BudgetExceededError, CircuitOpenError):
                ctxs.append(None)
        self.batcher.expect(sum(1 for c in ctxs if c is not None and c.role == "lead"))
        tasks = [
            asyncio.create_task(self._finish(ctx)) if ctx is not None else None
            for ctx in ctxs
        ]
        results: list[Optional[PipelineResult]] = []
        for task in tasks:
            if task is None:
                results.append(None)
                continue
            try:
                results.append(await task)
            except Exception:
                results.append(None)
        return results

    async def submit_async(
        self, example: Example, deadline_seconds: Optional[float] = None
    ) -> PipelineResult:
        """Register and serve one request on the current event loop.

        Raises the same typed rejection errors as the threaded
        ``submit``.  Concurrent ``submit_async`` tasks coalesce exactly
        like a ``serve`` workload — registration runs in task order.
        """
        ctx = self._register(example, deadline_seconds)
        if ctx.role == "lead":
            self.batcher.expect(1)
        return await self._finish(ctx)

    # ------------------------------------------------------- registration

    def _register(
        self, example: Example, deadline_seconds: Optional[float] = None
    ) -> _Ctx:
        """The synchronous prologue: gates, journal accept, dedup role."""
        if self._closed:
            raise RuntimeError("engine is shut down")
        ctx = _Ctx(example)
        bh_key = (example.db_id, normalize_question(example.question))
        try:
            self.bulkheads.acquire(example.db_id, bh_key, block=False)
        except (BulkheadFullError, DbCircuitOpenError, QuarantinedError) as exc:
            if self.metrics is not None:
                channel = {
                    BulkheadFullError: "full",
                    DbCircuitOpenError: "open",
                    QuarantinedError: "quarantined",
                }[type(exc)]
                self._m_bulkhead_rejections.labels(channel=channel).inc()
            raise
        try:
            self.admission.admit(block=False)
        except BaseException:
            self.bulkheads.release(example.db_id)
            raise
        with self._stats_lock:
            if self._started_at is None:
                self._started_at = self._clock()
        if self.journal is not None:
            ctx.seq = self.journal.accept(example)
        ctx.start = self._clock()
        ctx.budget = (
            deadline_seconds
            if deadline_seconds is not None
            else self.deadline_seconds
        )
        ctx.key = result_cache_key(example, self.pipeline)
        if self.tracing:
            ctx.trace = Trace(question_id=example.question_id, db_id=example.db_id)
        cached = self.result_cache.get(ctx.key)
        if cached is not None:
            ctx.role = "cached"
            ctx.result = cached
            if ctx.trace is not None:
                ctx.trace.root.cache = "hit"
                ctx.trace.root.event("result_cache", outcome="hit")
                self._store_trace(ctx.trace.finish())
            self.bulkheads.record_success(example.db_id, bh_key)
            if self.journal is not None and ctx.seq is not None:
                self.journal.commit(ctx.seq, "cached")
            self._record(example, "cached", ctx.start, model_seconds=0.0)
            self.bulkheads.release(example.db_id)
            self.admission.release()
            return ctx
        if ctx.trace is not None:
            ctx.trace.root.cache = "miss"
            ctx.trace.root.event("result_cache", outcome="miss")
        ctx.flight, leader = self.singleflight.begin(ctx.key)
        ctx.role = "lead" if leader else "follow"
        return ctx

    # ---------------------------------------------------------- execution

    async def _finish(self, ctx: _Ctx) -> PipelineResult:
        if ctx.role == "cached":
            return ctx.result
        if ctx.role == "lead":
            return await self._lead(ctx)
        return await self._follow(ctx)

    async def _lead(self, ctx: _Ctx) -> PipelineResult:
        flight = ctx.flight
        try:
            result = await self._serve_fresh(ctx)
        except Exception as exc:
            self.singleflight.finish(flight)
            flight.future.set_exception(exc)
            # mark retrieved so a follower-less flight does not warn
            _ = flight.future.exception()
            raise
        self.singleflight.finish(flight)
        # A deadline-truncated answer is a degraded stand-in — never
        # shared, mirroring the result-cache rule.  A doomed flight
        # (invalidate_db landed mid-flight) must not share either: the
        # answer was computed against pre-invalidation content.  In both
        # cases followers run fresh.
        flight.future.set_result(
            RUN_SELF if result.deadline_exceeded or flight.doomed else result
        )
        return result

    async def _follow(self, ctx: _Ctx) -> PipelineResult:
        example, flight = ctx.example, ctx.flight
        bh_key = (example.db_id, normalize_question(example.question))
        try:
            try:
                outcome = await asyncio.shield(flight.future)
            except asyncio.CancelledError:
                # Our task was cancelled (or the leader was): no commit —
                # the seq stays pending and recovery completes it.
                raise
            except Exception as exc:
                # The leader failed; this request fails identically, and
                # a fresh recovery re-runs it to the same typed error.
                error = f"{type(exc).__name__}: {exc}"
                self.admission.record_failure()
                self.health.record("pipeline", False, detail=error)
                if self.bulkheads.record_crash(example.db_id, bh_key):
                    add_event(
                        "quarantine",
                        db_id=example.db_id,
                        question_id=example.question_id,
                    )
                    if self.metrics is not None:
                        self._m_quarantine.inc()
                if self.journal is not None and ctx.seq is not None:
                    self.journal.commit(ctx.seq, "failed", error=error)
                if ctx.trace is not None:
                    ctx.trace.root.status = "failed"
                    ctx.trace.root.event("request_failed", error=str(exc))
                    self._store_trace(ctx.trace.finish())
                self._record(example, "failed", ctx.start, error=str(exc))
                raise
            if outcome is RUN_SELF:
                # Fail-open: the leader's answer was deadline-truncated.
                self.batcher.expect(1)
                return await self._serve_fresh(ctx)
            if ctx.trace is not None:
                ctx.trace.root.cache = "coalesced"
                ctx.trace.root.event(
                    "single_flight", outcome="coalesced", key=str(ctx.key)
                )
                self._store_trace(ctx.trace.finish())
            self.bulkheads.record_success(example.db_id, bh_key)
            if self.journal is not None and ctx.seq is not None:
                self.journal.commit(ctx.seq, "coalesced")
            self._record(example, "coalesced", ctx.start, model_seconds=0.0)
            if self.metrics is not None:
                self._m_coalesced.inc()
            return outcome
        finally:
            self.bulkheads.release(example.db_id)
            self.admission.release()

    async def _serve_fresh(self, ctx: _Ctx) -> PipelineResult:
        """Run the pipeline off-loop with full threaded-path bookkeeping."""
        example = ctx.example
        bh_key = (example.db_id, normalize_question(example.question))
        release = ctx.role == "lead"  # fail-open followers release in _follow
        try:
            try:
                result = await self._offload(ctx)
            except Exception as exc:
                self.admission.record_failure()
                self.health.record("pipeline", False, detail=str(exc))
                if self.bulkheads.record_crash(example.db_id, bh_key):
                    add_event(
                        "quarantine",
                        db_id=example.db_id,
                        question_id=example.question_id,
                    )
                    if self.metrics is not None:
                        self._m_quarantine.inc()
                if self.journal is not None and ctx.seq is not None:
                    self.journal.commit(
                        ctx.seq, "failed", error=f"{type(exc).__name__}: {exc}"
                    )
                if ctx.trace is not None:
                    ctx.trace.root.status = "failed"
                    ctx.trace.root.event("request_failed", error=str(exc))
                    self._store_trace(ctx.trace.finish(deadline=ctx.deadline))
                self._record(example, "failed", ctx.start, error=str(exc))
                raise
            if ctx.trace is not None:
                # pipeline.answer already finished the root with totals
                self._store_trace(ctx.trace)
            self.admission.record_success()
            self.health.record("pipeline", True)
            self.bulkheads.record_success(example.db_id, bh_key)
            exceeded = result.deadline_exceeded
            self.health.record("deadline", not exceeded)
            if not exceeded:
                if self.epochs is not None:
                    # a stale retry (or doomed re-run) may have crossed an
                    # epoch bump; re-derive the key so the entry lands
                    # under the catalog that produced it
                    ctx.key = result_cache_key(example, self.pipeline)
                self.result_cache.put(ctx.key, result)
            if self.journal is not None and ctx.seq is not None:
                self.journal.commit(ctx.seq, "ok", result=result)
            routing = getattr(result, "routing", None)
            if self.metrics is not None and routing is not None:
                self._m_tier.labels(tier=routing.final_tier).inc()
                for event in routing.escalations:
                    self._m_escalations.labels(reason=event.reason).inc()
                for attempt in routing.attempts:
                    self._m_tier_tokens.labels(tier=attempt.tier).inc(attempt.tokens)
            self._record(
                example,
                "ok",
                ctx.start,
                model_seconds=result.cost.total_model_seconds,
                deadline_exceeded=exceeded,
            )
            return result
        finally:
            if release:
                self.bulkheads.release(example.db_id)
                self.admission.release()

    async def _offload(self, ctx: _Ctx) -> PipelineResult:
        """Run ``pipeline.answer`` on the run pool as a batcher runner."""
        loop = asyncio.get_running_loop()

        def run() -> PipelineResult:
            self.batcher.runner_begun()
            try:
                ctx.deadline = (
                    Deadline(ctx.budget, clock=self._clock)
                    if ctx.budget is not None
                    else None
                )
                # _answer_guarded pins the catalog epoch on this pool
                # thread and handles the one bounded stale retry; with no
                # live-data registry attached it is a plain answer().
                return self._answer_guarded(ctx.example, ctx.deadline, ctx.trace)
            finally:
                self.batcher.runner_finished()

        return await loop.run_in_executor(self._run_pool, run)

    # ----------------------------------------------------------- plumbing

    def invalidate_db(self, db_id: str) -> dict[str, int]:
        """Cache-tier invalidation plus in-flight single-flight dooming."""
        dropped = super().invalidate_db(db_id)
        dropped["singleflight"] = self.singleflight.invalidate(
            lambda key: bool(key) and key[0] == db_id
        )
        return dropped

    def stats(self) -> AsyncServingStats:
        base = super().stats()
        batcher = self.batcher.stats()
        with self._stats_lock:
            coalesced = sum(1 for r in self._records if r.status == "coalesced")
        data = {
            f.name: getattr(base, f.name) for f in dataclasses.fields(ServingStats)
        }
        data["makespan_seconds"] = batcher["backend_busy_seconds"]
        return AsyncServingStats(
            coalesced=coalesced,
            llm_calls=batcher["calls"],
            flushes=batcher["flushes"],
            batched_calls=batcher["batched_calls"],
            max_batch=batcher["max_batch"],
            mean_batch=batcher["mean_batch"],
            backend_busy_seconds=batcher["backend_busy_seconds"],
            safety_timeouts=batcher["safety_timeouts"],
            **data,
        )

    def shutdown(self, wait: bool = True, drain: bool = False) -> None:
        super().shutdown(wait=wait, drain=drain)
        self._run_pool.shutdown(wait=wait or drain)
