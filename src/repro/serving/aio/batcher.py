"""Micro-batching of same-stage LLM calls across concurrent requests.

Concurrent pipeline runs each issue a stream of LLM calls.  The
:class:`MicroBatcher` parks every call at a rendezvous and flushes a
**wave** when all currently active runs are parked (or a safety window
expires), then partitions the wave by ``(client, stage)`` and issues one
batched backend invocation per group via ``client.complete_batch``.

The batching window is *adaptive*, not a fixed timer: a wave closes the
moment every eligible runner has either parked its next call or finished
its run.  That makes the wave composition a pure function of each
request's deterministic call sequence — wave *k* contains exactly the
*k*-th call of every run that has a *k*-th call — so batch sizes and the
accounted backend-busy seconds are reproducible across runs and the CI
determinism diff can hold.  The wall-clock ``safety_timeout`` exists
only as a liveness backstop for pathological stalls; in a healthy run it
never fires.

Virtual-time accounting (the certified win): a batched invocation of
*n* member calls is charged

    ``CALL_OVERHEAD_SECONDS + max(member_seconds - CALL_OVERHEAD_SECONDS)``

— one API overhead for the whole batch plus the *slowest* member's
decode time, the continuous-batching model where members decode in
parallel on one backend.  Per-member responses are byte-identical to
lone ``complete()`` calls (``SimulatedLLM`` draws are order-independent
by construction), so each request's charged tokens/cost — and therefore
EX, journal payloads, and recovered reports — are independent of how
traffic happened to batch.  Only the engine-level backend-busy clock
(the async makespan) sees the overlap.

Clients without ``complete_batch`` fall back to a per-call loop and are
honestly charged serial time: no simulator support, no batching win.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.llm.simulated import CALL_OVERHEAD_SECONDS
from repro.llm.tasks import (
    ColumnSelectionTask,
    CorrectionTask,
    CoTAugmentTask,
    EntityExtractionTask,
    GenerationTask,
    SelectAlignmentTask,
)

__all__ = ["MicroBatcher", "BatchingLLM", "stage_of"]

#: task class → pipeline stage; calls only batch within one stage (and
#: one client — tiers never share a backend invocation).
_STAGE_BY_TASK = {
    EntityExtractionTask: "extraction",
    ColumnSelectionTask: "extraction",
    CoTAugmentTask: "generation",
    GenerationTask: "generation",
    SelectAlignmentTask: "alignment",
    CorrectionTask: "refinement",
}


def stage_of(task: object) -> str:
    """The batching stage for one task payload (``"other"`` if unknown)."""
    return _STAGE_BY_TASK.get(type(task), "other")


class _Call:
    __slots__ = ("client", "prompt", "temperature", "n", "task",
                 "claimed", "done", "responses", "error")

    def __init__(self, client, prompt, temperature, n, task):
        self.client = client
        self.prompt = prompt
        self.temperature = temperature
        self.n = n
        self.task = task
        self.claimed = False
        self.done = threading.Event()
        self.responses = None
        self.error: Optional[BaseException] = None


class MicroBatcher:
    """Barrier rendezvous collecting concurrent LLM calls into waves."""

    def __init__(
        self,
        max_batch: int = 32,
        safety_timeout: float = 5.0,
        on_flush: Optional[Callable[[int, float, str], None]] = None,
        clock=time.monotonic,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.safety_timeout = safety_timeout
        self.on_flush = on_flush
        self._clock = clock
        self._cond = threading.Condition()
        self._pending: list[_Call] = []
        #: runs announced (engine-side, pre-offload) but not yet begun —
        #: counted as active so wave 1 waits for the whole cohort instead
        #: of flushing against whichever thread the pool started first
        self._expected = 0
        self._running = 0
        # accounting (guarded by _cond)
        self.calls = 0
        self.flushes = 0
        self.batched_calls = 0
        self.max_batch_seen = 0
        self.busy_seconds = 0.0
        self.timeouts = 0

    # ------------------------------------------------------ runner census

    def expect(self, n: int = 1) -> None:
        """Announce ``n`` pipeline runs about to be offloaded."""
        with self._cond:
            self._expected += n
            self._cond.notify_all()

    def abandon(self, n: int = 1) -> None:
        """Retract announced runs that will never start (cancellation)."""
        with self._cond:
            self._expected = max(0, self._expected - n)
            self._cond.notify_all()

    def runner_begun(self) -> None:
        """An announced run started executing on its worker thread."""
        with self._cond:
            self._expected = max(0, self._expected - 1)
            self._running += 1
            self._cond.notify_all()

    def runner_finished(self) -> None:
        with self._cond:
            self._running -= 1
            self._cond.notify_all()

    def _active(self) -> int:
        return self._expected + self._running

    # ------------------------------------------------------------ submit

    def submit(self, client, prompt, temperature, n, task):
        """Park one LLM call until its wave flushes; return its responses.

        Called from runner threads (inside a pipeline run).  The caller
        that completes the wave — by being its last parked member, or by
        safety timeout — claims the whole wave and executes it; everyone
        else sleeps until the claimant posts their responses.
        """
        call = _Call(client, prompt, temperature, n, task)
        wave: Optional[list[_Call]] = None
        timed_out = False
        with self._cond:
            self.calls += 1
            self._pending.append(call)
            self._cond.notify_all()
            deadline = self._clock() + self.safety_timeout
            while not call.claimed:
                if (
                    len(self._pending) >= self.max_batch
                    or len(self._pending) >= max(1, self._active())
                ):
                    wave = self._claim()
                    break
                remaining = deadline - self._clock()
                if remaining <= 0:
                    wave = self._claim()
                    timed_out = True
                    break
                self._cond.wait(remaining)
            if timed_out:
                self.timeouts += 1
        if wave is not None:
            self._execute(wave)
        call.done.wait()
        if call.error is not None:
            raise call.error
        return call.responses

    def _claim(self) -> list[_Call]:
        """Take the pending wave (caller holds the lock)."""
        wave, self._pending = self._pending, []
        for member in wave:
            member.claimed = True
        self._cond.notify_all()
        return wave

    # ----------------------------------------------------------- execute

    def _execute(self, wave: list[_Call]) -> None:
        """Run one wave, group by (client, stage), post responses."""
        groups: dict[tuple[int, str], list[_Call]] = {}
        for call in wave:
            groups.setdefault((id(call.client), stage_of(call.task)), []).append(call)
        for (_, stage), members in groups.items():
            try:
                seconds = self._invoke(members)
            except BaseException as exc:  # noqa: BLE001 — posted per member
                for member in members:
                    member.error = exc
                    member.done.set()
                continue
            with self._cond:
                self.flushes += 1
                self.busy_seconds += seconds
                self.max_batch_seen = max(self.max_batch_seen, len(members))
                if len(members) >= 2:
                    self.batched_calls += 1
            if self.on_flush is not None:
                self.on_flush(len(members), seconds, stage)
            for member in members:
                member.done.set()

    @staticmethod
    def _invoke(members: list[_Call]) -> float:
        """One backend invocation; returns its charged virtual seconds."""
        client = members[0].client
        if hasattr(client, "complete_batch"):
            response_lists = client.complete_batch(
                [
                    {
                        "prompt": m.prompt,
                        "temperature": m.temperature,
                        "n": m.n,
                        "task": m.task,
                    }
                    for m in members
                ]
            )
            seconds = 0.0
            for member, responses in zip(members, response_lists):
                member.responses = responses
                member_seconds = sum(r.latency_seconds for r in responses)
                seconds = max(seconds, member_seconds - CALL_OVERHEAD_SECONDS)
            return CALL_OVERHEAD_SECONDS + seconds
        # No batched entry point: serial per-call fallback, serial time.
        seconds = 0.0
        for member in members:
            member.responses = client.complete(
                member.prompt,
                temperature=member.temperature,
                n=member.n,
                task=member.task,
            )
            seconds += sum(r.latency_seconds for r in member.responses)
        return seconds

    def stats(self) -> dict:
        with self._cond:
            return {
                "calls": self.calls,
                "flushes": self.flushes,
                "batched_calls": self.batched_calls,
                "max_batch": self.max_batch_seen,
                "mean_batch": round(self.calls / self.flushes, 2)
                if self.flushes
                else 0.0,
                "backend_busy_seconds": round(self.busy_seconds, 4),
                "safety_timeouts": self.timeouts,
            }


class BatchingLLM:
    """Transparent client shim parking every ``complete`` at the batcher.

    Attribute access falls through to the wrapped client so skill
    profiles, seeds and fault-injection knobs stay reachable; only the
    call path is re-routed.  One batcher may serve several wrapped
    clients (routing tiers) — waves group per client, so tiers never
    share a backend invocation.
    """

    def __init__(self, inner, batcher: MicroBatcher):
        self.inner = inner
        self.batcher = batcher

    def complete(self, prompt, *, temperature=0.0, n=1, task=None):
        return self.batcher.submit(self.inner, prompt, temperature, n, task)

    def __getattr__(self, name):
        return getattr(self.inner, name)
