"""Hedged SQL execution for the serving path.

Tail latency and transient database faults share one cure: run the
statement again.  :class:`HedgedExecutor` wraps any executor and launches a
single backup execution when the primary attempt either

* failed with a **transient** status (``LOCKED`` / ``DISK_ERROR`` /
  ``CONNECTION_ERROR`` / ``TIMEOUT`` — infrastructure faults a fresh
  attempt may clear), or
* succeeded but took at least ``threshold_seconds`` of virtual time — the
  classic hedged-request policy: past the threshold a duplicate is cheaper
  than waiting out the tail.

The recorded latency of a slow-primary hedge is the *race* outcome:
``min(primary_elapsed, threshold + hedge_elapsed)`` — in a real deployment
the backup launches at the threshold and whichever answer lands first
wins.  (Virtual-time convention: executions here run sequentially and
report what the race would have cost; nothing sleeps.)

When the wrapped executor understands an ``attempt`` argument (the
fault-injecting executor does), the hedge passes ``attempt=1`` so its
fault draw is independent of the primary's — re-running the same statement
against the same chaos seed would otherwise hit the same injected fault
forever, which is exactly the correlation hedging exists to break.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.execution.executor import ExecutionError, ExecutionOutcome
from repro.observability.context import add_event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reliability.deadline import Deadline

__all__ = ["HedgeStats", "HedgedExecutor"]


@dataclass
class HedgeStats:
    """What hedging did over one executor's lifetime."""

    #: primary executions seen
    calls: int = 0
    #: backup executions launched
    launched: int = 0
    #: hedges whose outcome was adopted over the primary's
    wins: int = 0
    #: transient-error primaries cleared by the hedge
    recovered_error: int = 0
    #: slow-but-OK primaries where the hedge won the latency race
    recovered_slow: int = 0
    #: primaries at/over the latency threshold (hedge-eligible slow calls)
    primary_slow: int = 0
    #: hedges skipped because the request deadline was already spent
    suppressed_deadline: int = 0

    def to_dict(self) -> dict:
        """JSON-ready counters for stats reports."""
        return {
            "calls": self.calls,
            "launched": self.launched,
            "wins": self.wins,
            "recovered_error": self.recovered_error,
            "recovered_slow": self.recovered_slow,
            "primary_slow": self.primary_slow,
            "suppressed_deadline": self.suppressed_deadline,
        }


class HedgedExecutor:
    """Wraps an executor with a one-backup hedging policy.

    Implements the executor protocol (``execute`` / ``execute_or_raise``);
    other attributes fall through to the wrapped executor.  Thread-safe:
    serving workers share one instance per database, and only the shared
    stats are guarded (execution itself is reentrant in the wrapped
    executor).
    """

    def __init__(
        self,
        inner,
        threshold_seconds: float = 2.0,
        stats: Optional[HedgeStats] = None,
    ):
        if threshold_seconds <= 0:
            raise ValueError("threshold_seconds must be > 0")
        self.inner = inner
        self.threshold_seconds = threshold_seconds
        self.stats = stats if stats is not None else HedgeStats()
        self._stats_lock = threading.Lock()
        # Detect the attempt-salt protocol once: FaultInjectingExecutor
        # accepts it (decorrelated draws), plain SQLExecutor does not.
        try:
            parameters = inspect.signature(inner.execute).parameters
            self._attempt_aware = "attempt" in parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            self._attempt_aware = False

    # ------------------------------------------------------------- helpers

    def _run(
        self, sql: str, deadline: Optional["Deadline"], attempt: int
    ) -> ExecutionOutcome:
        if self._attempt_aware:
            return self.inner.execute(sql, deadline, attempt=attempt)
        return self.inner.execute(sql, deadline)

    def _bump(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    # ----------------------------------------------------------------- API

    def execute(
        self, sql: str, deadline: Optional["Deadline"] = None
    ) -> ExecutionOutcome:
        """Execute ``sql``, hedging transient failures and slow successes."""
        primary = self._run(sql, deadline, attempt=0)
        self._bump(calls=1)

        transient = primary.status.is_transient
        slow = (
            not primary.status.is_error
            and primary.elapsed_seconds >= self.threshold_seconds
        )
        if slow:
            self._bump(primary_slow=1)
        if not transient and not slow:
            return primary
        if deadline is not None and deadline.expired:
            self._bump(suppressed_deadline=1)
            add_event("hedge_suppressed", reason="deadline")
            return primary

        self._bump(launched=1)
        add_event(
            "hedge_launched",
            reason="transient" if transient else "slow",
            primary_status=primary.status.value,
        )
        hedge = self._run(sql, deadline, attempt=1)

        if transient:
            if not hedge.status.is_transient:
                self._bump(wins=1, recovered_error=1)
                add_event("hedge_won", recovered="error")
                return hedge
            return primary

        # Slow-primary race: the hedge launches at the threshold, so its
        # answer lands at threshold + hedge_elapsed virtual seconds.
        if hedge.status.is_error:
            return primary
        hedge_finish = self.threshold_seconds + hedge.elapsed_seconds
        if hedge_finish < primary.elapsed_seconds:
            self._bump(wins=1, recovered_slow=1)
            add_event("hedge_won", recovered="slow")
            return replace(hedge, elapsed_seconds=hedge_finish)
        return primary

    def execute_or_raise(
        self, sql: str, deadline: Optional["Deadline"] = None
    ) -> ExecutionOutcome:
        """Execute ``sql``; raise :class:`ExecutionError` on failure."""
        outcome = self.execute(sql, deadline)
        if outcome.status.is_error:
            raise ExecutionError(outcome)
        return outcome

    def __getattr__(self, name):
        return getattr(self.inner, name)
