"""Model skill profiles.

A :class:`SkillProfile` parameterizes every hallucination channel of the
simulated model.  The three shipped profiles emulate the models the paper
evaluates: GPT-4o (strong), GPT-4 (slightly weaker), GPT-4o-mini (markedly
weaker with more *deterministically repeated* errors, which is what makes
its self-consistency curve peak at 7–15 candidates in Figure 4 — a wrong
answer that re-occurs identically across samples eventually out-votes the
correct one).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SkillProfile", "GPT_4O", "GPT_4O_MINI", "GPT_4", "skill_by_name"]


@dataclass(frozen=True)
class SkillProfile:
    """All per-channel error probabilities of a simulated model.

    Rates are *base* probabilities; the simulator multiplies them by the
    question's difficulty factor and by prompt-feature factors (few-shot,
    CoT mode, hints) before drawing.
    """

    name: str

    # ---- value handling ------------------------------------------------
    #: P(correct stored literal) when the prompt does NOT carry retrieved values
    value_guess_rate: float = 0.88
    #: P(using the provided stored value) when the prompt DOES carry it
    value_follow_rate: float = 0.98
    #: P(resolving a mention to a plausible-but-WRONG stored value) when
    #: retrieval did not pin it down; correlated across candidates and
    #: invisible to agent alignment (the wrong value exists in the column)
    value_confuse_rate: float = 0.05

    # ---- schema linking -------------------------------------------------
    #: per same-name-distractor-column probability of mis-qualifying a column
    column_confusion_per_distractor: float = 0.03
    #: per extra-table-in-prompt probability of a wrong join column
    join_error_per_table: float = 0.02

    # ---- structural channels --------------------------------------------
    #: P(aggregate misuse: ORDER BY MAX(x) form) when the query orders rows
    agg_misuse_rate: float = 0.10
    #: P(breaking dataset style: dropping IS NOT NULL / MAX-vs-LIMIT drift)
    style_break_rate: float = 0.30
    #: P(wrong SELECT item count/order) on multi-output questions
    select_shape_rate: float = 0.18
    #: P(missing the question's trick: DISTINCT, date format, evidence formula)
    trick_miss_rate: float = 0.42
    #: share of the trick-miss probability that is correlated across
    #: candidates (consistent misreading) versus per-candidate sampling
    #: noise.  Small models are noise-dominated: their wrong answers are
    #: per-candidate draws with *identical content*, which is exactly what
    #: lets a large vote lock the error in (Figure 4's mini peak).
    trick_correlated_share: float = 0.30
    #: rate of picking a wrong (differently-named) filter column, scaled by
    #: how much of the schema the prompt shows beyond what is needed
    wrong_column_rate: float = 1.0
    #: probability the question is simply beyond the model — correlated
    #: across candidates, immune to every pipeline module (the EX ceiling)
    hard_fail_rate: float = 0.28
    #: baseline probability of emitting syntactically broken SQL
    syntax_error_base: float = 0.004
    #: additional syntax-error probability per unit of temperature
    syntax_error_temp_slope: float = 0.012

    # ---- prompt-feature multipliers (applied to the channels above) -----
    fewshot_plain_factor: float = 0.55   # Query-SQL few-shot present
    fewshot_cot_factor: float = 0.32     # Query-CoT-SQL few-shot present
    fewshot_skeleton_factor: float = 0.45  # Query-Skeleton-SQL (§3.8 ext.)
    cot_structured_factor: float = 0.55  # structured CoT instructions
    cot_unstructured_factor: float = 0.80
    select_hint_factor: float = 0.25     # Info Alignment SELECT hints present
    schema_filter_factor: float = 1.0    # (distractors already shrink; hook)

    # ---- difficulty scaling ---------------------------------------------
    difficulty_factor: dict = field(
        default_factory=lambda: {"simple": 0.6, "moderate": 1.0, "challenging": 1.6}
    )

    # ---- extraction-stage behaviour --------------------------------------
    #: P(an entity mention is missed during entity extraction)
    entity_miss_rate: float = 0.06
    #: P(a needed column is recalled by LLM column selection)
    column_recall: float = 0.95
    #: expected number of spurious extra columns the model also selects
    column_extra_mean: float = 3.0

    # ---- refinement-stage behaviour --------------------------------------
    #: P(a correction attempt fixes the error), by error kind
    correction_fix_rate: dict = field(
        default_factory=lambda: {
            "syntax_error": 0.80,
            "missing_column": 0.50,
            "empty": 0.40,
            "other_error": 0.45,
            "timeout": 0.30,
            "missing_table": 0.45,
            "ambiguous_column": 0.65,
        }
    )
    #: multiplier on fix rates when error-typed few-shots are NOT provided
    correction_no_fewshot_factor: float = 0.45

    # ---- temperature behaviour -------------------------------------------
    #: at temperature 0 the model is deterministic; this is the scale of
    #: extra randomness injected per unit temperature into channel draws
    temperature_jitter: float = 1.0

    def difficulty_scale(self, difficulty: str) -> float:
        """Channel multiplier for a difficulty label (1.0 when unknown)."""
        return self.difficulty_factor.get(difficulty, 1.0)

    def fewshot_factor(self, kind: str) -> float:
        """Error-suppression multiplier for a few-shot format."""
        if kind == "query_cot_sql":
            return self.fewshot_cot_factor
        if kind == "query_skeleton_sql":
            return self.fewshot_skeleton_factor
        if kind == "query_sql":
            return self.fewshot_plain_factor
        return 1.0

    def cot_factor(self, mode: str) -> float:
        """Error-suppression multiplier for a CoT instruction mode."""
        if mode == "structured":
            return self.cot_structured_factor
        if mode == "unstructured":
            return self.cot_unstructured_factor
        return 1.0


GPT_4O = SkillProfile(name="gpt-4o")

GPT_4 = SkillProfile(
    name="gpt-4",
    value_guess_rate=0.82,
    value_follow_rate=0.97,
    column_confusion_per_distractor=0.036,
    join_error_per_table=0.024,
    agg_misuse_rate=0.12,
    style_break_rate=0.50,
    select_shape_rate=0.22,
    trick_miss_rate=0.46,
    wrong_column_rate=1.2,
    hard_fail_rate=0.33,
    value_confuse_rate=0.06,
    syntax_error_base=0.006,
    entity_miss_rate=0.08,
    column_recall=0.93,
)

GPT_4O_MINI = SkillProfile(
    name="gpt-4o-mini",
    value_guess_rate=0.70,
    value_follow_rate=0.93,
    column_confusion_per_distractor=0.055,
    join_error_per_table=0.040,
    wrong_column_rate=1.8,
    hard_fail_rate=0.45,
    value_confuse_rate=0.10,
    agg_misuse_rate=0.18,
    style_break_rate=0.60,
    select_shape_rate=0.30,
    # Above 0.5 on hard questions: the *same* wrong SQL is re-generated at
    # every sample, so with many candidates the wrong answer wins the vote —
    # the Figure 4 "peaks at 7-15 candidates" behaviour.  Mini also benefits
    # less from few-shot/CoT scaffolding, which keeps its effective
    # challenging-question miss probability near the 0.5 vote-lock line.
    trick_miss_rate=0.66,
    trick_correlated_share=0.05,
    syntax_error_base=0.010,
    syntax_error_temp_slope=0.03,
    fewshot_plain_factor=0.80,
    fewshot_cot_factor=0.68,
    fewshot_skeleton_factor=0.75,
    cot_structured_factor=0.80,
    cot_unstructured_factor=0.92,
    entity_miss_rate=0.14,
    column_recall=0.80,
    column_extra_mean=5.0,
    correction_fix_rate={
        "syntax_error": 0.65,
        "missing_column": 0.38,
        "empty": 0.30,
        "other_error": 0.32,
        "timeout": 0.20,
        "missing_table": 0.30,
        "ambiguous_column": 0.50,
    },
)

_PROFILES = {p.name: p for p in (GPT_4O, GPT_4, GPT_4O_MINI)}


def skill_by_name(name: str) -> SkillProfile:
    """Look up a shipped profile by model name; raises KeyError if absent."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown skill profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None
