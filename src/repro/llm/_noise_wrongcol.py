"""Wrong-filter-column noise op (kept separate to keep noise.py focused).

With a large unfiltered schema in the prompt, real models sometimes filter
on a *plausible but wrong* column (e.g. ``City`` instead of ``County``).
This op swaps one WHERE-clause column reference for a different same-table
column of a compatible type.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.llm.noise import map_sql_like
from repro.schema.model import Database
from repro.sqlkit.ast import BinaryOp, ColumnRef, Expr, Literal
from repro.sqlkit.sql_like import SQLLike

__all__ = ["wrong_filter_column"]


def wrong_filter_column(
    sql_like: SQLLike, schema: Database, rng: np.random.Generator
) -> SQLLike:
    """Swap one filtered column for a different same-table column that the
    prompt schema also shows.  No-ops when there is nothing to swap."""
    if sql_like.where is None:
        return sql_like

    targets: list[tuple[ColumnRef, str]] = []

    def collect(expr: Expr) -> Optional[Expr]:
        if isinstance(expr, BinaryOp) and expr.op in ("=", ">", "<", ">=", "<="):
            ref, lit = expr.left, expr.right
            if isinstance(ref, ColumnRef) and isinstance(lit, Literal) and ref.table:
                if schema.has_table(ref.table):
                    table = schema.table(ref.table)
                    want_text = lit.kind == "string"
                    options = [
                        c.name
                        for c in table.columns
                        if c.name.lower() != ref.column.lower()
                        and not c.is_primary
                        and (c.is_text == want_text)
                    ]
                    for option in options:
                        targets.append((ref, option))
        return None

    map_sql_like(sql_like, collect)
    if not targets:
        return sql_like
    victim, wrong = targets[int(rng.integers(len(targets)))]
    state = {"done": False}

    def swap(expr: Expr) -> Optional[Expr]:
        if not state["done"] and isinstance(expr, ColumnRef) and expr == victim:
            state["done"] = True
            return ColumnRef(column=wrong, table=expr.table)
        return None

    return map_sql_like(sql_like, swap)
