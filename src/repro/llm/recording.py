"""Record/replay LLM clients.

When moving from the offline simulator to a paid API, two wrappers make
runs reproducible and debuggable:

* :class:`RecordingClient` wraps any :class:`~repro.llm.base.LLMClient`
  and appends every (prompt, params, completions) interaction to a JSONL
  cassette file;
* :class:`ReplayClient` serves a cassette back, keyed by the prompt hash —
  a pipeline run against a replayed cassette is bit-for-bit deterministic
  and costs nothing, which is how the paper-style ablations can be re-run
  against *real* GPT-4o transcripts.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Optional, Union

from repro.llm.base import LLMClient, LLMResponse, TokenUsage

__all__ = ["RecordingClient", "ReplayClient", "ReplayMiss"]


class ReplayMiss(KeyError):
    """Raised when the cassette holds no entry for a requested prompt."""


def _key(prompt: str, temperature: float, n: int) -> str:
    digest = hashlib.sha256(prompt.encode("utf-8")).hexdigest()[:32]
    return f"{digest}:{temperature:g}:{n}"


def _encode(response: LLMResponse) -> dict:
    return {
        "text": response.text,
        "prompt_tokens": response.usage.prompt_tokens,
        "completion_tokens": response.usage.completion_tokens,
        "model": response.model,
        "latency_seconds": response.latency_seconds,
    }


def _decode(payload: dict) -> LLMResponse:
    return LLMResponse(
        text=payload["text"],
        usage=TokenUsage(
            payload.get("prompt_tokens", 0), payload.get("completion_tokens", 0)
        ),
        model=payload.get("model", ""),
        latency_seconds=payload.get("latency_seconds", 0.0),
    )


class RecordingClient:
    """Wraps a client, appending every interaction to a JSONL cassette."""

    def __init__(self, inner: LLMClient, cassette_path: Union[str, Path]):
        self.inner = inner
        self.cassette_path = Path(cassette_path)
        self.model_name = inner.model_name

    def complete(
        self,
        prompt: str,
        *,
        temperature: float = 0.0,
        n: int = 1,
        task: Optional[object] = None,
    ) -> list[LLMResponse]:
        """Delegate to the wrapped client and append the interaction."""
        responses = self.inner.complete(
            prompt, temperature=temperature, n=n, task=task
        )
        record = {
            "key": _key(prompt, temperature, n),
            "prompt": prompt,
            "temperature": temperature,
            "n": n,
            # Audit metadata: which pipeline task produced this call, and
            # when.  Replay ignores both (lookup is by key alone).
            "task": type(task).__name__ if task is not None else None,
            "recorded_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime()
            ),
            "responses": [_encode(r) for r in responses],
        }
        with self.cassette_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        return responses


class ReplayClient:
    """Serves recorded completions back from a cassette.

    Lookup is by (prompt hash, temperature, n).  When the same key was
    recorded multiple times, occurrences are replayed in recording order
    and the last one repeats (so a re-run with extra calls still works).
    """

    def __init__(self, cassette_path: Union[str, Path], model_name: str = "replay"):
        self.cassette_path = Path(cassette_path)
        self.model_name = model_name
        self._entries: dict[str, list[list[LLMResponse]]] = {}
        self._cursor: dict[str, int] = {}
        self._load()

    def _load(self) -> None:
        if not self.cassette_path.exists():
            raise FileNotFoundError(f"no cassette at {self.cassette_path}")
        with self.cassette_path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                responses = [_decode(p) for p in record["responses"]]
                self._entries.setdefault(record["key"], []).append(responses)

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def complete(
        self,
        prompt: str,
        *,
        temperature: float = 0.0,
        n: int = 1,
        task: Optional[object] = None,
    ) -> list[LLMResponse]:
        """Serve the next recorded occurrence for this prompt/params key."""
        key = _key(prompt, temperature, n)
        occurrences = self._entries.get(key)
        if not occurrences:
            raise ReplayMiss(
                f"cassette has no entry for this prompt "
                f"(temperature={temperature}, n={n})"
            )
        index = self._cursor.get(key, 0)
        self._cursor[key] = index + 1
        return occurrences[min(index, len(occurrences) - 1)]
