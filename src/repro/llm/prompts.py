"""Prompt templates for every pipeline LLM call.

The formats follow the paper's listings: Listing 4 (Extraction), Listing 2
(Query-CoT-SQL few-shot), Listing 5 (Generation) and Listing 3 (error-typed
Correction).  The rendered text is what token accounting (Table 6) is
measured on, and what a real API-backed :class:`LLMClient` would receive.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "entity_extraction_prompt",
    "column_selection_prompt",
    "generation_prompt",
    "correction_prompt",
    "cot_augment_prompt",
    "select_alignment_prompt",
]

_STRUCTURED_COT_RULES = """\
/* Rules */
Answer step by step in exactly this structure:
#reason: Analyze how to generate SQL based on the question.
#columns: All columns ultimately used in the SQL.
#values: the filter in SQL.
#SELECT: SELECT content table.column.
#SQL-like: SQL-like statement ignoring Join conditions.
#SQL: the final SQL."""

_UNSTRUCTURED_COT_RULES = """\
/* Rules */
Let's think step by step, then output the final SQL on a line starting
with #SQL:"""

_NO_COT_RULES = """\
/* Rules */
Output only the final SQL on a line starting with #SQL:"""


def entity_extraction_prompt(question: str, evidence: str, schema_text: str) -> str:
    """Prompt asking the model for entities/value phrases in the NLQ."""
    parts = [
        "/* Database schema */",
        schema_text,
        "/* Task: list the entities and literal values mentioned by the "
        "question, one per line. */",
    ]
    if evidence:
        parts.append(f"/* Evidence: {evidence} */")
    parts.append(f"/* Answer the following: {question} */")
    return "\n".join(parts)


def column_selection_prompt(question: str, evidence: str, schema_text: str) -> str:
    """Prompt asking the model to select relevant tables/columns."""
    parts = [
        "/* Database schema */",
        schema_text,
        "/* Task: select every table.column needed to answer the question, "
        "one per line in the form table.column. */",
    ]
    if evidence:
        parts.append(f"/* Evidence: {evidence} */")
    parts.append(f"/* Answer the following: {question} */")
    return "\n".join(parts)


def _cot_rules(cot_mode: str) -> str:
    if cot_mode == "structured":
        return _STRUCTURED_COT_RULES
    if cot_mode == "unstructured":
        return _UNSTRUCTURED_COT_RULES
    return _NO_COT_RULES


def generation_prompt(
    question: str,
    evidence: str,
    schema_text: str,
    values: Sequence[str] = (),
    few_shots: Sequence[str] = (),
    cot_mode: str = "structured",
    select_hints: Sequence[str] = (),
) -> str:
    """The Generation-stage prompt (paper Listing 5 input side)."""
    parts = ["/* Database schema */", schema_text, _cot_rules(cot_mode)]
    if few_shots:
        parts.append("/* Some examples */")
        parts.extend(few_shots)
    if values:
        parts.append("/* Similar values in the database */")
        parts.extend(f"#value: {value}" for value in values)
    if select_hints:
        parts.append("/* SELECT alignment */")
        parts.extend(f"#select_hint: {hint}" for hint in select_hints)
    if evidence:
        parts.append(f"/* Evidence: {evidence} */")
    parts.append(f"/* Answer the following: {question} */")
    return "\n".join(parts)


def correction_prompt(
    question: str,
    failed_sql: str,
    error_kind: str,
    error_message: str,
    schema_text: str,
    values: Sequence[str] = (),
    few_shots: Sequence[str] = (),
) -> str:
    """The Correction prompt (paper Listing 3), keyed by error type."""
    parts = [
        "/* Fix the SQL and answer the question */",
        f"#question: {question}",
        f"#Error SQL: {failed_sql}",
        f"Error: {error_kind}: {error_message}",
    ]
    if few_shots:
        parts.append("/* Correction examples for this error type */")
        parts.extend(few_shots)
    if values:
        parts.append("#values: " + "; ".join(values))
    parts.append("/* Database schema */")
    parts.append(schema_text)
    parts.append("#SQL:")
    return "\n".join(parts)


def cot_augment_prompt(question: str, sql: str, schema_text: str) -> str:
    """Self-taught few-shot upgrade prompt (paper §3.2): given a train
    Query-SQL pair, produce the intermediate CoT sections."""
    return "\n".join(
        [
            "/* Database schema */",
            schema_text,
            "/* Given the question and its SQL, explain the reasoning as "
            "#reason/#columns/#values/#SELECT/#SQL-like sections. */",
            f"/* Question: {question} */",
            f"#SQL: {sql}",
        ]
    )


def select_alignment_prompt(question: str, select_items: Sequence[str]) -> str:
    """Info Alignment prompt: match NLQ phrases to SELECT outputs 1:1."""
    items = "\n".join(f"- {item}" for item in select_items)
    return "\n".join(
        [
            "/* Extract the phrase of the question that corresponds to each "
            "SELECT output, one per line, keeping order. */",
            f"/* Question: {question} */",
            "/* SELECT outputs */",
            items,
        ]
    )
