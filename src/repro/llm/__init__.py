"""LLM substrate.

The paper runs on GPT-4o; this reproduction is offline, so the pipeline is
written against the :class:`LLMClient` protocol and ships with
:class:`SimulatedLLM` — a deterministic semantic "model" with explicit,
configurable hallucination channels (see DESIGN.md).  Every call renders a
real text prompt (token costs in Table 6 are measured on it); the simulator
additionally receives the structured task payload it needs to act, which a
real API-backed client would simply ignore.
"""

from repro.llm.base import (
    ChatTurn,
    LLMClient,
    LLMResponse,
    TokenUsage,
    count_tokens,
)
from repro.llm.skills import SkillProfile, GPT_4O, GPT_4O_MINI, GPT_4, skill_by_name
from repro.llm.tasks import (
    ColumnSelectionTask,
    CorrectionTask,
    CoTAugmentTask,
    EntityExtractionTask,
    GenerationTask,
    LLMTask,
    PromptFeatures,
    SelectAlignmentTask,
)
from repro.llm.simulated import SimulatedLLM

__all__ = [
    "ChatTurn",
    "ColumnSelectionTask",
    "CorrectionTask",
    "CoTAugmentTask",
    "EntityExtractionTask",
    "GPT_4",
    "GPT_4O",
    "GPT_4O_MINI",
    "GenerationTask",
    "LLMClient",
    "LLMResponse",
    "LLMTask",
    "PromptFeatures",
    "SelectAlignmentTask",
    "SimulatedLLM",
    "SkillProfile",
    "TokenUsage",
    "count_tokens",
    "skill_by_name",
]
