"""Core LLM interface types: responses, token accounting, client protocol."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

__all__ = ["TokenUsage", "ChatTurn", "LLMResponse", "LLMClient", "count_tokens"]

_TOKEN_PATTERN = re.compile(r"\w+|[^\w\s]")


def count_tokens(text: str) -> int:
    """Approximate token count of ``text``.

    Words and punctuation marks count one token each, plus a surcharge for
    long words (BPE splits them).  Close enough to GPT-style tokenizers for
    the cost accounting in Table 6; exactness is not required there.
    """
    tokens = 0
    for match in _TOKEN_PATTERN.finditer(text):
        piece = match.group()
        tokens += 1 + max(0, (len(piece) - 1) // 6)
    return tokens


@dataclass(frozen=True)
class TokenUsage:
    """Prompt/completion token counts for one or more LLM calls."""

    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        """Prompt plus completion tokens."""
        return self.prompt_tokens + self.completion_tokens

    def __add__(self, other: "TokenUsage") -> "TokenUsage":
        return TokenUsage(
            prompt_tokens=self.prompt_tokens + other.prompt_tokens,
            completion_tokens=self.completion_tokens + other.completion_tokens,
        )


@dataclass(frozen=True)
class ChatTurn:
    """One message of a chat prompt."""

    role: str  # "system" | "user" | "assistant"
    content: str


@dataclass(frozen=True)
class LLMResponse:
    """One completion: text plus accounting metadata."""

    text: str
    usage: TokenUsage = field(default_factory=TokenUsage)
    model: str = ""
    latency_seconds: float = 0.0


@runtime_checkable
class LLMClient(Protocol):
    """The protocol every model backend implements.

    ``complete`` returns ``n`` sampled completions for the prompt.  ``task``
    carries the structured payload of the request; API-backed clients must
    ignore it (everything needed is in the prompt text), while
    :class:`~repro.llm.simulated.SimulatedLLM` uses it to act without
    natural-language understanding.
    """

    model_name: str

    def complete(
        self,
        prompt: str,
        *,
        temperature: float = 0.0,
        n: int = 1,
        task: Optional[object] = None,
    ) -> list[LLMResponse]:
        ...
