"""The simulated LLM: a deterministic model with explicit error channels.

``SimulatedLLM`` stands in for GPT-4o.  Given a task payload it derives the
*intended* answer from the hidden oracle (the benchmark's gold SQL), then
degrades it through the hallucination channels of its
:class:`~repro.llm.skills.SkillProfile`.  Crucially, each channel's firing
probability is a function of what the prompt honestly contains
(:class:`~repro.llm.tasks.PromptFeatures`): retrieved values suppress the
value channel, a pruned schema shrinks the distractor set, few-shot and CoT
modes scale the structural channels.  Removing a pipeline module therefore
re-opens exactly the failure mode the paper's ablations attribute to it.

Determinism: all draws come from FNV-hashed keys of (seed, question,
channel, candidate), so identical configurations reproduce identical
benchmark tables.  Corruption *content* is keyed by question+channel only,
so a channel that fires on two candidates yields the same wrong SQL —
the property that shapes the self-consistency curves in Figure 4.

Concurrency: because every draw is derived per call from those hashed
keys (no shared mutable RNG), completions are order-independent — the
serving engine may interleave questions across worker threads and each
question still gets byte-identical output.  The parsed-gold cache is a
bounded, thread-safe :class:`~repro.caching.LRUCache`, so long serving
runs do not grow memory without limit.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.caching import LRUCache
from repro.datasets.types import Example
from repro.llm import noise
from repro.llm._noise_wrongcol import wrong_filter_column
from repro.llm.base import LLMResponse, TokenUsage, count_tokens
from repro.llm.skills import GPT_4O, SkillProfile
from repro.llm.tasks import (
    ColumnSelectionTask,
    CorrectionTask,
    CoTAugmentTask,
    EntityExtractionTask,
    GenerationTask,
    PromptFeatures,
    SelectAlignmentTask,
)
from repro.schema.joins import JoinPathError, assemble_select
from repro.schema.model import Database
from repro.sqlkit.ast import ColumnRef, FuncCall, Literal, Select, TableRef
from repro.sqlkit.parser import ParseError, parse_select
from repro.sqlkit.render import render, render_expr
from repro.sqlkit.sql_like import SQLLike, render_sql_like, select_to_sql_like
from repro.sqlkit.tokenizer import TokenizeError
from repro.sqlkit.transform import collect_column_refs

__all__ = ["SimulatedLLM", "hard_fail_scale", "CALL_OVERHEAD_SECONDS"]

#: Fixed per-invocation API overhead in the simulated latency model.  A
#: micro-batched invocation pays this once for the whole batch while the
#: per-token decode cost of its members overlaps (continuous batching),
#: which is what makes batching a throughput lever at all.
CALL_OVERHEAD_SECONDS = 0.4

def hard_fail_scale(example: Example, gold_like: SQLLike) -> float:
    """Structural complexity multiplier for the hard-fail channel.

    Dataset-agnostic: a one-table, trick-free, clean-value question (the
    Spider profile) scales low; a multi-join, evidence-dependent dirty
    question (BIRD's challenging bucket) scales past 2x.  Trick-family
    traits (semantic pitfalls) weigh more than style-family traits (which
    only affect surface form).
    """
    tables = len(gold_like.tables())
    dirty = any(m.is_dirty for m in example.value_mentions)
    tricks = sum(1 for t in example.traits if t in _TRICK_TRAITS)
    styles = sum(1 for t in example.traits if t in _STYLE_TRAITS)
    return (
        0.5
        + 0.40 * max(0, tables - 1)
        + 0.50 * tricks
        + 0.15 * styles
        + (0.50 if example.evidence else 0.0)
        + (0.35 if dirty else 0.0)
    )


_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1

#: trick-family traits handled by the trick_miss channel
_TRICK_TRAITS = ("needs_distinct", "date_format", "evidence_formula")
#: style-family traits handled by the style_break channel
_STYLE_TRAITS = ("nullable_min", "max_vs_limit")



class SimulatedLLM:
    """A deterministic LLM stand-in with configurable hallucination.

    ``complete`` dispatches on the attached task type; calling it without a
    recognized task raises, because a simulation cannot answer free text.
    """

    def __init__(
        self,
        skill: SkillProfile = GPT_4O,
        seed: int = 0,
        gold_cache_size: int = 4096,
    ):
        self.skill = skill
        self.seed = seed
        self.model_name = skill.name
        # Bounded: eviction only costs a deterministic re-parse, so long
        # serving runs stay flat in memory without changing any output.
        self._gold_cache = LRUCache(maxsize=gold_cache_size)
        self._syntax_cache: dict[str, str] = {}

    # ------------------------------------------------------------- helpers

    def _hash(self, *parts: object) -> int:
        value = _FNV_OFFSET
        data = "|".join([str(self.seed), self.skill.name, *map(str, parts)]).encode()
        for byte in data:
            value ^= byte
            value = (value * _FNV_PRIME) & _MASK
        # FNV-1a avalanches poorly on trailing-byte changes (candidate
        # indexes land at the end of the key), so finalize murmur3-style.
        value ^= value >> 33
        value = (value * 0xFF51AFD7ED558CCD) & _MASK
        value ^= value >> 33
        value = (value * 0xC4CEB9FE1A85EC53) & _MASK
        value ^= value >> 33
        return value

    def _uniform(self, *parts: object) -> float:
        return self._hash(*parts) / float(_MASK)

    def _content_rng(self, *parts: object) -> np.random.Generator:
        return np.random.default_rng(self._hash("content", *parts))

    def _gold(self, example: Example) -> tuple[Select, SQLLike]:
        cached = self._gold_cache.get(example.question_id)
        if cached is None:
            select = parse_select(example.gold_sql)
            cached = (select, select_to_sql_like(select))
            self._gold_cache.put(example.question_id, cached)
        return cached

    @staticmethod
    def _latency(prompt_tokens: int, completion_tokens: int) -> float:
        # Simulated wall-clock cost of an API call: fixed overhead plus
        # per-token decode time (reported, never slept).
        return (
            CALL_OVERHEAD_SECONDS + prompt_tokens * 4e-4 + completion_tokens * 0.02
        )

    def _respond(self, prompt: str, texts: list[str]) -> list[LLMResponse]:
        prompt_tokens = count_tokens(prompt)
        responses = []
        for index, text in enumerate(texts):
            completion_tokens = count_tokens(text)
            # The prompt is charged once per call (beam search shares it).
            charged = prompt_tokens if index == 0 else 0
            responses.append(
                LLMResponse(
                    text=text,
                    usage=TokenUsage(charged, completion_tokens),
                    model=self.model_name,
                    latency_seconds=self._latency(charged, completion_tokens),
                )
            )
        return responses

    # ----------------------------------------------------------------- API

    def complete(
        self,
        prompt: str,
        *,
        temperature: float = 0.0,
        n: int = 1,
        task: Optional[object] = None,
    ) -> list[LLMResponse]:
        """Produce ``n`` completions for the task attached to the prompt."""
        if isinstance(task, GenerationTask):
            texts = [
                self._generate_one(task, temperature, index) for index in range(n)
            ]
            return self._respond(prompt, texts)
        if isinstance(task, CoTAugmentTask):
            return self._respond(prompt, [self._cot_augment(task)])
        if isinstance(task, EntityExtractionTask):
            return self._respond(prompt, [self._extract_entities(task)])
        if isinstance(task, ColumnSelectionTask):
            return self._respond(prompt, [self._select_columns(task)])
        if isinstance(task, CorrectionTask):
            return self._respond(prompt, [self._correct(task, temperature)])
        if isinstance(task, SelectAlignmentTask):
            return self._respond(prompt, [self._align_select(task)])
        raise TypeError(
            "SimulatedLLM requires a structured task payload; got "
            f"{type(task).__name__}"
        )

    def complete_batch(
        self, calls: "list[dict]"
    ) -> "list[list[LLMResponse]]":
        """Answer several calls in one simulated backend invocation.

        Each element of ``calls`` is the keyword form of one
        :meth:`complete` call: ``{"prompt", "temperature", "n", "task"}``.
        Because every draw is keyed by (seed, question, channel,
        candidate) — never by call order — each member's responses are
        byte-identical to what a lone ``complete()`` would return, so
        per-request costs and answers are independent of how the micro-
        batcher happened to group concurrent traffic.  The batching win
        is purely temporal and is accounted by the caller: one
        :data:`CALL_OVERHEAD_SECONDS` for the invocation plus the
        *slowest* member's decode time (members decode in parallel).
        """
        return [
            self.complete(
                call["prompt"],
                temperature=call.get("temperature", 0.0),
                n=call.get("n", 1),
                task=call.get("task"),
            )
            for call in calls
        ]

    # ------------------------------------------------------ generation core

    def _generate_one(self, task: GenerationTask, temperature: float, index: int) -> str:
        example = task.oracle
        features = task.features
        skill = self.skill
        _gold_select, gold_like = self._gold(example)
        qid = example.question_id

        def draw(channel: str) -> float:
            # At temperature 0 every candidate shares one draw; above it the
            # draws are independent per candidate.
            candidate = index if temperature > 0 else "t0"
            return self._uniform(qid, channel, candidate)

        difficulty = skill.difficulty_scale(example.difficulty)
        fewshot = skill.fewshot_factor(features.fewshot_kind)
        if (
            features.fewshot_kind != "none"
            and example.template_id
            and example.template_id not in features.fewshot_template_ids
        ):
            # Few-shot from a different question family helps, but less.
            fewshot = math.sqrt(fewshot)
        cot = skill.cot_factor(features.cot_mode)

        statement = gold_like

        # Irreducible hard failure: drawn once per question, immune to
        # temperature; Query-CoT-SQL few-shot softens it slightly (the paper
        # credits few-shot with raising the model's ceiling).  The rate
        # scales with the question's *structural* complexity — join width,
        # trick count, evidence dependence, value dirtiness — which is what
        # separates BIRD-profile data from Spider-profile data.
        hard_p = min(
            0.9, skill.hard_fail_rate * hard_fail_scale(example, gold_like)
        ) * (0.88 if features.fewshot_kind == "query_cot_sql" else 1.0)
        if self._uniform(qid, "hard_fail") < hard_p:
            statement = self._hard_fail(statement, qid)

        # Value channel: one draw per dirty mention.
        for mention in example.value_mentions:
            provided = any(
                mention.stored in value for value in features.provided_values
            )
            if mention.is_dirty:
                ok_rate = (
                    skill.value_follow_rate if provided else skill.value_guess_rate
                )
                if draw(f"value:{mention.stored}") > ok_rate:
                    statement = noise.corrupt_value(statement, mention)
            # Value confusion: resolving the mention to a plausible-but-WRONG
            # stored value.  Correlated across candidates (the model misreads
            # consistently) and invisible to agent alignment because the
            # wrong value genuinely exists in the column; values retrieval
            # pins the right value and suppresses this almost entirely.
            confuse_p = (0.1 if provided else 1.0) * skill.value_confuse_rate
            if self._uniform(qid, f"vconf:{mention.stored}") < confuse_p * difficulty:
                wrong = self._confusable_value(task.schema, mention)
                if wrong is not None:
                    statement = self._swap_literal(statement, mention.stored, wrong)

        # Trick channels: a skill-dependent share of the miss probability
        # is correlated (the model consistently misreads the trick); the
        # rest is per-candidate sampling noise.  Voting fixes the noise —
        # unless the per-candidate rate crosses 0.5, in which case a large
        # vote locks the (identical-content) error in.
        share = skill.trick_correlated_share
        for trait in example.traits:
            if trait not in _TRICK_TRAITS:
                continue
            p = min(0.95, skill.trick_miss_rate * difficulty * fewshot * cot)
            fired = (
                self._uniform(qid, f"trickc:{trait}") < share * p
                or draw(f"trick:{trait}") < (1.0 - share) * p
            )
            if fired:
                statement = noise.miss_trick(
                    statement, trait, self._content_rng(qid, "trick", trait)
                )

        # Style channel — correlated: a model with a style drift drifts
        # consistently across samples, which is why Style Alignment (a rule,
        # not a vote) is the fix the paper reaches for.
        if any(trait in _STYLE_TRAITS for trait in example.traits):
            p = min(0.95, skill.style_break_rate * difficulty * fewshot)
            if self._uniform(qid, "style") < p:
                statement = noise.break_style(statement, self._content_rng(qid, "style"))

        # Aggregate misuse.
        if gold_like.order_by and not gold_like.group_by:
            p = min(0.9, skill.agg_misuse_rate * difficulty * cot)
            if draw("agg") < p:
                statement = noise.inject_agg_misuse(statement)

        # SELECT shape — correlated: the model's reading of "what outputs
        # does the question want" is stable across samples, which is why the
        # paper fixes it with Info Alignment hints rather than voting.
        if len(gold_like.items) > 1 or "max_vs_limit" in example.traits:
            p = skill.select_shape_rate * difficulty * cot
            if features.select_hints:
                p *= skill.select_hint_factor
            if self._uniform(qid, "shape") < min(0.9, p):
                statement = noise.break_select_shape(
                    statement, self._content_rng(qid, "shape")
                )

        # Column confusion driven by same-name distractors in the prompt.
        distractors = self._distractor_count(gold_like, task.schema)
        if distractors:
            p = 1.0 - (1.0 - skill.column_confusion_per_distractor) ** distractors
            if draw("column") < min(0.9, p * difficulty):
                statement = noise.misqualify_column(
                    statement, task.schema, self._content_rng(qid, "column")
                )

        # Wrong filter column: scales with how much irrelevant schema the
        # prompt shows — this is the channel column filtering exists to close.
        excess = max(0, features.schema_column_count - 10)
        p_wrong = min(0.5, skill.wrong_column_rate * excess / 100.0) * difficulty
        if p_wrong > 0 and self._uniform(qid, "wrongcol") < p_wrong:
            statement = wrong_filter_column(
                statement, task.schema, self._content_rng(qid, "wrongcol")
            )

        # Assemble the full SQL through the prompt schema's FK graph.
        sql_text, assembled = self._assemble(statement, task.schema, qid)

        if assembled is not None and assembled.joins:
            extra_tables = max(0, features.schema_table_count - 1)
            p = min(0.6, skill.join_error_per_table * extra_tables * difficulty)
            if draw("join") < p:
                assembled = noise.corrupt_join(
                    assembled, task.schema, self._content_rng(qid, "join")
                )
                sql_text = render(assembled)

        # Syntax channel: the base component is correlated (a query shape
        # the model consistently fumbles — only Correction can fix it); the
        # temperature component is per-candidate sampling noise.
        base_fired = self._uniform(qid, "syntax_base") < skill.syntax_error_base * 2
        temp_fired = draw("syntax") < skill.syntax_error_temp_slope * temperature
        if base_fired or temp_fired:
            broken = noise.corrupt_syntax(sql_text, self._content_rng(qid, "syntax"))
            if broken != sql_text:
                self._syntax_cache[broken] = sql_text
                sql_text = broken

        return self._render_cot(example, statement, sql_text, features.cot_mode)

    def _hard_fail(self, statement: SQLLike, qid: str) -> SQLLike:
        """A semantically wrong — but executable — misreading of the
        question: drop a filter, swap the aggregate, flip a comparison or
        sort direction.  Tries mutations in an rng-chosen order and returns
        the first one that actually changes the statement, so a hard-fail
        draw always produces a wrong query."""
        from repro.sqlkit.ast import BinaryOp, Star

        rng = self._content_rng(qid, "hard_fail")

        def drop_filter(stmt: SQLLike) -> SQLLike:
            from repro.sqlkit.ast import IsNull

            conjuncts = [
                c
                for c in noise._where_conjuncts(stmt.where)
                if not isinstance(c, IsNull)  # NULL guards rarely change results
            ]
            if not conjuncts:
                return stmt
            victim = conjuncts[int(rng.integers(len(conjuncts)))]
            return stmt.with_(where=noise._drop_conjunct(stmt.where, victim))

        def swap_agg(stmt: SQLLike) -> SQLLike:
            swaps = {"COUNT": "SUM", "SUM": "COUNT", "AVG": "SUM", "MAX": "MIN", "MIN": "MAX"}
            state = {"done": False}

            def swap(expr):
                if (
                    not state["done"]
                    and isinstance(expr, FuncCall)
                    and expr.name in swaps
                    and not any(isinstance(arg, Star) for arg in expr.args)
                ):
                    state["done"] = True
                    return FuncCall(swaps[expr.name], expr.args, distinct=expr.distinct)
                return None

            return noise.map_sql_like(stmt, swap)

        def flip_comparison(stmt: SQLLike) -> SQLLike:
            flips = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "<>"}
            state = {"done": False}

            def flip(expr):
                if (
                    not state["done"]
                    and isinstance(expr, BinaryOp)
                    and expr.op in flips
                ):
                    state["done"] = True
                    return BinaryOp(flips[expr.op], expr.left, expr.right)
                return None

            return noise.map_sql_like(stmt, flip)

        def flip_order(stmt: SQLLike) -> SQLLike:
            if not stmt.order_by:
                return stmt
            first = stmt.order_by[0]
            flipped = first.__class__(expr=first.expr, desc=not first.desc)
            return stmt.with_(order_by=(flipped,) + stmt.order_by[1:])

        # Prefer mutations that reliably change the result set: flipping
        # the sort direction of a LIMIT query, dropping a real filter, or
        # flipping a comparison; aggregate swaps go last.
        preferred = []
        if statement.order_by and statement.limit is not None:
            preferred.append(flip_order)
        preferred.extend([drop_filter, flip_comparison, swap_agg])
        start = int(rng.integers(2)) if len(preferred) > 2 else 0
        mutations = preferred[start:] + preferred[:start]
        for mutation in mutations:
            mutated = mutation(statement)
            if mutated != statement:
                return mutated
        return statement

    def _confusable_value(self, schema: Database, mention) -> Optional[str]:
        """A different stored value of the mention's column (from the schema
        prompt's value examples), or None when none is known."""
        if not schema.has_table(mention.table):
            return None
        table = schema.table(mention.table)
        if not table.has_column(mention.column):
            return None
        examples = [
            v
            for v in table.column(mention.column).value_examples
            if v != mention.stored
        ]
        if not examples:
            return None
        rng = self._content_rng(mention.table, mention.column, mention.stored, "vconf")
        return examples[int(rng.integers(len(examples)))]

    @staticmethod
    def _swap_literal(statement: SQLLike, old_value: str, new_value: str) -> SQLLike:
        def swap(expr):
            if (
                isinstance(expr, Literal)
                and expr.kind == "string"
                and expr.value == old_value
            ):
                return Literal.string(new_value)
            return None

        return noise.map_sql_like(statement, swap)

    def _distractor_count(self, statement: SQLLike, schema: Database) -> int:
        total = 0
        seen: set[str] = set()
        for table_name in statement.tables():
            pass  # tables handled through column refs below
        for item in statement.items:
            for ref in collect_column_refs(item.expr):
                seen.add(ref.column.lower())
        for part in (statement.where, statement.having):
            if part is not None:
                for ref in collect_column_refs(part):
                    seen.add(ref.column.lower())
        for column_name in seen:
            matches = schema.same_name_columns(column_name)
            if len(matches) > 1:
                total += len(matches) - 1
        return total

    def _assemble(
        self, statement: SQLLike, schema: Database, qid: str
    ) -> tuple[str, Optional[Select]]:
        """Assemble SQL-Like into SQL through the prompt schema; when the
        schema cannot support it (over-pruned), emit the broken single-table
        query a confused model would produce."""
        try:
            assembled = assemble_select(schema, statement)
            return render(assembled), assembled
        except (JoinPathError, KeyError):
            tables = statement.tables()
            anchor = None
            for name in tables:
                if schema.has_table(name):
                    anchor = schema.table(name).name
                    break
            if anchor is None and schema.tables:
                anchor = schema.tables[0].name
            broken = Select(
                items=statement.items,
                from_table=TableRef(name=anchor or "missing_table"),
                where=statement.where,
                group_by=statement.group_by,
                having=statement.having,
                order_by=statement.order_by,
                limit=statement.limit,
                distinct=statement.distinct,
            )
            return render(broken), None

    # --------------------------------------------------------- CoT rendering

    def _render_cot(
        self, example: Example, statement: SQLLike, sql_text: str, cot_mode: str
    ) -> str:
        if cot_mode == "none":
            return f"#SQL: {sql_text}"
        if cot_mode == "unstructured":
            return (
                f"Let's think step by step. The question asks: {example.question} "
                f"We look up the relevant tables and columns, apply the filters, "
                f"and write the query.\n#SQL: {sql_text}"
            )
        columns = sorted(
            {
                ref.qualified
                for item in statement.items
                for ref in collect_column_refs(item.expr)
            }
            | {
                ref.qualified
                for part in (statement.where, statement.having)
                if part is not None
                for ref in collect_column_refs(part)
            }
        )
        values = (
            render_expr(statement.where) if statement.where is not None else "none"
        )
        select_text = ", ".join(render_expr(item.expr) for item in statement.items)
        return "\n".join(
            [
                f"#reason: The question asks: {example.question} "
                "We identify the needed tables, columns and filters, then build "
                "the SQL from the SQL-like skeleton.",
                f"#columns: {', '.join(columns) if columns else 'none'}",
                f"#values: {values}",
                f"#SELECT: {select_text}",
                f"#SQL-like: {render_sql_like(statement)}",
                f"#SQL: {sql_text}",
            ]
        )

    # ------------------------------------------------------------- other tasks

    def _cot_augment(self, task: CoTAugmentTask) -> str:
        """Self-taught CoT for a train pair: derived from the gold SQL, so
        it is faithful (the paper trusts the LLM with gold SQL in hand)."""
        example = task.example
        _select, statement = self._gold(example)
        return self._render_cot(example, statement, example.gold_sql, "structured")

    def _extract_entities(self, task: EntityExtractionTask) -> str:
        example = task.example
        lines: list[str] = []
        for mention in example.value_mentions:
            if self._uniform(example.question_id, "entity", mention.surface) < (
                1.0 - self.skill.entity_miss_rate
            ):
                lines.append(mention.surface)
        # Generic noun-ish phrases: longest words of the question (the model
        # would also extract concepts used for column retrieval).
        words = [w.strip(",.?!'\"") for w in example.question.split()]
        interesting = [w for w in words if len(w) >= 5][:4]
        lines.extend(interesting)
        if example.evidence:
            lines.extend(w for w in example.evidence.split() if len(w) >= 7)
        deduped: dict[str, None] = {}
        for line in lines:
            if line and line not in deduped:
                deduped[line] = None
        return "\n".join(deduped)

    def _select_columns(self, task: ColumnSelectionTask) -> str:
        example = task.example
        _select, statement = self._gold(example)
        qid = example.question_id
        needed: dict[str, None] = {}
        for part in (
            [i.expr for i in statement.items],
            [statement.where, statement.having],
            list(statement.group_by),
            [o.expr for o in statement.order_by],
        ):
            for node in part:
                if node is None:
                    continue
                for ref in collect_column_refs(node):
                    if ref.table:
                        needed[f"{ref.table}.{ref.column}"] = None

        lines: list[str] = []
        for qualified in needed:
            if self._uniform(qid, "colsel", qualified) < self.skill.column_recall:
                lines.append(qualified)
        # Spurious extras the model also selects.
        rng = self._content_rng(qid, "colsel_extra")
        extra_count = int(rng.poisson(self.skill.column_extra_mean))
        all_columns = [
            f"{table.name}.{column.name}" for table, column in task.schema.iter_columns()
        ]
        for _ in range(extra_count):
            if not all_columns:
                break
            candidate = all_columns[int(rng.integers(len(all_columns)))]
            if candidate not in lines:
                lines.append(candidate)
        return "\n".join(lines)

    def _align_select(self, task: SelectAlignmentTask) -> str:
        example = task.oracle
        _select, statement = self._gold(example)
        lines = []
        for index, item in enumerate(statement.items, start=1):
            lines.append(f"{index}. {render_expr(item.expr)}")
        return "\n".join(lines)

    # -------------------------------------------------------------- correction

    def _correct(self, task: CorrectionTask, temperature: float) -> str:
        example = task.oracle
        skill = self.skill
        qid = example.question_id
        fix_rate = skill.correction_fix_rate.get(task.error_kind, 0.4)
        if task.features.fewshot_kind == "none":
            fix_rate *= skill.correction_no_fewshot_factor

        def fixed(channel: str) -> bool:
            return self._uniform(qid, "fix", channel, task.failed_sql[:40]) < fix_rate

        # Syntax errors: the model "remembers" what it meant.
        clean = self._syntax_cache.get(task.failed_sql)
        if clean is not None:
            if fixed("syntax"):
                return f"#SQL: {clean}"
            return f"#SQL: {task.failed_sql}"

        try:
            failed = parse_select(task.failed_sql)
        except (ParseError, TokenizeError):
            return f"#SQL: {task.failed_sql}"

        statement = select_to_sql_like(failed)
        _gold_select, gold_like = self._gold(example)
        changed = False

        # Dirty-value repair: needs the stored values in the prompt.
        if task.error_kind in ("empty", "other_error"):
            for mention in example.value_mentions:
                if not mention.is_dirty:
                    continue
                provided = any(
                    mention.stored in value for value in task.features.provided_values
                )
                rate = fix_rate if provided else fix_rate * 0.3
                if self._uniform(qid, "fixval", mention.stored) < rate:
                    reverse = noise.corrupt_value  # surface -> stored via swap
                    from repro.datasets.types import ValueMention

                    back = ValueMention(
                        surface=mention.stored,
                        stored=mention.surface,
                        table=mention.table,
                        column=mention.column,
                    )
                    repaired = noise.corrupt_value(statement, back)
                    if repaired != statement:
                        statement = repaired
                        changed = True

        # Unknown function (YEAR) or missing column repair.
        if task.error_kind in ("missing_column", "other_error", "ambiguous_column"):
            if fixed("structure"):
                statement = self._repair_structure(statement, gold_like, task.schema)
                changed = True

        # Join/timeout repair happens by re-assembling through the FK graph;
        # semantic misreadings (the hard-fail channel) are untouched — no
        # amount of execution feedback reveals them.
        try:
            assembled = assemble_select(task.schema, statement)
            sql_text = render(assembled)
        except (JoinPathError, KeyError):
            sql_text = task.failed_sql
        return f"#SQL: {sql_text}"

    def _repair_structure(
        self, statement: SQLLike, gold_like: SQLLike, schema: Database
    ) -> SQLLike:
        """Fix YEAR() calls and mis-qualified columns against the schema."""

        def fix(expr):
            if isinstance(expr, FuncCall) and expr.name == "YEAR" and len(expr.args) == 1:
                return FuncCall(
                    "STRFTIME", (Literal.string("%Y"), expr.args[0])
                )
            if isinstance(expr, ColumnRef) and expr.table:
                if schema.has_table(expr.table) and schema.table(expr.table).has_column(
                    expr.column
                ):
                    return None
                # Re-qualify to the gold table for this column if possible.
                for ref in _gold_refs(gold_like):
                    if ref.column.lower() == expr.column.lower() and ref.table:
                        return ColumnRef(column=ref.column, table=ref.table)
            return None

        return noise.map_sql_like(statement, fix)


def _gold_refs(statement: SQLLike) -> list[ColumnRef]:
    refs: list[ColumnRef] = []
    for part in (
        [i.expr for i in statement.items],
        [statement.where, statement.having],
        list(statement.group_by),
        [o.expr for o in statement.order_by],
    ):
        for node in part:
            if node is not None:
                refs.extend(collect_column_refs(node))
    return refs
