"""Hallucination operators: pure SQL-Like → SQL-Like corruptions.

Each operator realises one hallucination channel from DESIGN.md.  They are
deterministic functions of (statement, rng) so that a channel that fires on
two different candidates of the same question produces the *same* wrong
query — which is what makes self-consistency voting behave the way the
paper observed (independent noise is voted away; repeated noise is not).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.datasets.types import ValueMention
from repro.schema.model import Database
from repro.sqlkit.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    IsNull,
    Join,
    Literal,
    Select,
    SelectItem,
)
from repro.sqlkit.sql_like import SQLLike
from repro.sqlkit.transform import (
    collect_column_refs,
    map_expressions,
    walk_expressions,
)

__all__ = [
    "map_sql_like",
    "corrupt_value",
    "misqualify_column",
    "inject_agg_misuse",
    "break_style",
    "break_select_shape",
    "miss_trick",
    "corrupt_syntax",
    "corrupt_join",
]


def map_sql_like(sql_like: SQLLike, fn) -> SQLLike:
    """Apply an expression mapper to every clause of a SQL-Like statement."""

    def convert(expr: Optional[Expr]) -> Optional[Expr]:
        if expr is None:
            return None
        return map_expressions(expr, fn)  # type: ignore[return-value]

    return sql_like.with_(
        items=tuple(
            SelectItem(expr=convert(i.expr), alias=i.alias) for i in sql_like.items
        ),
        where=convert(sql_like.where),
        group_by=tuple(convert(e) for e in sql_like.group_by),
        having=convert(sql_like.having),
        order_by=tuple(
            o.__class__(expr=convert(o.expr), desc=o.desc) for o in sql_like.order_by
        ),
    )


# --------------------------------------------------------------------- value


def corrupt_value(sql_like: SQLLike, mention: ValueMention) -> SQLLike:
    """Replace the stored literal with the question's surface form —
    the classic dirty-value hallucination ('John' vs 'JOHN')."""

    def swap(expr: Expr) -> Optional[Expr]:
        if isinstance(expr, Literal) and expr.kind == "string" and expr.value == mention.stored:
            return Literal.string(mention.surface)
        return None

    return map_sql_like(sql_like, swap)


# -------------------------------------------------------------------- schema


def misqualify_column(
    sql_like: SQLLike, prompt_schema: Database, rng: np.random.Generator
) -> SQLLike:
    """Re-qualify one column to a same-named column of a different table
    that the prompt schema also shows (the same-name-column trap)."""
    refs = [
        ref
        for ref in _all_column_refs(sql_like)
        if ref.table is not None
    ]
    candidates: list[tuple[ColumnRef, str]] = []
    for ref in refs:
        for table_name, _col in prompt_schema.same_name_columns(ref.column):
            if table_name.lower() != (ref.table or "").lower():
                candidates.append((ref, table_name))
    if not candidates:
        return sql_like
    target_ref, wrong_table = candidates[int(rng.integers(len(candidates)))]

    state = {"done": False}

    def swap(expr: Expr) -> Optional[Expr]:
        if (
            not state["done"]
            and isinstance(expr, ColumnRef)
            and expr == target_ref
        ):
            state["done"] = True
            return ColumnRef(column=expr.column, table=wrong_table)
        return None

    return map_sql_like(sql_like, swap)


def _all_column_refs(sql_like: SQLLike) -> list[ColumnRef]:
    refs: list[ColumnRef] = []
    for part in (
        [i.expr for i in sql_like.items],
        [sql_like.where],
        list(sql_like.group_by),
        [sql_like.having],
        [o.expr for o in sql_like.order_by],
    ):
        for node in part:
            if node is not None:
                refs.extend(collect_column_refs(node))
    return refs


# ----------------------------------------------------------------- structure


def inject_agg_misuse(sql_like: SQLLike) -> SQLLike:
    """Wrap the first ORDER BY expression in MAX(...) without a GROUP BY —
    the paper's Function Alignment example (ORDER BY MAX(score))."""
    if not sql_like.order_by or sql_like.group_by:
        return sql_like
    first = sql_like.order_by[0]
    if isinstance(first.expr, FuncCall) and first.expr.is_aggregate:
        return sql_like
    wrapped = first.__class__(expr=FuncCall("MAX", (first.expr,)), desc=first.desc)
    return sql_like.with_(order_by=(wrapped,) + sql_like.order_by[1:])


def break_style(sql_like: SQLLike, rng: np.random.Generator) -> SQLLike:
    """Break dataset style (the paper's Style Alignment examples).

    Two drifts, chosen at random: (a) drop an ``IS NOT NULL`` guard on the
    ordering column; (b) the MAX-vs-LIMIT drift — rewrite
    ``SELECT col ... ORDER BY x DESC LIMIT 1`` as ``SELECT col, MAX(x)``,
    which changes the output shape (and silently relies on SQLite's
    bare-column-with-aggregate quirk).
    """
    can_maxify = (
        sql_like.limit == 1
        and not sql_like.offset
        and len(sql_like.order_by) == 1
        and not sql_like.group_by
        and len(sql_like.items) == 1
        and not isinstance(sql_like.items[0].expr, FuncCall)
    )
    if can_maxify and rng.random() < 0.5:
        order = sql_like.order_by[0]
        agg = FuncCall("MAX" if order.desc else "MIN", (order.expr,))
        return sql_like.with_(
            items=sql_like.items + (SelectItem(expr=agg),),
            order_by=(),
            limit=None,
        )
    guards = [
        expr
        for expr in _where_conjuncts(sql_like.where)
        if isinstance(expr, IsNull) and expr.negated
    ]
    if not guards:
        return sql_like
    victim = guards[int(rng.integers(len(guards)))]
    new_where = _drop_conjunct(sql_like.where, victim)
    return sql_like.with_(where=new_where)


def _where_conjuncts(expr: Optional[Expr]) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _where_conjuncts(expr.left) + _where_conjuncts(expr.right)
    return [expr]


def _drop_conjunct(expr: Optional[Expr], victim: Expr) -> Optional[Expr]:
    if expr is None:
        return None
    if expr == victim:
        return None
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        left = _drop_conjunct(expr.left, victim)
        right = _drop_conjunct(expr.right, victim)
        if left is None:
            return right
        if right is None:
            return left
        if left is expr.left and right is expr.right:
            return expr
        return BinaryOp("AND", left, right)
    return expr


def break_select_shape(sql_like: SQLLike, rng: np.random.Generator) -> SQLLike:
    """Corrupt the SELECT list: drop an item, or append a spurious one.

    On ``ORDER BY ... LIMIT 1`` superlative queries the spurious item is
    the ordering column itself — the classic "SELECT name, MAX(score)"
    drift the paper's Style Alignment discusses.
    """
    items = sql_like.items
    if len(items) > 1 and rng.random() < 0.5:
        drop = int(rng.integers(len(items)))
        return sql_like.with_(items=items[:drop] + items[drop + 1 :])
    if sql_like.order_by:
        extra = SelectItem(expr=sql_like.order_by[0].expr)
        if all(item.expr != extra.expr for item in items):
            return sql_like.with_(items=items + (extra,))
    if len(items) > 1:
        reordered = (items[-1],) + items[:-1]
        return sql_like.with_(items=reordered)
    return sql_like


# -------------------------------------------------------------------- tricks


def miss_trick(sql_like: SQLLike, trait: str, rng: np.random.Generator) -> SQLLike:
    """Realize a trick-miss for the given trait; unknown traits no-op."""
    if trait == "needs_distinct":
        return _drop_distinct(sql_like)
    if trait == "date_format":
        return _break_date(sql_like, rng)
    if trait == "evidence_formula":
        return _break_formula(sql_like, rng)
    if trait in ("nullable_min", "max_vs_limit"):
        # Style-family traits: handled by break_style/break_select_shape.
        return break_style(sql_like, rng)
    return sql_like


def _drop_distinct(sql_like: SQLLike) -> SQLLike:
    def strip(expr: Expr) -> Optional[Expr]:
        if isinstance(expr, FuncCall) and expr.distinct:
            return replace(expr, distinct=False)
        return None

    stripped = map_sql_like(sql_like, strip)
    if stripped == sql_like and sql_like.distinct:
        return sql_like.with_(distinct=False)
    return stripped


def _break_date(sql_like: SQLLike, rng: np.random.Generator) -> SQLLike:
    """Either use a non-SQLite YEAR() function (execution error) or compare
    the strftime text to a bare number (silently wrong in SQLite)."""
    use_year_fn = rng.random() < 0.5

    def swap(expr: Expr) -> Optional[Expr]:
        if (
            use_year_fn
            and isinstance(expr, FuncCall)
            and expr.name == "STRFTIME"
            and len(expr.args) == 2
        ):
            return FuncCall("YEAR", (expr.args[1],))
        if (
            not use_year_fn
            and isinstance(expr, BinaryOp)
            and isinstance(expr.left, FuncCall)
            and expr.left.name == "STRFTIME"
            and isinstance(expr.right, Literal)
            and expr.right.kind == "string"
        ):
            try:
                number = int(str(expr.right.value))
            except ValueError:
                return None
            return BinaryOp(expr.op, expr.left, Literal.number(number))
        return None

    return map_sql_like(sql_like, swap)


def _break_formula(sql_like: SQLLike, rng: np.random.Generator) -> SQLLike:
    """Misapply the evidence formula: perturb the first numeric bound."""
    literals = [
        expr
        for expr in _walk_all(sql_like)
        if isinstance(expr, Literal) and expr.kind == "number"
    ]
    if not literals:
        return sql_like
    victim = literals[int(rng.integers(len(literals)))]
    factor = 10 if rng.random() < 0.5 else 0.1
    new_value = victim.value * factor if victim.value else victim.value + 1
    if isinstance(victim.value, int) and float(new_value).is_integer():
        new_value = int(new_value)
    state = {"done": False}

    def swap(expr: Expr) -> Optional[Expr]:
        if not state["done"] and expr is not victim and expr == victim:
            # Equality may catch sibling literals with identical values;
            # identity-first replacement below handles the common case.
            pass
        if not state["done"] and expr == victim:
            state["done"] = True
            return Literal.number(new_value)
        return None

    return map_sql_like(sql_like, swap)


def _walk_all(sql_like: SQLLike):
    for part in (
        [i.expr for i in sql_like.items],
        [sql_like.where],
        list(sql_like.group_by),
        [sql_like.having],
        [o.expr for o in sql_like.order_by],
    ):
        for node in part:
            if node is not None:
                yield from walk_expressions(node)


# -------------------------------------------------------------------- syntax


def corrupt_syntax(sql_text: str, rng: np.random.Generator) -> str:
    """Corrupt SQL text so it no longer parses/executes."""
    choice = int(rng.integers(3))
    if choice == 0 and "(" in sql_text:
        index = sql_text.rfind(")")
        if index != -1:
            return sql_text[:index] + sql_text[index + 1 :]
    if choice == 1:
        return sql_text.replace("SELECT", "SELECT SELECT", 1)
    return sql_text + " WHERE"


# ---------------------------------------------------------------------- join


def corrupt_join(select: Select, database: Database, rng: np.random.Generator) -> Select:
    """Swap one join-condition column for a different column of the same
    table — the wrong-join-path hallucination."""
    if not select.joins:
        return select
    join_index = int(rng.integers(len(select.joins)))
    join = select.joins[join_index]
    if join.condition is None or not isinstance(join.condition, BinaryOp):
        return select
    condition = join.condition
    if not isinstance(condition.right, ColumnRef):
        return select
    binding = condition.right.table
    real_table = _table_for_binding(select, database, binding)
    if real_table is None:
        return select
    alternatives = [
        col.name
        for col in database.table(real_table).columns
        if col.name.lower() != condition.right.column.lower()
    ]
    if not alternatives:
        return select
    wrong = alternatives[int(rng.integers(len(alternatives)))]
    new_condition = BinaryOp(
        condition.op,
        condition.left,
        ColumnRef(column=wrong, table=binding),
    )
    new_joins = list(select.joins)
    new_joins[join_index] = Join(
        table=join.table, kind=join.kind, condition=new_condition
    )
    return select.with_(joins=tuple(new_joins))


def _table_for_binding(select: Select, database: Database, binding: Optional[str]) -> Optional[str]:
    if binding is None:
        return None
    for table in select.tables():
        if table.binding.lower() == binding.lower() and table.name:
            if database.has_table(table.name):
                return table.name
    return None
