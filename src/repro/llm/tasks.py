"""Structured task payloads accompanying LLM calls.

Every pipeline stage renders a real text prompt AND attaches one of these
task objects.  A production client would ignore the task (the prompt text
is self-contained); :class:`~repro.llm.simulated.SimulatedLLM` instead
reads the task, because a simulation cannot do natural-language
understanding.  Crucially the task only ever describes *what the prompt
honestly contains* (``PromptFeatures``) plus the hidden oracle — the
simulation seam is confined to ``oracle``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.types import Example
from repro.schema.model import Database

__all__ = [
    "PromptFeatures",
    "LLMTask",
    "CoTAugmentTask",
    "EntityExtractionTask",
    "ColumnSelectionTask",
    "GenerationTask",
    "CorrectionTask",
    "SelectAlignmentTask",
]


@dataclass(frozen=True)
class PromptFeatures:
    """What the rendered prompt actually contains.

    The simulated model's error-channel probabilities are functions of
    these features — e.g. ``values_provided`` suppresses the value-mismatch
    channel exactly when the pipeline really retrieved and included the
    stored values.  The pipeline must fill this truthfully from the prompt
    it built; the invariant is tested.
    """

    #: stored values included in the prompt, as "table.column = 'value'"
    provided_values: tuple[str, ...] = ()
    #: number of columns in the schema block shown to the model
    schema_column_count: int = 0
    #: number of tables in the schema block
    schema_table_count: int = 0
    #: few-shot style: "none" | "query_sql" | "query_cot_sql" |
    #: "query_skeleton_sql"
    fewshot_kind: str = "none"
    #: template families covered by the few-shot examples shown
    fewshot_template_ids: tuple[str, ...] = ()
    #: CoT instruction style: "none" | "unstructured" | "structured"
    cot_mode: str = "structured"
    #: SELECT-style hints from Info Alignment were included
    select_hints: bool = False
    #: whether the schema block is the full database or a filtered subset
    schema_filtered: bool = False


class LLMTask:
    """Marker base class for task payloads."""


@dataclass(frozen=True)
class CoTAugmentTask(LLMTask):
    """Preprocessing: turn a train-split (question, SQL) pair into CoT text
    (the self-taught Query-CoT-SQL upgrade, paper §3.2)."""

    example: Example
    schema: Database


@dataclass(frozen=True)
class EntityExtractionTask(LLMTask):
    """Extraction: pull candidate entities/value phrases out of the NLQ."""

    example: Example
    schema: Database


@dataclass(frozen=True)
class ColumnSelectionTask(LLMTask):
    """Extraction: select relevant tables/columns from the full schema."""

    example: Example
    schema: Database


@dataclass(frozen=True)
class GenerationTask(LLMTask):
    """Generation: produce structured-CoT text ending in a SQL query."""

    oracle: Example
    schema: Database
    features: PromptFeatures


@dataclass(frozen=True)
class CorrectionTask(LLMTask):
    """Refinement: repair a failed SQL given its execution error."""

    oracle: Example
    schema: Database
    features: PromptFeatures
    failed_sql: str
    error_kind: str  # an ExecutionStatus value string
    error_message: str = ""


@dataclass(frozen=True)
class SelectAlignmentTask(LLMTask):
    """Info Alignment: extract NLQ phrases matching each SELECT output."""

    oracle: Example
    schema: Database
