"""The eight baseline systems from the paper's Table 2/3.

Each factory documents the mapping from the original system's published
architecture onto our shared stage implementations.  All baselines run on
the simulated GPT-4 / GPT-4o skill profiles, mirroring the paper's setup
where every method runs on the same model family and only the pipeline
differs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.base import BaselineSystem, build_baseline
from repro.core.config import PipelineConfig
from repro.datasets.build import Benchmark
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4, GPT_4O

__all__ = [
    "ZeroShotGPT4",
    "DINSQL",
    "DAILSQL",
    "MACSQL",
    "MCSSQL",
    "C3SQL",
    "CHESS",
    "Distillery",
    "all_baselines",
]

#: Distillery fine-tunes GPT-4o on text-to-SQL data; SFT narrows every
#: hallucination channel but does not add retrieval or voting machinery.
SFT_GPT_4O = replace(
    GPT_4O,
    name="gpt-4o-sft",
    trick_miss_rate=0.30,
    style_break_rate=0.25,
    select_shape_rate=0.12,
    hard_fail_rate=0.17,
    wrong_column_rate=0.7,
    value_guess_rate=0.93,
    agg_misuse_rate=0.05,
)


def ZeroShotGPT4(benchmark: Benchmark, seed: int = 0) -> BaselineSystem:
    """GPT-4 zero-shot (paper baseline 1): one prompt with the full
    schema, no few-shot, no retrieval, no post-processing."""
    config = PipelineConfig(
        n_candidates=1,
        use_extraction=False,
        use_alignments=False,
        use_refinement=False,
        use_correction=False,
        use_self_consistency=False,
        fewshot_style="none",
        cot_mode="none",
        seed=seed,
    )
    return build_baseline(
        "GPT-4", benchmark, SimulatedLLM(GPT_4, seed=seed), config,
        description="zero-shot text-to-SQL prompt",
    )


def DINSQL(benchmark: Benchmark, seed: int = 0) -> BaselineSystem:
    """DIN-SQL: schema linking + question classification/decomposition +
    self-correction.  Mapped as column filtering + unstructured CoT +
    one untyped correction round; no value retrieval, no voting."""
    config = PipelineConfig(
        n_candidates=1,
        use_values_retrieval=False,
        use_info_alignment=False,
        use_alignments=False,
        use_self_consistency=False,
        refinement_fewshot=False,
        fewshot_style="none",  # DIN's exemplars are static, not retrieved
        cot_mode="unstructured",
        seed=seed,
    )
    return build_baseline(
        "DIN-SQL + GPT-4", benchmark, SimulatedLLM(GPT_4, seed=seed), config,
        description="decomposed in-context learning with self-correction",
    )


def DAILSQL(benchmark: Benchmark, seed: int = 0) -> BaselineSystem:
    """DAIL-SQL: masked-question-similarity few-shot selection over the
    train set (the mechanism our dynamic few-shot generalizes), full
    schema, single SQL, no refinement."""
    config = PipelineConfig(
        n_candidates=1,
        use_extraction=False,
        use_alignments=False,
        use_refinement=False,
        use_correction=False,
        use_self_consistency=False,
        fewshot_style="query_sql",
        n_few_shot=5,
        cot_mode="none",
        seed=seed,
    )
    return build_baseline(
        "DAIL-SQL + GPT-4", benchmark, SimulatedLLM(GPT_4, seed=seed), config,
        description="similarity-selected Query-SQL few-shot",
    )


def MACSQL(benchmark: Benchmark, seed: int = 0) -> BaselineSystem:
    """MAC-SQL: selector (sub-database = column filtering), decomposer
    (unstructured CoT) and refiner (execution-guided correction) agents."""
    config = PipelineConfig(
        n_candidates=1,
        use_values_retrieval=False,
        use_info_alignment=False,
        use_alignments=False,
        use_self_consistency=False,
        refinement_fewshot=False,
        fewshot_style="query_sql",
        n_few_shot=3,
        cot_mode="unstructured",
        max_correction_rounds=2,
        seed=seed,
    )
    return build_baseline(
        "MAC-SQL + GPT-4", benchmark, SimulatedLLM(GPT_4, seed=seed), config,
        description="selector/decomposer/refiner multi-agent collaboration",
    )


def MCSSQL(benchmark: Benchmark, seed: int = 0) -> BaselineSystem:
    """MCS-SQL: multiple prompts generating a candidate pool + multiple-
    choice selection.  Mapped as schema linking + plain few-shot + a
    15-candidate self-consistency vote."""
    config = PipelineConfig(
        n_candidates=15,
        use_values_retrieval=False,
        use_info_alignment=False,
        use_alignments=False,
        use_correction=False,
        fewshot_style="query_sql",
        n_few_shot=5,
        cot_mode="unstructured",
        seed=seed,
    )
    return build_baseline(
        "MCS-SQL + GPT-4", benchmark, SimulatedLLM(GPT_4, seed=seed), config,
        description="multiple prompts + multiple-choice selection",
    )


def C3SQL(benchmark: Benchmark, seed: int = 0) -> BaselineSystem:
    """C3-SQL: zero-shot ChatGPT with Clear Prompting (column filtering),
    Calibration with Hints, and Consistent Output (small vote)."""
    config = PipelineConfig(
        n_candidates=7,
        use_values_retrieval=False,
        use_info_alignment=False,
        use_alignments=False,
        use_correction=False,
        fewshot_style="none",
        cot_mode="none",
        seed=seed,
    )
    return build_baseline(
        "C3 + ChatGPT", benchmark, SimulatedLLM(GPT_4, seed=seed), config,
        description="clear prompting + calibration + consistent output",
    )


def CHESS(benchmark: Benchmark, seed: int = 0) -> BaselineSystem:
    """CHESS: entity/context retrieval (values retrieval), aggressive
    schema pruning (column filtering) and a revision loop (correction);
    no dynamic few-shot, no CoT structure, modest candidate count."""
    config = PipelineConfig(
        n_candidates=7,
        use_info_alignment=False,
        use_alignments=False,
        fewshot_style="none",
        cot_mode="unstructured",
        max_correction_rounds=2,
        seed=seed,
    )
    return build_baseline(
        "CHESS", benchmark, SimulatedLLM(GPT_4O, seed=seed), config,
        description="contextual retrieval + schema pruning + revision",
    )


def Distillery(benchmark: Benchmark, seed: int = 0) -> BaselineSystem:
    """Distillery: fine-tuned GPT-4o, arguing schema linking is obsolete —
    full schema in the prompt, no retrieval, SFT skill profile, small
    self-consistency vote."""
    config = PipelineConfig(
        n_candidates=8,
        use_extraction=False,
        use_alignments=False,
        use_correction=False,
        fewshot_style="none",
        cot_mode="none",
        seed=seed,
    )
    return build_baseline(
        "Distillery + GPT-4o (ft)", benchmark, SimulatedLLM(SFT_GPT_4O, seed=seed),
        config,
        description="SFT GPT-4o without schema linking",
    )


def all_baselines(benchmark: Benchmark, seed: int = 0) -> list[BaselineSystem]:
    """Every Table 2 baseline, in the paper's row order."""
    return [
        ZeroShotGPT4(benchmark, seed),
        DINSQL(benchmark, seed),
        DAILSQL(benchmark, seed),
        MACSQL(benchmark, seed),
        MCSSQL(benchmark, seed),
        CHESS(benchmark, seed),
        Distillery(benchmark, seed),
    ]
