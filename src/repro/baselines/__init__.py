"""Baseline text-to-SQL systems the paper compares against (Table 2/3).

Each baseline is a faithful-in-structure reimplementation of the published
pipeline, built from the same substrates (simulated LLM, retrieval,
execution) so the comparison isolates the architectural differences — the
same methodology as the paper, which runs every method on GPT-4-family
models.  Docstrings state the mapping from the original system's stages to
our configuration.
"""

from repro.baselines.base import BaselineSystem, build_baseline
from repro.baselines.systems import (
    C3SQL,
    CHESS,
    DAILSQL,
    DINSQL,
    Distillery,
    MACSQL,
    MCSSQL,
    ZeroShotGPT4,
    all_baselines,
)

__all__ = [
    "BaselineSystem",
    "C3SQL",
    "CHESS",
    "DAILSQL",
    "DINSQL",
    "Distillery",
    "MACSQL",
    "MCSSQL",
    "ZeroShotGPT4",
    "all_baselines",
    "build_baseline",
]
