"""Shared machinery for baseline systems.

A baseline is an :class:`OpenSearchSQL`-compatible pipeline restricted to
the modules the original system actually has.  ``BaselineSystem`` wraps the
shared stage implementations with a baseline-specific
:class:`~repro.core.config.PipelineConfig` and (optionally) a different
skill profile — e.g. Distillery's fine-tuned GPT-4o.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.build import Benchmark
from repro.datasets.types import Example
from repro.llm.base import LLMClient

__all__ = ["BaselineSystem", "build_baseline"]


@dataclass
class BaselineSystem:
    """A named baseline: a configured pipeline plus its identity."""

    name: str
    pipeline: OpenSearchSQL
    description: str = ""

    def answer(self, example: Example) -> str:
        """Return the final SQL for ``example``."""
        return self.pipeline.answer(example).final_sql


def build_baseline(
    name: str,
    benchmark: Benchmark,
    llm: LLMClient,
    config: PipelineConfig,
    description: str = "",
) -> BaselineSystem:
    """Construct a baseline from a config over shared substrates."""
    return BaselineSystem(
        name=name,
        pipeline=OpenSearchSQL(benchmark, llm, config),
        description=description,
    )
