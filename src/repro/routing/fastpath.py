"""The FAST tier: one no-CoT call on the mini skill profile.

:class:`FastPathPipeline` reuses the existing prompt/extraction
machinery and the base pipeline's few-shot library, but strips the
request to its cheapest viable form:

* **zero-LLM extraction** — stored values are retrieved on the
  preprocessed vector indexes straight from the request's value-mention
  surfaces, and the schema prompt is cut to the top vector-scored
  tables (no entity-extraction / column-selection / info-alignment
  calls);
* **one batched generation call** — no structured CoT, a small few-shot
  window, ``fast_candidates`` completions in a single call (the prompt
  is charged once);
* **single-candidate refinement** — no alignment pass, no
  multi-sample voting; one execution plus at most one correction round.

The candidates beyond the first are *agreement probes*: they cost only
completion tokens and give the escalation policy a disagreement signal
without any extra LLM round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cost import CostTracker
from repro.core.extraction import ExtractionResult, Extractor
from repro.core.generation import Generator
from repro.core.pipeline import FALLBACK_SQL, PipelineResult
from repro.core.refinement import RefinementResult, Refiner
from repro.datasets.types import Example
from repro.execution.executor import ExecutionOutcome
from repro.llm.base import LLMClient
from repro.reliability.deadline import Deadline
from repro.reliability.degradation import DegradationEvent, DegradationKind
from repro.schema.serialize import schema_to_prompt

__all__ = ["FastAttempt", "FastPathPipeline"]


@dataclass
class FastAttempt:
    """A FAST-tier answer plus the observables the escalation policy reads."""

    result: PipelineResult
    #: the raw candidate SQLs of the single batched call (answer + probes)
    probe_sqls: list[str] = field(default_factory=list)
    #: execution outcome of the (refined) answer candidate
    outcome: Optional[ExecutionOutcome] = None
    #: the question text (read by the comparison probe)
    question: str = ""


class FastPathPipeline:
    """Single-call no-CoT answering over the base pipeline's artifacts."""

    def __init__(self, base, llm: LLMClient, n_candidates: int = 2):
        self.base = base
        self.llm = llm
        #: the fast profile: tiny candidate pool, no CoT, a short few-shot
        #: window, no alignment, no self-consistency vote — the paper
        #: pipeline stripped to one generation call plus one execution
        self.config = base.config.with_(
            n_candidates=max(1, n_candidates),
            n_few_shot=min(base.config.n_few_shot, 1),
            cot_mode="none",
            use_alignments=False,
            use_self_consistency=False,
        )
        self.generator = Generator(llm, self.config)
        self.refiner = Refiner(llm, self.config, base.vectorizer)
        #: vector-only value retrieval (never calls the LLM)
        self._retriever = Extractor(llm, self.config, base.vectorizer)

    #: how many top-scoring tables the vector filter keeps in the prompt
    TABLE_BUDGET = 2

    def rebind_llm(self, llm: LLMClient) -> "FastPathPipeline":
        """Swap the fast-tier transport on every stage that holds it."""
        self.llm = llm
        self.generator.llm = llm
        self.refiner.llm = llm
        self._retriever.llm = llm
        return self

    def extract(self, example: Example, pre) -> ExtractionResult:
        """Zero-LLM extraction: vector value retrieval over the request's
        own value-mention surfaces plus a vector-only table filter.

        The table filter scores every table by column-index similarity to
        the question's words and value mentions (retrieved values count
        double — a stored value pins its table) and keeps the top
        ``TABLE_BUDGET`` tables with *all* their columns.  Keeping whole
        tables avoids the over-pruned-column cliff; when the filter still
        guesses wrong, the broken query it provokes fails execution and
        the escalation policy promotes the request to FULL.
        """
        surfaces = [m.surface for m in example.value_mentions]
        values = (
            self._retriever.retrieve_values(surfaces, pre) if surfaces else []
        )
        scores: dict[str, float] = {}
        for query in surfaces + example.question.split():
            vector = self.base.vectorizer.embed(query)
            for hit in pre.column_index.search(vector, k=3):
                table, _column = hit.payload
                scores[table] = scores.get(table, 0.0) + hit.score
        for value in values:
            scores[value.table] = scores.get(value.table, 0.0) + value.score + 0.5
        keep_tables = [
            table
            for table, _score in sorted(
                scores.items(), key=lambda kv: (-kv[1], kv[0])
            )[: self.TABLE_BUDGET]
        ]
        schema, schema_prompt, filtered = pre.schema, pre.schema_prompt, False
        if keep_tables:
            subset = pre.schema.subset(
                {
                    table.name: {c.name for c in table.columns}
                    for table in pre.schema.tables
                    if table.name in keep_tables
                }
            )
            if subset.tables:
                schema, filtered = subset, True
                schema_prompt = schema_to_prompt(subset)
        return ExtractionResult(
            entities=surfaces,
            values=values,
            schema=schema,
            schema_prompt=schema_prompt,
            schema_filtered=filtered,
        )

    def answer(self, example: Example, deadline: Optional[Deadline] = None) -> FastAttempt:
        """Answer one question on the fast profile.

        Containment mirrors the base pipeline: extraction failure falls
        back to full-schema prompting, generation failure falls back to
        ``FALLBACK_SQL`` — both recorded as typed degradations so the
        escalation policy (and the report) can see them.
        """
        base = self.base
        cost = CostTracker()
        degradations: list[DegradationEvent] = []
        pre = base.preprocessed(example.db_id)
        executor = base.executor(example.db_id)
        if deadline is not None:
            deadline.attach_meter(lambda: cost.total_model_seconds)

        with cost.timed("extraction"):
            try:
                extraction = self.extract(example, pre)
            except Exception as exc:
                degradations.append(
                    DegradationEvent(
                        kind=DegradationKind.EXTRACTION_FALLBACK,
                        stage="extraction",
                        cause=type(exc).__name__,
                        detail=str(exc),
                    )
                )
                extraction = ExtractionResult(
                    schema=pre.schema, schema_prompt=pre.schema_prompt
                )

        sqls: list[str] = []
        with cost.timed("generation"):
            if not (deadline is not None and deadline.expired):
                try:
                    sqls = self.generator.run(
                        example,
                        extraction,
                        base.library,
                        cost,
                        n_candidates=self.config.n_candidates,
                    ).sqls
                except Exception as exc:
                    degradations.append(
                        DegradationEvent(
                            kind=DegradationKind.ANSWER_FAILED,
                            stage="generation",
                            cause=type(exc).__name__,
                            detail=str(exc),
                        )
                    )
        if not sqls:
            degradations.append(
                DegradationEvent(
                    kind=DegradationKind.EMPTY_GENERATION,
                    stage="generation",
                    cause="no_parseable_sql",
                    detail=f"fast path falling back to {FALLBACK_SQL!r}",
                )
            )
            sqls = [FALLBACK_SQL]

        with cost.timed("refinement"):
            try:
                # Only the answer candidate is refined/executed; the probe
                # candidates exist purely for the disagreement signal.
                refinement = self.refiner.run(
                    example, sqls[:1], pre, extraction, executor, cost,
                    deadline=deadline,
                )
            except Exception as exc:
                degradations.append(
                    DegradationEvent(
                        kind=DegradationKind.REFINEMENT_SKIPPED,
                        stage="refinement",
                        cause=type(exc).__name__,
                        detail=str(exc),
                    )
                )
                refinement = RefinementResult(final_sql=sqls[0], candidates=[])

        outcome = (
            refinement.candidates[0].outcome if refinement.candidates else None
        )
        result = PipelineResult(
            question_id=example.question_id,
            final_sql=refinement.final_sql,
            generation_sql=sqls[0],
            refined_sql=refinement.first_refined_sql or sqls[0],
            extraction=extraction,
            refinement=refinement,
            cost=cost,
            degradations=degradations,
        )
        return FastAttempt(
            result=result,
            probe_sqls=list(sqls),
            outcome=outcome,
            question=example.question,
        )
