"""The tiered pipeline: route → answer → escalate, as one drop-in unit.

:class:`TieredPipeline` wraps a fully-constructed ``OpenSearchSQL`` and
presents the same ``answer(example, deadline=, trace=)`` surface, so the
serving engine, the journal replay and the evaluation runner can use it
unchanged.  Per request it:

1. routes via :class:`~repro.routing.router.DifficultyRouter` (pure,
   deterministic by seed — ``route_tier`` is also what tier-aware cache
   keys call);
2. answers on the routed tier — FAST (single no-CoT mini call), FULL
   (the wrapped pipeline), or HEAVY (the full pipeline on the large
   skill profile, sharing every preprocessing artifact);
3. escalates up the ladder when the
   :class:`~repro.routing.escalation.EscalationPolicy` finds the answer
   unconfident, charging the abandoned attempt against the request's
   ``Deadline`` and recording a typed
   :class:`~repro.routing.escalation.EscalationEvent`.

The returned ``PipelineResult`` carries merged cost/degradations across
all attempts plus a :class:`RoutingInfo` — the journal serializes it so
kill/recover replay is tier-faithful.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional

from repro.core.cost import CostTracker
from repro.core.generation import Generator
from repro.core.pipeline import FALLBACK_SQL, OpenSearchSQL, PipelineResult
from repro.core.refinement import Refiner, vote_share
from repro.datasets.types import Example
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import skill_by_name
from repro.observability.trace import Trace
from repro.reliability.deadline import Deadline
from repro.reliability.degradation import DegradationEvent, DegradationKind
from repro.routing.escalation import EscalationEvent, EscalationPolicy
from repro.routing.fastpath import FastPathPipeline
from repro.routing.router import DifficultyRouter, RouteDecision, RoutingConfig, Tier

__all__ = ["TierAttempt", "RoutingInfo", "TieredPipeline"]


@dataclass
class TierAttempt:
    """Cost attribution for one tier attempt of a routed request."""

    tier: str
    tokens: int = 0
    model_seconds: float = 0.0
    #: True when the escalation policy promoted past this attempt
    escalated: bool = False

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "tokens": self.tokens,
            "model_seconds": round(self.model_seconds, 6),
            "escalated": self.escalated,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TierAttempt":
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in names})


@dataclass
class RoutingInfo:
    """Everything the routing layer decided and spent for one request."""

    initial_tier: str
    final_tier: str
    score: float
    features: dict = field(default_factory=dict)
    attempts: list[TierAttempt] = field(default_factory=list)
    escalations: list[EscalationEvent] = field(default_factory=list)

    @property
    def escalated(self) -> bool:
        return bool(self.escalations)

    def to_dict(self) -> dict:
        """JSON-ready view — the journal's tier-faithful record."""
        return {
            "initial_tier": self.initial_tier,
            "final_tier": self.final_tier,
            "score": self.score,
            "features": dict(self.features),
            "attempts": [attempt.to_dict() for attempt in self.attempts],
            "escalations": [event.to_dict() for event in self.escalations],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RoutingInfo":
        """Inverse of :meth:`to_dict` (journal decode)."""
        return cls(
            initial_tier=payload["initial_tier"],
            final_tier=payload["final_tier"],
            score=payload["score"],
            features=dict(payload.get("features", {})),
            attempts=[
                TierAttempt.from_dict(a) for a in payload.get("attempts", [])
            ],
            escalations=[
                EscalationEvent.from_dict(e)
                for e in payload.get("escalations", [])
            ],
        )


class _SiblingPipeline(OpenSearchSQL):
    """An ``OpenSearchSQL`` bound to a different LLM that shares every
    preprocessing artifact, executor and cache wrapper with the base.

    ``extractor`` and ``library`` delegate to the base *dynamically*, so
    the serving layer's caching wrappers (installed on the base after
    construction) apply here too — an escalated request re-uses the
    extraction the cheaper tier already paid for.
    """

    # OpenSearchSQL.__init__ runs preprocessing; skip it entirely.
    def __init__(self, base: OpenSearchSQL, llm):  # noqa: D107
        self.base = base
        self.benchmark = base.benchmark
        self.llm = llm
        self.config = base.config
        self.vectorizer = base.vectorizer
        self.preprocessing_cost = base.preprocessing_cost
        self.databases = base.databases
        self.generator = Generator(llm, base.config)
        self.refiner = Refiner(llm, base.config, base.vectorizer)

    @property
    def extractor(self):
        return self.base.extractor

    @property
    def library(self):
        return self.base.library

    def executor(self, db_id: str):
        return self.base.executor(db_id)

    def set_executor_wrapper(self, wrapper) -> None:
        self.base.set_executor_wrapper(wrapper)


class TieredPipeline:
    """Route/answer/escalate wrapper with the ``OpenSearchSQL`` surface."""

    def __init__(
        self,
        base: OpenSearchSQL,
        config: Optional[RoutingConfig] = None,
    ):
        self.base = base
        self.routing_config = config or RoutingConfig()
        seed = getattr(base.llm, "seed", base.config.seed)
        self.router = DifficultyRouter(
            lambda: self.base.library, self.routing_config, seed=seed
        )
        self.policy = EscalationPolicy(vote_floor=self.routing_config.vote_floor)
        self.fast_llm = SimulatedLLM(
            skill_by_name(self.routing_config.fast_model), seed=seed
        )
        self.heavy_llm = SimulatedLLM(
            skill_by_name(self.routing_config.heavy_model), seed=seed
        )
        self.fastpath = FastPathPipeline(
            base, self.fast_llm, n_candidates=self.routing_config.fast_candidates
        )
        self._heavy: Optional[_SiblingPipeline] = None
        self._stats_lock = threading.Lock()
        self._decisions: dict[str, int] = {}
        self._finals: dict[str, int] = {}
        self._escalation_reasons: dict[str, int] = {}
        self._tier_tokens: dict[str, int] = {}
        self._requests = 0

    # ------------------------------------------------- pipeline delegation

    @property
    def benchmark(self):
        return self.base.benchmark

    @property
    def llm(self):
        return self.base.llm

    @property
    def config(self):
        return self.base.config

    @property
    def vectorizer(self):
        return self.base.vectorizer

    @property
    def preprocessing_cost(self):
        return self.base.preprocessing_cost

    @property
    def databases(self):
        return self.base.databases

    # The serving engine installs its caching wrappers by *assigning*
    # ``pipeline.extractor`` / ``pipeline.library`` after construction;
    # delegating setters land those wrappers on the base so every tier
    # (fast path, heavy sibling) picks them up dynamically.

    @property
    def extractor(self):
        return self.base.extractor

    @extractor.setter
    def extractor(self, value) -> None:
        self.base.extractor = value

    @property
    def library(self):
        return self.base.library

    @library.setter
    def library(self, value) -> None:
        self.base.library = value

    def executor(self, db_id: str):
        return self.base.executor(db_id)

    def set_executor_wrapper(self, wrapper) -> None:
        self.base.set_executor_wrapper(wrapper)

    def preprocessed(self, db_id: str):
        return self.base.preprocessed(db_id)

    # ----------------------------------------------------------- routing

    @property
    def heavy_pipeline(self) -> _SiblingPipeline:
        """The lazily-built HEAVY-tier sibling pipeline."""
        if self._heavy is None:
            self._heavy = _SiblingPipeline(self.base, self.heavy_llm)
        return self._heavy

    def wrap_llms(self, wrap) -> "TieredPipeline":
        """Route every tier's transport through ``wrap``.

        Covers the base (FULL) client plus the fast and heavy siblings —
        each tier keeps its own skill profile/seed, only the transport
        seam changes.  The heavy sibling is rebuilt eagerly so a lazily
        built ``_heavy`` cannot resurrect the unwrapped client later.
        """
        self.base.wrap_llms(wrap)
        self.fast_llm = wrap(self.fast_llm)
        self.fastpath.rebind_llm(self.fast_llm)
        self.heavy_llm = wrap(self.heavy_llm)
        self._heavy = _SiblingPipeline(self.base, self.heavy_llm)
        return self

    def route(self, example: Example) -> RouteDecision:
        """The pure, deterministic tier decision for one request."""
        return self.router.route(example, self.base.preprocessed(example.db_id))

    def route_tier(self, example: Example) -> str:
        """The routed tier name — the hook tier-aware cache keys call."""
        return self.route(example).tier.value

    def tier_mix(self, examples) -> dict[str, int]:
        """Routed-tier histogram over a workload (pure; no answering)."""
        mix = {tier.value: 0 for tier in Tier}
        for example in examples:
            mix[self.route_tier(example)] += 1
        return mix

    def routing_stats(self) -> dict:
        """Live counters: decisions, finals, escalations, tokens by tier."""
        with self._stats_lock:
            return {
                "requests": self._requests,
                "decisions": dict(sorted(self._decisions.items())),
                "final_tiers": dict(sorted(self._finals.items())),
                "escalations": dict(sorted(self._escalation_reasons.items())),
                "tokens_by_tier": dict(sorted(self._tier_tokens.items())),
            }

    # ------------------------------------------------------------- answer

    def _run_tier(
        self, tier: Tier, example: Example, deadline: Optional[Deadline]
    ) -> tuple[PipelineResult, Optional[tuple[str, str]]]:
        """Answer on one tier; returns (result, escalation signal)."""
        if tier is Tier.FAST:
            try:
                attempt = self.fastpath.answer(example, deadline=deadline)
            except Exception as exc:
                stub = PipelineResult(
                    question_id=example.question_id,
                    final_sql=FALLBACK_SQL,
                    degradations=[
                        DegradationEvent(
                            kind=DegradationKind.ANSWER_FAILED,
                            stage="routing",
                            cause=type(exc).__name__,
                            detail=f"fast path raised: {exc}",
                        )
                    ],
                )
                return stub, ("fast_failed", str(exc))
            return attempt.result, self.policy.assess_fast(attempt)
        if tier is Tier.FULL:
            result = self.base.answer(example, deadline=deadline)
            return result, self.policy.assess_full(result)
        return self.heavy_pipeline.answer(example, deadline=deadline), None

    @staticmethod
    def _confidence(result: PipelineResult) -> float:
        """Vote-share confidence of a full-pipeline result (-1 = none)."""
        refinement = result.refinement
        if refinement is None or not refinement.candidates:
            return -1.0
        share = vote_share(refinement.candidates)
        return -1.0 if share is None else share

    def answer(
        self,
        example: Example,
        deadline: Optional[Deadline] = None,
        trace: Optional[Trace] = None,
    ) -> PipelineResult:
        """Route, answer, escalate — one request end to end.

        Every attempt attaches its own cost meter to ``deadline``, so
        escalations are charged against the request's existing budget; an
        expired deadline stops the ladder and serves the current answer.
        Tier spans (``tier:fast`` …) carry exact cost deltas in the trace
        tree, and the merged result's :class:`RoutingInfo` makes journal
        replay tier-faithful.
        """
        decision = self.route(example)
        cost = CostTracker()
        degradations: list[DegradationEvent] = []
        escalations: list[EscalationEvent] = []
        attempts: list[TierAttempt] = []
        results: dict[Tier, PipelineResult] = {}

        if trace is not None:
            pre_span = trace.root.child("preprocessing")
            pre_span.set("amortized", True)
            pre_span.set("shared_tokens", self.preprocessing_cost.total_tokens)
            pre_span.set(
                "shared_model_seconds",
                round(self.preprocessing_cost.total_model_seconds, 6),
            )
            pre_span.finish(deadline)
            route_span = trace.root.child("routing")
            route_span.set("tier", decision.tier.value)
            route_span.set("score", decision.score)
            for key, value in decision.features.to_dict().items():
                route_span.set(key, value)
            route_span.finish(deadline)

        tier: Optional[Tier] = decision.tier
        current = decision.tier
        while tier is not None:
            current = tier
            cm = (
                trace.stage(f"tier:{tier.value}", cost=cost, deadline=deadline)
                if trace is not None
                else nullcontext(None)
            )
            with cm as span:
                tokens_before = cost.total_tokens
                seconds_before = cost.total_model_seconds
                result, signal = self._run_tier(tier, example, deadline)
                cost.merge(result.cost)
                degradations.extend(result.degradations)
                results[tier] = result
                tokens = cost.total_tokens - tokens_before
                seconds = cost.total_model_seconds - seconds_before

                next_tier = tier.next_tier
                out_of_budget = deadline is not None and deadline.expired
                escalate = signal is not None and next_tier is not None and not out_of_budget
                attempts.append(
                    TierAttempt(
                        tier=tier.value,
                        tokens=tokens,
                        model_seconds=round(seconds, 6),
                        escalated=escalate,
                    )
                )
                if span is not None:
                    for event in result.degradations:
                        span.event(
                            "degradation",
                            kind=event.kind.value,
                            cause=event.cause,
                            detail=event.detail,
                        )
                    if result.degradations:
                        span.status = "degraded"
                        trace.root.status = "degraded"
                if escalate:
                    event = EscalationEvent(
                        from_tier=tier.value,
                        to_tier=next_tier.value,
                        reason=signal[0],
                        detail=signal[1],
                        tokens_spent=tokens,
                        model_seconds_spent=round(seconds, 6),
                    )
                    escalations.append(event)
                    if span is not None:
                        span.status = "escalated"
                        span.event(
                            "escalation",
                            reason=event.reason,
                            to_tier=event.to_tier,
                            detail=event.detail,
                        )
                elif signal is not None and span is not None:
                    # Signal fired but the ladder could not promote
                    # (deadline spent or already at the top tier).
                    span.event(
                        "escalation_suppressed",
                        reason=signal[0],
                        cause="deadline" if out_of_budget else "top_tier",
                    )
            tier = next_tier if escalate else None

        # HEAVY is not strictly stronger than FULL: when both ran, serve
        # whichever answer the self-consistency vote trusts more.
        chosen_tier = current
        chosen = results[current]
        if current is Tier.HEAVY and Tier.FULL in results:
            if self._confidence(results[Tier.FULL]) >= self._confidence(chosen):
                chosen_tier = Tier.FULL
                chosen = results[Tier.FULL]

        routing = RoutingInfo(
            initial_tier=decision.tier.value,
            final_tier=chosen_tier.value,
            score=decision.score,
            features=decision.features.to_dict(),
            attempts=attempts,
            escalations=escalations,
        )
        self._record_stats(routing)
        if trace is not None:
            trace.root.set("initial_tier", routing.initial_tier)
            trace.root.set("final_tier", routing.final_tier)
            trace.finish(cost=cost, deadline=deadline)
        return PipelineResult(
            question_id=chosen.question_id,
            final_sql=chosen.final_sql,
            generation_sql=chosen.generation_sql,
            refined_sql=chosen.refined_sql,
            extraction=chosen.extraction,
            refinement=chosen.refinement,
            cost=cost,
            degradations=degradations,
            routing=routing,
        )

    def answer_many(self, examples: list[Example]) -> list[PipelineResult]:
        """Answer a batch of questions."""
        return [self.answer(example) for example in examples]

    def _record_stats(self, routing: RoutingInfo) -> None:
        with self._stats_lock:
            self._requests += 1
            self._decisions[routing.initial_tier] = (
                self._decisions.get(routing.initial_tier, 0) + 1
            )
            self._finals[routing.final_tier] = (
                self._finals.get(routing.final_tier, 0) + 1
            )
            for event in routing.escalations:
                self._escalation_reasons[event.reason] = (
                    self._escalation_reasons.get(event.reason, 0) + 1
                )
            for attempt in routing.attempts:
                self._tier_tokens[attempt.tier] = (
                    self._tier_tokens.get(attempt.tier, 0) + attempt.tokens
                )
