"""Difficulty routing: scoring requests into FAST / FULL / HEAVY tiers.

Most easy questions do not need the full 4-stage OpenSearch-SQL pipeline
(21-candidate structured-CoT sampling plus consistency alignment); Dönder
et al. (PAPERS.md, "Cheaper, Better, Faster, Stronger") show a single
no-CoT call is the dominant cost lever at scale.  The
:class:`DifficultyRouter` scores each (db_id, question, schema) request
from cheap heuristic features — question length, join/aggregate cue
words, schema fan-out, and the difficulty labels of the nearest few-shot
neighbors in the existing library — and maps the score onto a tier:

* ``FAST``  — single no-CoT call on the mini skill profile
  (:class:`~repro.routing.fastpath.FastPathPipeline`);
* ``FULL``  — the regular OpenSearch-SQL pipeline on the session model;
* ``HEAVY`` — the full pipeline on the large skill profile.

Routing is **pure and deterministic by seed**: the same (seed, db_id,
question) always produces the same :class:`RouteDecision`, which is what
makes tier-aware cache keys, journal replay and the cluster's per-shard
routers reproducible.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.caching import normalize_question
from repro.datasets.types import Example

__all__ = [
    "Tier",
    "RoutingConfig",
    "RouteFeatures",
    "RouteDecision",
    "DifficultyRouter",
]


class Tier(str, Enum):
    """The three serving tiers, cheapest first."""

    FAST = "fast"
    FULL = "full"
    HEAVY = "heavy"

    @property
    def next_tier(self) -> Optional["Tier"]:
        """The next tier up the escalation ladder (None at the top)."""
        ladder = (Tier.FAST, Tier.FULL, Tier.HEAVY)
        index = ladder.index(self)
        return ladder[index + 1] if index + 1 < len(ladder) else None


@dataclass(frozen=True)
class RoutingConfig:
    """Everything that parameterizes routing and escalation.

    ``seed`` defaults to None, meaning "inherit the base pipeline's
    config seed" — one knob keeps the router, the simulator and the
    cluster shards on the same deterministic page.
    """

    #: skill profile answering FAST-tier requests (single no-CoT call)
    fast_model: str = "gpt-4o-mini"
    #: skill profile answering HEAVY-tier requests (full pipeline)
    heavy_model: str = "gpt-4"
    #: score at or below which a request routes FAST
    fast_max: float = 0.30
    #: score at or above which a request routes straight to HEAVY
    heavy_min: float = 0.90
    #: few-shot neighbors consulted for the difficulty feature
    neighbor_k: int = 3
    #: candidates drawn by the fast path (1 answer + agreement probes)
    fast_candidates: int = 2
    #: FULL-tier vote share below which the request escalates to HEAVY
    vote_floor: float = 0.34
    #: deterministic per-question score jitter amplitude (tie-breaking)
    jitter: float = 0.02
    #: router seed; None inherits the pipeline config's seed
    seed: Optional[int] = None

    def to_dict(self) -> dict:
        """JSON-ready view (journal headers, cluster wire config)."""
        return {
            "fast_model": self.fast_model,
            "heavy_model": self.heavy_model,
            "fast_max": self.fast_max,
            "heavy_min": self.heavy_min,
            "neighbor_k": self.neighbor_k,
            "fast_candidates": self.fast_candidates,
            "vote_floor": self.vote_floor,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RoutingConfig":
        """Inverse of :meth:`to_dict` (unknown keys ignored)."""
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in names})


#: surface cues suggesting joins / grouping — each hit nudges the score up
_JOIN_CUES = (
    "join", "per ", "each ", "for every", "respective", "their ",
    "belong", "correspond", "associated", "who ", "whose ",
)
_AGGREGATE_CUES = (
    "average", "avg", "total", "sum", "count", "number of", "how many",
    "most", "least", "highest", "lowest", "maximum", "minimum", "max ",
    "min ", "top ", "ratio", "percentage", "percent", "difference",
    "more than", "less than", "at least", "at most", "between",
)

_DIFFICULTY_VALUE = {"simple": 0.0, "moderate": 0.5, "challenging": 1.0}

#: feature weights (sum to 1.0); neighbor difficulty dominates because the
#: few-shot library's labeled train split is the strongest difficulty
#: signal available without running a model
_WEIGHTS = {
    "neighbor": 0.42,
    "fanout": 0.16,
    "cues": 0.14,
    "length": 0.10,
    "evidence": 0.10,
    "dirty": 0.08,
}


def _fnv1a(data: str) -> int:
    """64-bit FNV-1a — the same stable hash family the simulator uses."""
    h = 0xCBF29CE484222325
    for byte in data.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


@dataclass(frozen=True)
class RouteFeatures:
    """The cheap heuristic features one request was scored from."""

    question_words: int = 0
    cue_hits: int = 0
    table_count: int = 0
    column_count: int = 0
    #: mean difficulty of the nearest few-shot neighbors in [0, 1]
    neighbor_difficulty: float = 0.5
    has_evidence: bool = False
    dirty_values: int = 0

    def to_dict(self) -> dict:
        """JSON-ready view (journal records, trace attributes)."""
        return {
            "question_words": self.question_words,
            "cue_hits": self.cue_hits,
            "table_count": self.table_count,
            "column_count": self.column_count,
            "neighbor_difficulty": round(self.neighbor_difficulty, 6),
            "has_evidence": self.has_evidence,
            "dirty_values": self.dirty_values,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RouteFeatures":
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in names})


@dataclass(frozen=True)
class RouteDecision:
    """One routed request: the tier, the score behind it, the features."""

    tier: Tier
    score: float
    features: RouteFeatures = field(default_factory=RouteFeatures)


class DifficultyRouter:
    """Scores requests into tiers from cheap request-side features.

    ``library`` is read dynamically through ``library_getter`` so the
    serving layer's :class:`CachingFewShotLibrary` wrapper (installed
    after pipeline construction) is picked up automatically.

    :meth:`route` is pure — it never mutates router state — so callers
    may invoke it any number of times (cache keys, journal replay,
    metrics) and always observe the same decision.  A small memo keyed by
    (db_id, normalized question) makes repeat calls free.
    """

    def __init__(self, library_getter, config: Optional[RoutingConfig] = None,
                 seed: int = 0, memo_size: int = 4096):
        self._library_getter = library_getter
        self.config = config or RoutingConfig()
        self.seed = self.config.seed if self.config.seed is not None else seed
        self._memo: dict[tuple, RouteDecision] = {}
        self._memo_size = memo_size
        self._lock = threading.Lock()

    # ------------------------------------------------------------ features

    def features(self, example: Example, pre) -> RouteFeatures:
        """Extract the routing features for one request.

        ``pre`` is the database's preprocessing artifact (duck-typed: only
        ``.schema`` is read) supplying the schema fan-out features.
        """
        question = example.question.lower()
        words = len(question.split())
        cue_hits = sum(1 for cue in _JOIN_CUES if cue in question)
        cue_hits += sum(1 for cue in _AGGREGATE_CUES if cue in question)
        schema = getattr(pre, "schema", None)
        tables = len(schema.tables) if schema is not None else 0
        columns = schema.column_count() if schema is not None else 0
        return RouteFeatures(
            question_words=words,
            cue_hits=cue_hits,
            table_count=tables,
            column_count=columns,
            neighbor_difficulty=self._neighbor_difficulty(example),
            has_evidence=bool(example.evidence),
            dirty_values=sum(1 for m in example.value_mentions if m.is_dirty),
        )

    def _neighbor_difficulty(self, example: Example) -> float:
        """Mean difficulty of the nearest few-shot neighbors in [0, 1]."""
        library = self._library_getter()
        if library is None:
            return 0.5
        surfaces = tuple(m.surface for m in example.value_mentions)
        shots = library.search(
            example.question, surfaces=surfaces, k=self.config.neighbor_k
        )
        if not shots:
            return 0.5
        values = [
            _DIFFICULTY_VALUE.get(shot.example.difficulty, 0.5) for shot in shots
        ]
        return sum(values) / len(values)

    # --------------------------------------------------------------- score

    def score(self, example: Example, features: RouteFeatures) -> float:
        """Difficulty score in roughly [0, 1] plus deterministic jitter."""
        parts = {
            "neighbor": features.neighbor_difficulty,
            "fanout": min(1.0, (max(features.table_count - 1, 0)) / 4.0 * 0.6
                          + features.column_count / 60.0 * 0.4),
            "cues": min(1.0, features.cue_hits / 4.0),
            "length": min(1.0, features.question_words / 24.0),
            "evidence": 1.0 if features.has_evidence else 0.0,
            "dirty": min(1.0, features.dirty_values / 2.0),
        }
        score = sum(_WEIGHTS[name] * value for name, value in parts.items())
        jitter_key = "|".join(
            ["route", str(self.seed), example.db_id,
             normalize_question(example.question)]
        )
        jitter = (_fnv1a(jitter_key) % 1000) / 1000.0 * self.config.jitter
        return round(score + jitter, 6)

    # --------------------------------------------------------------- route

    def route(self, example: Example, pre) -> RouteDecision:
        """The deterministic tier decision for one request (pure)."""
        memo_key = (example.db_id, normalize_question(example.question))
        with self._lock:
            hit = self._memo.get(memo_key)
        if hit is not None:
            return hit
        features = self.features(example, pre)
        score = self.score(example, features)
        if score <= self.config.fast_max:
            tier = Tier.FAST
        elif score >= self.config.heavy_min:
            tier = Tier.HEAVY
        else:
            tier = Tier.FULL
        decision = RouteDecision(tier=tier, score=score, features=features)
        with self._lock:
            if len(self._memo) >= self._memo_size:
                self._memo.clear()
            self._memo[memo_key] = decision
        return decision
