"""Escalation policy: promoting a request up the tier ladder on low
execution confidence.

A FAST-tier answer escalates to FULL when any of its cheap confidence
probes fails; a FULL-tier answer escalates to HEAVY when its
self-consistency vote is too thin.  Every promotion is recorded as a
typed :class:`EscalationEvent` (journaled, traced, counted in metrics)
and its cost is charged against the request's existing ``Deadline`` —
escalation never buys time the request does not have.

Signals, cheapest first:

* ``empty_result``       — the fast answer executed to zero rows;
* ``error_status``       — the fast answer errored even after correction;
* ``probe_disagreement`` — the no-CoT probe candidates disagree on SQL;
* ``value_probe``        — a retrieved value literal is missing from the
  final SQL (the signature of a dropped filter);
* ``comparison_probe``   — the SQL negates or inverts a comparison the
  question never asked for (``<>`` without a negation cue, ``<`` on a
  "more than" question — the signature of a flipped operator);
* ``fast_failed``        — the fast path itself raised;
* ``low_vote_share``     — the FULL tier's winning result group holds
  less than ``vote_floor`` of the valid candidates;
* ``no_valid_candidate`` — every FULL-tier candidate errored or came
  back empty.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.refinement import vote_share
from repro.execution.executor import ExecutionStatus

__all__ = ["EscalationEvent", "EscalationPolicy"]


@dataclass(frozen=True)
class EscalationEvent:
    """One typed tier promotion."""

    from_tier: str
    to_tier: str
    reason: str
    detail: str = ""
    #: cost already sunk into the abandoned attempt when escalation fired
    tokens_spent: int = 0
    model_seconds_spent: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready view (journal records, reports)."""
        return {
            "from_tier": self.from_tier,
            "to_tier": self.to_tier,
            "reason": self.reason,
            "detail": self.detail,
            "tokens_spent": self.tokens_spent,
            "model_seconds_spent": round(self.model_seconds_spent, 6),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EscalationEvent":
        """Inverse of :meth:`to_dict`."""
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in names})


#: question phrasings that justify a negated comparison in the SQL
_NEGATION_CUES = (
    "not ", "n't", "other than", "excluding", "except", "without",
    "never", "no longer", "non-", "outside", "differ",
)
#: question phrasings implying a lower / upper bound
_MORE_CUES = (
    "more than", "greater than", "above", "over ", "exceed", "at least",
    "higher than", "older than", "longer than", "taller than", "after",
)
_LESS_CUES = (
    "less than", "fewer than", "below", "under ", "at most", "within",
    "lower than", "younger than", "shorter than", "no more than", "before",
)

_COMPARISON_RE = re.compile(r"<>|!=|<=|>=|<|>")


class EscalationPolicy:
    """Decides whether an answered attempt is confident enough to serve.

    The assess methods return ``None`` (serve the answer) or a
    ``(reason, detail)`` pair (promote to the next tier).  They inspect
    only the attempt's observables — execution outcome, probe candidates,
    provided values, vote composition — never the gold answer.
    """

    def __init__(
        self,
        vote_floor: float = 0.34,
        value_probe: bool = True,
        comparison_probe: bool = True,
    ):
        self.vote_floor = vote_floor
        self.value_probe = value_probe
        self.comparison_probe = comparison_probe

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _normalize_sql(sql: str) -> str:
        return " ".join(sql.split()).rstrip(";").lower()

    def dropped_values(self, extraction, final_sql: str) -> list[str]:
        """Retrieved value literals when *none* of them made the SQL.

        One absent literal among several present ones is normal (retrieval
        over-fetches); every literal absent is the signature of a dropped
        filter.  Returns the missing literals, or [] when confident.
        """
        if extraction is None:
            return []
        literals = [
            str(value.value)
            for value in getattr(extraction, "values", ())  # RetrievedValue
            if str(value.value)
        ]
        if not literals:
            return []
        lowered = final_sql.lower()
        if any(literal.lower() in lowered for literal in literals):
            return []
        return literals

    def flipped_comparison(self, question: str, sql: str) -> Optional[str]:
        """A comparison operator the question's phrasing cannot justify.

        The hard-fail channel's signature mutations keep the value literal
        but invert the operator (``=`` → ``<>``, ``>`` → ``<``); the
        question text still says what direction was asked for.
        """
        q = question.lower()
        ops = set(_COMPARISON_RE.findall(sql))
        if ("<>" in ops or "!=" in ops) and not any(c in q for c in _NEGATION_CUES):
            return "negated equality with no negation cue in the question"
        asks_more = any(c in q for c in _MORE_CUES)
        asks_less = any(c in q for c in _LESS_CUES)
        if ("<" in ops or "<=" in ops) and asks_more and not asks_less:
            return "'<' comparison on a lower-bound question"
        if (">" in ops or ">=" in ops) and asks_less and not asks_more:
            return "'>' comparison on an upper-bound question"
        return None

    # -------------------------------------------------------------- assess

    def assess_fast(self, attempt) -> Optional[tuple[str, str]]:
        """Confidence check for a FAST-tier attempt.

        ``attempt`` is a :class:`~repro.routing.fastpath.FastAttempt`
        (duck-typed: ``result``, ``probe_sqls``, ``outcome``).
        """
        outcome = attempt.outcome
        if outcome is None:
            return ("error_status", "fast path produced no execution outcome")
        if outcome.status is ExecutionStatus.EMPTY:
            return ("empty_result", "fast answer returned zero rows")
        if outcome.status is not ExecutionStatus.OK:
            return ("error_status", f"fast answer status {outcome.status.value}")
        probes = [self._normalize_sql(sql) for sql in attempt.probe_sqls if sql]
        if len(set(probes)) > 1:
            return (
                "probe_disagreement",
                f"{len(set(probes))} distinct SQLs across {len(probes)} probes",
            )
        if self.value_probe:
            missing = self.dropped_values(
                attempt.result.extraction, attempt.result.final_sql
            )
            if missing:
                return (
                    "value_probe",
                    f"no retrieved value made the SQL: {missing[:3]}",
                )
        if self.comparison_probe and attempt.question:
            flipped = self.flipped_comparison(
                attempt.question, attempt.result.final_sql
            )
            if flipped is not None:
                return ("comparison_probe", flipped)
        return None

    def assess_full(self, result) -> Optional[tuple[str, str]]:
        """Confidence check for a FULL-tier attempt (vote thinness)."""
        refinement = getattr(result, "refinement", None)
        if refinement is None or not refinement.candidates:
            return None  # refinement skipped (deadline) — nothing to judge
        share = vote_share(refinement.candidates)
        if share is None:
            return ("no_valid_candidate", "every candidate errored or was empty")
        if share < self.vote_floor:
            return (
                "low_vote_share",
                f"winning group holds {share:.2f} < floor {self.vote_floor:.2f}",
            )
        return None
