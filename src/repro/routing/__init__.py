"""Adaptive cost-tiered routing: a no-CoT fast path with
confidence-based escalation.

This package turns the skill profiles from eval subjects into a serving
feature: a :class:`DifficultyRouter` scores each request from cheap
heuristic features into FAST / FULL / HEAVY tiers, a
:class:`FastPathPipeline` answers FAST requests with a single no-CoT
call on the mini profile, and an :class:`EscalationPolicy` promotes
unconfident answers up the ladder — re-entering the full OpenSearch-SQL
pipeline and finally the HEAVY skill model — with every promotion
recorded as a typed :class:`EscalationEvent` and charged against the
request's existing ``Deadline``.

:class:`TieredPipeline` packages the three as a drop-in replacement for
``OpenSearchSQL`` in the serving engine, evaluation runner and journal
replay; its :class:`RoutingInfo` rides on each ``PipelineResult`` so
kill/recover replay is tier-faithful.
"""

from repro.routing.escalation import EscalationEvent, EscalationPolicy
from repro.routing.fastpath import FastAttempt, FastPathPipeline
from repro.routing.router import (
    DifficultyRouter,
    RouteDecision,
    RouteFeatures,
    RoutingConfig,
    Tier,
)
from repro.routing.tiered import RoutingInfo, TierAttempt, TieredPipeline

__all__ = [
    "DifficultyRouter",
    "EscalationEvent",
    "EscalationPolicy",
    "FastAttempt",
    "FastPathPipeline",
    "RouteDecision",
    "RouteFeatures",
    "RoutingConfig",
    "RoutingInfo",
    "Tier",
    "TierAttempt",
    "TieredPipeline",
]
