"""Storage robustness layer: fault injection, journal v2, fsck.

Submodules:

* :mod:`repro.storage.format` — the CRC-framed journal v2 record
  grammar and the damage-classifying :func:`scan_file` reader.
* :mod:`repro.storage.faults` — :class:`FaultyStorage`, the seeded
  filesystem chaos harness pluggable under every journal/checkpoint
  through their ``opener`` injection point.
* :mod:`repro.storage.fsck` — offline validation/repair behind
  ``repro fsck --journal``.
* :mod:`repro.storage.crashfuzz` — the power-cut recovery fuzzer
  (imported lazily by the CLI and benchmarks: it pulls in the serving
  stack, which itself depends on :mod:`repro.storage.format`).
"""

from repro.storage.faults import FaultyFile, FaultyStorage, StorageFaultPlan
from repro.storage.format import (
    JournalCorruptionError,
    JournalScan,
    JournalVersionError,
    LineIssue,
    decode_line,
    encode_record,
    scan_file,
)
from repro.storage.fsck import (
    RepairResult,
    find_double_serves,
    repair_file,
    scan_path,
)

__all__ = [
    "FaultyFile",
    "FaultyStorage",
    "StorageFaultPlan",
    "JournalCorruptionError",
    "JournalScan",
    "JournalVersionError",
    "LineIssue",
    "decode_line",
    "encode_record",
    "scan_file",
    "RepairResult",
    "find_double_serves",
    "repair_file",
    "scan_path",
]
