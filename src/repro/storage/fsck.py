"""Offline journal validation and repair (``repro fsck --journal``).

``scan_path`` accepts either a single journal file or a cluster segment
directory and returns one :class:`~repro.storage.format.JournalScan`
per file, plus the cross-segment double-serve check a merged view would
perform.  ``repair_file`` rewrites a damaged journal from its
well-formed records: the torn tail is truncated, interior-damaged lines
are quarantined to a ``<name>.quarantine`` sidecar (never deleted), the
surviving records are re-framed as v2 with fresh contiguous ``rec``
numbers, and stale ``seal`` records are dropped — the repaired file is
deliberately *unsealed* so recovery knows the run was interrupted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.storage.format import JournalScan, encode_record, scan_file

__all__ = ["scan_path", "repair_file", "RepairResult", "find_double_serves"]


@dataclass
class RepairResult:
    """What one :func:`repair_file` call changed."""

    path: str
    records_kept: int = 0
    quarantined: int = 0
    tail_truncated: bool = False
    seals_dropped: int = 0
    rewritten: bool = False
    quarantine_path: str = ""

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "records_kept": self.records_kept,
            "quarantined": self.quarantined,
            "tail_truncated": self.tail_truncated,
            "seals_dropped": self.seals_dropped,
            "rewritten": self.rewritten,
        }


def scan_path(path: Union[str, Path]) -> dict[str, JournalScan]:
    """Scan one journal file, or every segment in a directory.

    Keys are file names (segment names for a directory), values the
    per-file scans; callers aggregate.
    """
    path = Path(path)
    if path.is_dir():
        # Local import: fsck stays usable on bare files without pulling
        # the cluster package in.
        from repro.serving.cluster.recovery import discover_segments

        segments = discover_segments(path)
        if not segments:
            raise FileNotFoundError(f"no journal segments in {path}")
        return {
            found.name: scan_file(found)
            for _shard, found in sorted(segments.items())
        }
    if not path.exists():
        raise FileNotFoundError(f"no journal at {path}")
    return {path.name: scan_file(path)}


def find_double_serves(scans: dict[str, JournalScan]) -> dict[int, list[str]]:
    """seqs committed by more than one segment → the offending files."""
    owners: dict[int, list[str]] = {}
    for name, scan in scans.items():
        for seq in scan.committed:
            owners.setdefault(seq, []).append(name)
    return {seq: names for seq, names in sorted(owners.items()) if len(names) > 1}


def repair_file(path: Union[str, Path]) -> RepairResult:
    """Rewrite a journal keeping only its verifiably-good records.

    A clean, contiguous file is left byte-for-byte untouched.  Damaged
    raw lines are appended to ``<name>.quarantine`` as JSON wrappers
    (``{"line": n, "reason": ..., "raw": ...}``) before the rewrite, so
    repair never destroys evidence.
    """
    path = Path(path)
    scan = scan_file(path)
    result = RepairResult(path=str(path))
    if not scan.issues:
        result.records_kept = scan.records
        return result

    quarantine = path.with_name(path.name + ".quarantine")
    damaged = [issue for issue in scan.issues if issue.raw]
    if damaged:
        with quarantine.open("a", encoding="utf-8") as sidecar:
            for issue in damaged:
                sidecar.write(
                    json.dumps(
                        {"line": issue.line, "reason": issue.reason,
                         "raw": issue.raw},
                        sort_keys=True,
                    )
                    + "\n"
                )
        result.quarantine_path = str(quarantine)
    result.quarantined = len(damaged)

    if scan.torn_tail and not scan.interior_issues:
        # Pure tear: truncation is the whole repair — no rewrite, the
        # surviving bytes (and any v1 framing) stay untouched.
        with open(path, "r+b") as handle:
            handle.truncate(scan.good_bytes)
        result.tail_truncated = True
        result.records_kept = scan.records
        return result

    # Interior damage: rewrite from the parsed records, re-framed v2
    # with fresh contiguous recs.  Seals describe a history that is no
    # longer intact — drop them.
    keep = [record for record in scan.parsed if record.get("type") != "seal"]
    result.seals_dropped = scan.seals
    tmp = path.with_name(path.name + ".repair-tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        for rec, record in enumerate(keep):
            body = {key: value for key, value in record.items() if key != "rec"}
            handle.write(encode_record(body, rec) + "\n")
    tmp.replace(path)
    result.tail_truncated = scan.torn_tail
    result.records_kept = len(keep)
    result.rewritten = True
    return result
