"""Crash-consistency fuzzer: power cuts at every append boundary.

The recovery story (journal → segments → merged replay) is certified in
CI against *one* kill point per job.  This module certifies all of them:
it generates a 3-shard routed reference run whose segments are written
through a recording opener (capturing the byte length of every segment
after every append), then enumerates simulated power cuts —

* **clean cuts** — after append k, every segment truncated to its exact
  length at that instant (simultaneous power loss across shards);
* **torn cuts** — append k+1 survives only to its midpoint byte (the
  tear a real disk leaves when power dies mid-sector);
* **bit-flip trials** — the full run survives but one seeded bit inside
  one append is inverted (silent media corruption discovered on load)

— and recovers each one with :func:`~repro.serving.journal.recover_run`
over a :class:`~repro.serving.cluster.recovery.ShardedJournalView`.

The certification invariant, per cut: recovery produces a report
**byte-identical** to the reference, or a **typed, correctly-scoped**
error (``JournalCorruptionError`` for interior damage — after which
``repro fsck --repair`` must restore byte-identical recovery) — never a
wrong report, a double-serve, or a traceback.  Every draw is seeded, so
the same seed yields the same cut-point outcomes on every run and
platform (CI diffs two invocations).

The reference run reuses the recovery path itself to generate segments:
``recover_run`` over empty headered segments *is* a serial sharded
serve (ring-routed accepts/commits, engine cache semantics), so cut
recoveries and the reference converge by construction — any divergence
is a real crash-consistency bug, not harness skew.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.storage.faults import stable_hash
from repro.storage.format import JournalCorruptionError, JournalVersionError
from repro.storage.fsck import repair_file

__all__ = ["CrashFuzzConfig", "FuzzOutcome", "FuzzResult", "run_crash_fuzz"]


@dataclass
class CrashFuzzConfig:
    """Knobs of one fuzzing campaign (all deterministic by ``seed``)."""

    shards: int = 3
    requests: int = 12
    distinct: int = 6
    seed: int = 0
    candidates: int = 3
    routing: bool = True
    benchmark: str = "cluster-smoke"
    #: include torn (mid-append) cut variants
    torn: bool = True
    #: seeded single-bit corruption trials on the completed run
    bitflips: int = 3
    #: bound clean and torn cut enumerations to the first N each
    #: (None = every boundary); the CI smoke uses a small N
    limit: Optional[int] = None


@dataclass
class FuzzOutcome:
    """One cut point's verdict."""

    cut: str  # "clean-007", "torn-012", "flip-002"
    kind: str  # "clean" | "torn" | "flip"
    outcome: str  # "identical" | "typed-loss" | "empty-journal" |
    #              "wrong-report" | "double-serve" | "traceback"
    detail: str = ""
    #: bit-flip trials only: recovery verdict after ``repro fsck --repair``
    repaired: Optional[str] = None
    ok: bool = False

    def to_dict(self) -> dict:
        payload = {
            "cut": self.cut,
            "kind": self.kind,
            "outcome": self.outcome,
            "detail": self.detail,
            "ok": self.ok,
        }
        if self.repaired is not None:
            payload["repaired"] = self.repaired
        return payload


@dataclass
class FuzzResult:
    """Campaign verdict: per-cut outcomes plus the rolled-up counts."""

    outcomes: list = field(default_factory=list)
    reference_doc: str = ""
    cut_points: int = 0

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    def summary(self) -> dict:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.outcome] = counts.get(outcome.outcome, 0) + 1
        return {
            "cuts": len(self.outcomes),
            "append_boundaries": self.cut_points,
            "ok": self.ok,
            "outcomes": dict(sorted(counts.items())),
        }

    def format(self) -> str:
        s = self.summary()
        mix = ", ".join(f"{k}={v}" for k, v in s["outcomes"].items())
        verdict = "CERTIFIED" if self.ok else "FAILED"
        return (
            f"crash-fuzz: {s['cuts']} cuts over {s['append_boundaries']} "
            f"append boundaries — {mix} — {verdict}"
        )


class _RecordingFile:
    """Pass-through append handle that logs each write's byte effect."""

    def __init__(self, storage: "_RecordingStorage", path: Path, handle):
        self._storage = storage
        self._path = path
        self._handle = handle

    def write(self, data: str) -> int:
        written = self._handle.write(data)
        self._storage.record(self._path.name, len(data.encode("utf-8")))
        return written

    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "_RecordingFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _RecordingStorage:
    """Opener whose log is the global append sequence across segments."""

    def __init__(self):
        #: (segment_name, size_after_append, append_bytes), append order
        self.log: list[tuple[str, int, int]] = []
        self._sizes: dict[str, int] = {}

    def opener(self, path: Union[str, Path], mode: str) -> _RecordingFile:
        path = Path(path)
        return _RecordingFile(self, path, open(path, mode, encoding="utf-8"))

    def record(self, name: str, nbytes: int) -> None:
        size = self._sizes.get(name, 0) + nbytes
        self._sizes[name] = size
        self.log.append((name, size, nbytes))


def _build_pipeline(config: CrashFuzzConfig):
    """(workload, pipeline, cluster_config) for the campaign."""
    from repro.serving.cluster.config import ClusterConfig, build_worker_pipeline
    from repro.serving.workload import zipf_workload

    routing_config: dict = {}
    if config.routing:
        from repro.routing import RoutingConfig

        routing_config = RoutingConfig().to_dict()
    cluster = ClusterConfig(
        shards=config.shards,
        benchmark=config.benchmark,
        candidates=config.candidates,
        seed=config.seed,
        journal_dir="unused",  # segment paths come from the fuzz workdir
        routing=config.routing,
        routing_config=routing_config,
    )
    benchmark, pipeline = build_worker_pipeline(cluster)
    # Spread the distinct pool across databases so the ring actually
    # partitions the workload over all shards.
    by_db: dict = {}
    for example in benchmark.dev:
        by_db.setdefault(example.db_id, []).append(example)
    queues = list(by_db.values())
    pool, index = [], 0
    while len(pool) < config.distinct and any(queues):
        queue = queues[index % len(queues)]
        if queue:
            pool.append(queue.pop(0))
        index += 1
    workload = zipf_workload(pool, requests=config.requests, seed=config.seed)
    return workload, pipeline, cluster


def _write_reference(config, cluster, pipeline, workload, ref_dir: Path):
    """Serve the workload into 3 recorded segments; return (log, doc)."""
    from repro.serving.cluster.config import segment_name
    from repro.serving.cluster.recovery import ShardedJournalView
    from repro.serving.journal import (
        ServingJournal,
        assemble_report,
        recover_run,
    )

    ref_dir.mkdir(parents=True, exist_ok=True)
    recording = _RecordingStorage()
    for shard in range(config.shards):
        journal = ServingJournal(
            ref_dir / segment_name(shard), opener=recording.opener
        )
        journal.write_header(cluster.header_config(shard))
    view = ShardedJournalView(ref_dir, opener=recording.opener)
    outcomes = recover_run(view, pipeline, workload)
    report = assemble_report(outcomes, workload, pipeline, name="crashfuzz")
    doc = json.dumps(report.deterministic_dict(), sort_keys=True)
    return recording.log, doc


def _lengths_at(log, k: int) -> dict[str, int]:
    """Per-segment byte lengths after the first ``k`` global appends."""
    lengths: dict[str, int] = {}
    for name, size_after, _nbytes in log[:k]:
        lengths[name] = size_after
    return lengths


def _materialize(cut_dir: Path, lengths: dict[str, int], ref_bytes: dict):
    cut_dir.mkdir(parents=True, exist_ok=True)
    for name, length in lengths.items():
        (cut_dir / name).write_bytes(ref_bytes[name][:length])


def _recover(cut_dir: Path, pipeline, workload, ref_doc: str):
    """(outcome, detail) for one materialized cut directory."""
    from repro.serving.cluster.recovery import DoubleServeError, ShardedJournalView
    from repro.serving.journal import assemble_report, recover_run

    try:
        view = ShardedJournalView(cut_dir)
        outcomes = recover_run(view, pipeline, workload)
        report = assemble_report(outcomes, workload, pipeline, name="crashfuzz")
        doc = json.dumps(report.deterministic_dict(), sort_keys=True)
    except FileNotFoundError:
        return "empty-journal", "no-segments"
    except (JournalCorruptionError, JournalVersionError) as exc:
        name = Path(getattr(exc, "path", "?")).name
        return "typed-loss", f"{type(exc).__name__}:{name}"
    except DoubleServeError as exc:
        return "double-serve", f"seq={exc.seq}"
    except Exception as exc:  # noqa: BLE001 — the cert counts tracebacks
        return "traceback", f"{type(exc).__name__}: {exc}"
    if doc != ref_doc:
        return "wrong-report", "report-diverged"
    return "identical", ""


def _flip_positions(log, config: CrashFuzzConfig) -> list[int]:
    """Seeded sample of append indices to bit-flip (spread, deduped)."""
    candidates = [k for k, (_n, _s, nbytes) in enumerate(log) if nbytes >= 8]
    picks: list[int] = []
    for trial in range(config.bitflips):
        if not candidates:
            break
        pick = candidates[
            stable_hash("flip-pick", config.seed, trial) % len(candidates)
        ]
        if pick not in picks:
            picks.append(pick)
    return picks


def run_crash_fuzz(
    config: CrashFuzzConfig, workdir: Union[str, Path]
) -> FuzzResult:
    """Run one full campaign under ``workdir`` (left on disk for triage)."""
    workdir = Path(workdir)
    workload, pipeline, cluster = _build_pipeline(config)
    ref_dir = workdir / "reference"
    log, ref_doc = _write_reference(config, cluster, pipeline, workload, ref_dir)
    ref_bytes = {
        path.name: path.read_bytes() for path in ref_dir.glob("journal-shard-*")
    }
    result = FuzzResult(reference_doc=ref_doc, cut_points=len(log))

    clean_ks = list(range(len(log) + 1))
    torn_ks = (
        [k for k, (_n, _s, nbytes) in enumerate(log) if nbytes >= 2]
        if config.torn
        else []
    )
    if config.limit is not None:
        clean_ks = clean_ks[: config.limit]
        torn_ks = torn_ks[: config.limit]

    def run_cut(cut_id, kind, lengths):
        cut_dir = workdir / "cuts" / cut_id
        _materialize(cut_dir, lengths, ref_bytes)
        outcome, detail = _recover(cut_dir, pipeline, workload, ref_doc)
        entry = FuzzOutcome(cut=cut_id, kind=kind, outcome=outcome, detail=detail)
        # Pure power cuts must never lose anything recovery can't
        # rebuild: byte-identical, or (cut before any segment existed) a
        # typed empty-journal report.
        entry.ok = outcome == "identical" or (
            outcome == "empty-journal" and not lengths
        )
        result.outcomes.append(entry)
        shutil.rmtree(cut_dir, ignore_errors=True)

    for k in clean_ks:
        run_cut(f"clean-{k:03d}", "clean", _lengths_at(log, k))

    for k in torn_ks:
        name, _size_after, nbytes = log[k]
        lengths = _lengths_at(log, k)
        lengths[name] = lengths.get(name, 0) + nbytes // 2
        run_cut(f"torn-{k:03d}", "torn", lengths)

    for trial, k in enumerate(_flip_positions(log, config)):
        name, size_after, nbytes = log[k]
        lengths = _lengths_at(log, len(log))
        data = bytearray(ref_bytes[name])
        start = size_after - nbytes
        position = start + stable_hash("flip-pos", config.seed, k) % max(
            1, nbytes - 1
        )
        data[position] ^= 1 << (stable_hash("flip-bit", config.seed, k) % 8)
        flipped = dict(ref_bytes)
        flipped[name] = bytes(data)
        cut_id = f"flip-{trial:03d}"
        cut_dir = workdir / "cuts" / cut_id
        cut_dir.mkdir(parents=True, exist_ok=True)
        for seg_name, length in lengths.items():
            (cut_dir / seg_name).write_bytes(flipped[seg_name][:length])
        outcome, detail = _recover(cut_dir, pipeline, workload, ref_doc)
        entry = FuzzOutcome(cut=cut_id, kind="flip", outcome=outcome, detail=detail)
        if outcome == "typed-loss":
            for segment in cut_dir.glob("journal-shard-*.jsonl"):
                repair_file(segment)
            repaired, _rdetail = _recover(cut_dir, pipeline, workload, ref_doc)
            entry.repaired = repaired
            entry.ok = repaired == "identical"
        else:
            entry.ok = outcome == "identical"
        result.outcomes.append(entry)
        shutil.rmtree(cut_dir, ignore_errors=True)

    return result
