"""Seeded, deterministic filesystem fault injection for journal writes.

The database layer has ``execution/chaos.py``; this is its storage
sibling.  :class:`FaultyStorage` hands out an ``opener(path, mode)``
that :class:`~repro.serving.journal.ServingJournal` and
:class:`~repro.reliability.checkpoint.EvalCheckpoint` accept as a
drop-in for :func:`open`, and every ``write()`` through it draws a
fault from a seeded FNV hash keyed on ``(seed, path, append-index)`` —
the same draw discipline as the database chaos layer, so a given seed
produces the same fault schedule on every run and every platform.

Fault taxonomy (all independent, banded off one draw):

* **torn write** — the full line reaches the OS (the caller sees
  success and the live process keeps a consistent in-memory view), but
  only a seeded *prefix* is marked durable: after :meth:`power_cut` the
  file ends mid-record, exactly like a real tear discovered on reboot.
* **short write** — only a prefix reaches the file and the caller gets
  ``EIO`` immediately (an interrupted ``write(2)``); the journal's
  brownout path owns what happens next.
* **bit flip** — the line lands with one seeded bit inverted: silent
  media corruption that only the v2 CRC can catch, on the *next* load.
* **ENOSPC / EIO** — the write raises before any byte lands.
  ``enospc_after=N`` is the deterministic variant: the first N appends
  per file succeed, every later one raises ``ENOSPC`` (the CI brownout
  smoke uses this to trip ``journal_disabled`` at a fixed point).

Durability model: bytes become durable only on ``sync()`` (fsync).
:meth:`FaultyStorage.power_cut` truncates every tracked file to its
durable length plus the contiguous fully-persisted prefix of the writes
after the last sync — i.e. sequential writeback, where the first torn
write ends the surviving prefix.  Lost *interior* pages are modeled
separately (bit flips + fsck tests) to keep the cut model reviewable.
"""

from __future__ import annotations

import errno
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

__all__ = ["StorageFaultPlan", "FaultyFile", "FaultyStorage", "stable_hash"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(*parts: object) -> int:
    """Process-independent FNV-1a hash with a murmur-style finalizer.

    Mirrors ``execution/chaos.py`` so one seed discipline governs every
    chaos layer in the repo.
    """
    value = _FNV_OFFSET
    data = "|".join(map(str, parts)).encode()
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK
    value ^= value >> 33
    return value


@dataclass(frozen=True)
class StorageFaultPlan:
    """Per-write fault rates (plus the deterministic ENOSPC trigger)."""

    torn_write: float = 0.0
    short_write: float = 0.0
    bit_flip: float = 0.0
    enospc: float = 0.0
    eio: float = 0.0
    #: deterministic: appends beyond this count (per path) raise ENOSPC
    enospc_after: Optional[int] = None

    def __post_init__(self):
        for name in ("torn_write", "short_write", "bit_flip", "enospc", "eio"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.total_rate > 1.0:
            raise ValueError("summed fault rates must be <= 1")
        if self.enospc_after is not None and self.enospc_after < 0:
            raise ValueError("enospc_after must be >= 0")

    @property
    def total_rate(self) -> float:
        return (
            self.torn_write + self.short_write + self.bit_flip
            + self.enospc + self.eio
        )

    @classmethod
    def none(cls) -> "StorageFaultPlan":
        return cls()

    @classmethod
    def chaos(cls, rate: float = 0.2) -> "StorageFaultPlan":
        """Spread ``rate`` across the non-erroring corruption kinds."""
        return cls(torn_write=rate / 2, bit_flip=rate / 2)

    def to_dict(self) -> dict:
        return {
            "torn_write": self.torn_write,
            "short_write": self.short_write,
            "bit_flip": self.bit_flip,
            "enospc": self.enospc,
            "eio": self.eio,
            "enospc_after": self.enospc_after,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StorageFaultPlan":
        known = {f: payload[f] for f in (
            "torn_write", "short_write", "bit_flip", "enospc", "eio",
            "enospc_after") if f in payload}
        return cls(**known)


class _PathState:
    """Per-file durability bookkeeping (guarded by FaultyStorage._lock)."""

    __slots__ = ("appends", "durable_len", "cut_len", "tail_intact")

    def __init__(self, initial_len: int):
        self.appends = 0  # writes ever issued to this path
        self.durable_len = initial_len  # survives fsync-respecting crash
        self.cut_len = initial_len  # survives a power cut right now
        self.tail_intact = True  # no tear since the last sync


class FaultyFile:
    """File handle that injects faults on ``write`` and tracks durability.

    Quacks like the slice of a text-mode file object the journal and
    checkpoint use: ``write``/``flush``/``fileno``/``close`` plus
    context-manager protocol, and adds ``sync()`` — callers that fsync
    through ``sync()`` (rather than ``os.fsync`` on the raw fd) let the
    harness observe durability points.
    """

    def __init__(self, storage: "FaultyStorage", path: Path, handle):
        self._storage = storage
        self._path = path
        self._handle = handle  # binary append handle on the real file

    # ------------------------------------------------------------- file API

    def write(self, data: str) -> int:
        payload = data.encode("utf-8")
        self._storage._write(self._path, self._handle, payload)
        return len(data)

    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def sync(self) -> None:
        """fsync: everything written so far becomes durable."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._storage._mark_durable(self._path)

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FaultyStorage:
    """Factory for fault-injecting file handles, plus the power switch."""

    def __init__(self, plan: StorageFaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self._lock = threading.Lock()
        self._paths: dict[str, _PathState] = {}
        self.stats = {
            "writes": 0,
            "torn_writes": 0,
            "short_writes": 0,
            "bit_flips": 0,
            "enospc": 0,
            "eio": 0,
        }
        #: one dict per injected fault, for assertions and debugging
        self.events: list[dict] = []

    # ------------------------------------------------------------ public API

    def opener(self, path: Union[str, Path], mode: str):
        """Drop-in for the journal/checkpoint ``opener`` injection point."""
        if mode != "a":
            raise ValueError(f"FaultyStorage only supports append mode, got {mode!r}")
        path = Path(path)
        with self._lock:
            if str(path) not in self._paths:
                initial = path.stat().st_size if path.exists() else 0
                self._paths[str(path)] = _PathState(initial)
        return FaultyFile(self, path, open(path, "ab"))

    def power_cut(self) -> dict[str, int]:
        """Simulate power loss: truncate every file to its durable bytes.

        Returns ``{path: bytes_lost}`` for files that lost anything.
        """
        lost: dict[str, int] = {}
        with self._lock:
            for key, state in self._paths.items():
                path = Path(key)
                if not path.exists():
                    continue
                size = path.stat().st_size
                keep = min(state.cut_len, size)
                if size > keep:
                    with open(path, "r+b") as handle:
                        handle.truncate(keep)
                    lost[key] = size - keep
                state.durable_len = keep
                state.cut_len = keep
                state.tail_intact = True
        return lost

    def stats_dict(self) -> dict:
        with self._lock:
            return dict(self.stats)

    # ------------------------------------------------------------- internals

    def _draw(self, path: Path, append_index: int) -> float:
        return stable_hash(self.seed, str(path), append_index) / float(_MASK)

    def _pick_fault(self, path: Path, state: _PathState) -> Optional[str]:
        if (
            self.plan.enospc_after is not None
            and state.appends >= self.plan.enospc_after
        ):
            return "enospc"
        draw = self._draw(path, state.appends)
        band = 0.0
        for kind in ("torn_write", "short_write", "bit_flip", "enospc", "eio"):
            rate = getattr(self.plan, kind)
            if rate and draw < band + rate:
                return kind
            band += rate
        return None

    def _write(self, path: Path, handle, payload: bytes) -> None:
        with self._lock:
            state = self._paths[str(path)]
            fault = self._pick_fault(path, state)
            append_index = state.appends
            state.appends += 1
            self.stats["writes"] += 1
            if fault is None:
                handle.write(payload)
                if state.tail_intact:
                    state.cut_len += len(payload)
                return
            self._record(fault, path, append_index)
            if fault == "torn_write":
                # Full bytes reach the OS; only a prefix would survive a
                # power cut.  Live state stays consistent — the lie is
                # only visible after power_cut().
                handle.write(payload)
                prefix = self._tear_point(path, append_index, len(payload))
                if state.tail_intact:
                    state.cut_len += prefix
                state.tail_intact = False
                return
            if fault == "short_write":
                prefix = self._tear_point(path, append_index, len(payload))
                handle.write(payload[:prefix])
                handle.flush()
                if state.tail_intact:
                    state.cut_len += prefix
                state.tail_intact = False
                raise OSError(errno.EIO, f"short write ({prefix}/{len(payload)} bytes)")
            if fault == "bit_flip":
                flipped = self._flip_bit(path, append_index, payload)
                handle.write(flipped)
                if state.tail_intact:
                    state.cut_len += len(flipped)
                return
            if fault == "enospc":
                raise OSError(errno.ENOSPC, "no space left on device (injected)")
            raise OSError(errno.EIO, "I/O error (injected)")

    def _mark_durable(self, path: Path) -> None:
        with self._lock:
            state = self._paths.get(str(path))
            if state is None:
                return
            size = path.stat().st_size if path.exists() else 0
            state.durable_len = size
            state.cut_len = size
            state.tail_intact = True

    def _tear_point(self, path: Path, append_index: int, length: int) -> int:
        """Seeded cut inside the payload: at least 1 byte, never all."""
        if length <= 1:
            return 0
        return 1 + stable_hash("tear", self.seed, str(path), append_index) % (
            length - 1
        )

    def _flip_bit(self, path: Path, append_index: int, payload: bytes) -> bytes:
        # Flip inside the line body, never the trailing newline — the
        # damage must corrupt a record, not the framing.
        body_len = max(1, len(payload) - 1)
        position = stable_hash("flip", self.seed, str(path), append_index) % body_len
        bit = stable_hash("bit", self.seed, str(path), append_index) % 8
        flipped = bytearray(payload)
        flipped[position] ^= 1 << bit
        return bytes(flipped)

    def _record(self, kind: str, path: Path, append_index: int) -> None:
        key = {"torn_write": "torn_writes", "short_write": "short_writes",
               "bit_flip": "bit_flips"}.get(kind, kind)
        self.stats[key] += 1
        self.events.append(
            {"kind": kind, "path": str(path), "append_index": append_index}
        )
