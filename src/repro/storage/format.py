"""Journal record grammar v2: CRC-framed JSONL with record sequencing.

The v1 journal (PR 5) wrote bare ``json.dumps(record)`` lines and loaded
them best-effort — any undecodable line was silently skipped.  That is
the right call for a *torn tail* (a kill mid-write truncates the last
line; the request simply re-runs) but the wrong call for *interior*
damage (a flipped bit or a lost page in the middle of the file), where
"skip it" can silently drop a committed result and still certify the
recovery as clean.

v2 frames every record so the reader can tell the two apart::

    {"crc": <crc32 of the line minus its crc field>, "rec": <n>, ...record}

* ``crc`` — CRC32 (:func:`zlib.crc32`) over the canonical serialization
  (``json.dumps(body, sort_keys=True)``) of the record *without* the
  ``crc`` key.  A mismatch means the line's bytes are not the bytes the
  writer framed: corruption, not a tear.
* ``rec`` — the record's position in the file (0-based, monotone across
  every append including headers and seals).  A gap between two
  well-formed neighbours means a whole line vanished — interior loss
  that no tail-truncation can explain.
* ``{"type": "seal", "epoch": E, "committed": C}`` — appended (and
  fsynced) on clean shutdown.  A file whose last record is a seal was
  closed deliberately; anything else was interrupted.

**v1 read-compat:** a line without a ``crc`` key is a v1 record and is
accepted unverified; rec continuity is not enforced across v1 records.
Strict interior-damage detection is keyed on the *header* version
(``header_version >= 2``): files written before v2 — or headerless
scratch journals — keep the old tolerant semantics, so every journal
written before this format change still loads byte-for-byte.

:func:`scan_file` is the one reader both :class:`ServingJournal` and
``repro fsck`` build on: it never raises on damage, it *classifies* it
(:class:`LineIssue`, tail vs interior) and leaves policy to the caller.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "JournalCorruptionError",
    "JournalVersionError",
    "LineIssue",
    "JournalScan",
    "encode_record",
    "decode_line",
    "scan_file",
]


class JournalVersionError(RuntimeError):
    """The journal header declares a format newer than this reader."""

    def __init__(self, path: Union[str, Path], found: int, supported: int):
        super().__init__(
            f"journal {path} is format v{found}, newer than the supported "
            f"v{supported}; upgrade repro before recovering this run"
        )
        self.path = str(path)
        self.found = found
        self.supported = supported


class JournalCorruptionError(RuntimeError):
    """Interior journal damage that truncating the tail cannot repair.

    Carries the full :class:`JournalScan` so callers can report a
    correctly-scoped loss (how many records *are* salvageable) instead
    of a bare stack trace.
    """

    def __init__(self, path: Union[str, Path], scan: "JournalScan"):
        first = scan.interior_issues[0] if scan.interior_issues else None
        where = (
            f"line {first.line} ({first.reason})" if first else "interior damage"
        )
        super().__init__(
            f"journal corruption in {path} at {where}: "
            f"{len(scan.interior_issues)} damaged line(s); "
            f"{scan.records} well-formed records salvageable "
            f"({len(scan.accepted)} accepted, {len(scan.committed)} committed); "
            f"run 'repro fsck --journal {path} --repair' to quarantine the damage"
        )
        self.path = str(path)
        self.scan = scan


def encode_record(record: dict, rec: int) -> str:
    """Frame one record as a v2 journal line (no trailing newline).

    The CRC covers the canonical (sorted-keys) serialization of the body
    *including* ``rec``, so both bit flips and a record replayed at the
    wrong position fail verification.
    """
    body = dict(record)
    body["rec"] = rec
    payload = json.dumps(body, sort_keys=True)
    body["crc"] = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return json.dumps(body, sort_keys=True)


def decode_line(line: str) -> tuple[Optional[dict], Optional[str]]:
    """Decode one journal line: ``(record, None)`` or ``(None, reason)``.

    v1 lines (no ``crc`` key) pass through unverified — the compat rule.
    The returned record keeps its ``rec`` key (v2) for continuity checks.
    """
    try:
        parsed = json.loads(line)
    except json.JSONDecodeError:
        return None, "unparseable"
    if not isinstance(parsed, dict):
        return None, "not-an-object"
    if "crc" not in parsed:
        if "rec" in parsed:
            # v1 records predate ``rec``: a record carrying one without
            # a crc is a v2 frame whose crc key itself was corrupted.
            return None, "crc-mismatch"
        return parsed, None  # v1 record: no integrity envelope
    body = {key: value for key, value in parsed.items() if key != "crc"}
    payload = json.dumps(body, sort_keys=True)
    if (zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF) != parsed["crc"]:
        return None, "crc-mismatch"
    return body, None


@dataclass
class LineIssue:
    """One damaged journal line, classified tail-vs-interior."""

    line: int  # 1-based line number in the file
    reason: str  # "unparseable" | "not-an-object" | "crc-mismatch" | "rec-gap"
    at_tail: bool  # True: the benign torn-last-line case
    raw: str = ""  # the damaged bytes (lossy-decoded), for quarantine

    def to_dict(self) -> dict:
        return {"line": self.line, "reason": self.reason, "at_tail": self.at_tail}


@dataclass
class JournalScan:
    """Everything one pass over a journal file can tell you.

    Never raises on damage — ``issues`` carries the classification and
    the caller picks the policy (truncate, raise, or tolerate).
    """

    path: str
    records: int = 0  # well-formed records (any version)
    v1_records: int = 0
    v2_records: int = 0
    header_version: Optional[int] = None
    header_config: dict = field(default_factory=dict)
    accepted: set = field(default_factory=set)
    committed: set = field(default_factory=set)
    seals: int = 0
    epoch: int = 0  # highest seal epoch seen
    sealed: bool = False  # the file's last record is a seal
    issues: list = field(default_factory=list)
    good_bytes: int = 0  # offset just past the last well-formed line
    next_rec: int = 0  # rec the next append should carry
    parsed: list = field(default_factory=list)  # decoded records, in order

    @property
    def torn_tail(self) -> bool:
        """Exactly the final line is damaged — safe to truncate."""
        return any(issue.at_tail for issue in self.issues)

    @property
    def interior_issues(self) -> list:
        return [issue for issue in self.issues if not issue.at_tail]

    @property
    def pending(self) -> set:
        return self.accepted - self.committed

    def loss_scope(self) -> dict:
        """JSON-ready accounting of what a tolerant read would lose."""
        return {
            "path": self.path,
            "records": self.records,
            "accepted": len(self.accepted),
            "committed": len(self.committed),
            "pending": len(self.pending),
            "damaged_lines": len(self.issues),
            "interior_damage": len(self.interior_issues),
            "torn_tail": self.torn_tail,
            "sealed": self.sealed,
        }


def scan_file(path: Union[str, Path]) -> JournalScan:
    """Classify every line of a journal file without raising.

    Tail-vs-interior rule: a single damaged *final* line is a torn tail
    (the one shape a crash mid-append produces); a damaged line with any
    well-formed line after it — or more than one damaged trailing line,
    or a rec discontinuity between well-formed v2 records — is interior
    damage.  ``good_bytes`` is the truncation point that drops a torn
    tail and nothing else.
    """
    path = Path(path)
    scan = JournalScan(path=str(path))
    data = path.read_bytes()
    offset = 0
    expected_rec: Optional[int] = 0  # None: resync after a damaged line
    last_was_seal = False
    last_good_line = 0
    for line_no, raw in enumerate(data.split(b"\n"), start=1):
        line_end = offset + len(raw) + 1  # +1 for the split newline
        stripped = raw.strip()
        if not stripped:
            offset = line_end
            continue
        text = stripped.decode("utf-8", errors="replace")
        record, reason = decode_line(text)
        if record is None:
            scan.issues.append(
                LineIssue(line=line_no, reason=reason or "unparseable",
                          at_tail=False, raw=text)
            )
            expected_rec = None  # unknown how many recs the damage ate
            offset = line_end
            continue
        rec = record.get("rec")
        if rec is not None:
            if expected_rec is not None and rec != expected_rec:
                # Well-formed neighbours with a rec hole: a whole line
                # (newline included) vanished — interior loss, at_tail
                # never applies.
                scan.issues.append(
                    LineIssue(line=line_no, reason="rec-gap", at_tail=False)
                )
            expected_rec = rec + 1
            scan.v2_records += 1
        else:
            # v1 record: consumes a rec slot without carrying one.
            if expected_rec is not None:
                expected_rec += 1
            scan.v1_records += 1
        scan.records += 1
        scan.parsed.append(record)
        scan.good_bytes = min(line_end, len(data))
        last_good_line = line_no
        kind = record.get("type")
        last_was_seal = kind == "seal"
        if kind == "header":
            if scan.header_version is None:
                scan.header_version = int(record.get("version", 1))
                scan.header_config = record.get("config", {}) or {}
        elif kind == "accepted" and record.get("seq") is not None:
            scan.accepted.add(record["seq"])
        elif kind == "committed" and record.get("seq") is not None:
            scan.committed.add(record["seq"])
        elif kind == "seal":
            scan.seals += 1
            scan.epoch = max(scan.epoch, int(record.get("epoch", 0)))
        offset = line_end
    scan.sealed = scan.records > 0 and last_was_seal
    scan.next_rec = scan.records
    # Tail classification: exactly one damaged line, with no well-formed
    # line after it, is the tear a crash mid-append produces.  rec-gap
    # issues never qualify (the line itself parsed; its *predecessor*
    # vanished).
    damaged = [issue for issue in scan.issues if issue.reason != "rec-gap"]
    if len(damaged) == 1 and damaged[0].line > last_good_line:
        damaged[0].at_tail = True
    return scan
