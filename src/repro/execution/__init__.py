"""SQL execution substrate: safe SQLite execution, result normalization,
an error taxonomy for the Refinement stage, gold-vs-predicted result
comparison for Execution Accuracy, and seeded database-layer fault
injection for chaos certification."""

from repro.execution.chaos import DbFaultKind, DbFaultPlan, FaultInjectingExecutor
from repro.execution.executor import (
    TRANSIENT_STATUSES,
    ExecutionError,
    ExecutionOutcome,
    ExecutionStatus,
    SQLExecutor,
    results_match,
)

__all__ = [
    "DbFaultKind",
    "DbFaultPlan",
    "ExecutionError",
    "ExecutionOutcome",
    "ExecutionStatus",
    "FaultInjectingExecutor",
    "SQLExecutor",
    "TRANSIENT_STATUSES",
    "results_match",
]
