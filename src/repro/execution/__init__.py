"""SQL execution substrate: safe SQLite execution, result normalization,
an error taxonomy for the Refinement stage, and gold-vs-predicted result
comparison for Execution Accuracy."""

from repro.execution.executor import (
    ExecutionError,
    ExecutionOutcome,
    ExecutionStatus,
    SQLExecutor,
    results_match,
)

__all__ = [
    "ExecutionError",
    "ExecutionOutcome",
    "ExecutionStatus",
    "SQLExecutor",
    "results_match",
]
