"""Deterministic database-layer fault injection.

:class:`FaultInjectingExecutor` is the execution-side twin of
:class:`~repro.reliability.injection.FaultInjectingLLM`: it wraps any
executor and injects the failure modes a hot SQLite dependency shows in
production — a locked database, disk I/O errors, dropped connections, slow
queries, and silently damaged result rows — at configured, seeded rates.

Two families, mirroring the LLM fault taxonomy:

* **error faults** surface as error-status
  :class:`~repro.execution.executor.ExecutionOutcome`\\ s classified into
  the :class:`~repro.execution.executor.ExecutionStatus` taxonomy
  (``LOCKED``, ``DISK_ERROR``, ``CONNECTION_ERROR``) — the Refinement
  stage's correction loop and the serving layer's hedging see exactly what
  a real failure would give them;
* **content faults** succeed with damaged data: ``slow_query`` adds
  recorded virtual seconds (charged to the request's
  :class:`~repro.reliability.deadline.Deadline`), ``truncate_rows`` /
  ``corrupt_rows`` return a wrong result with an OK status — damage only a
  vote across candidates can absorb.

Determinism under concurrency: every draw derives from an FNV-hash of
``(seed, sql, attempt, occurrence)`` — not from a shared RNG sequence —
where ``occurrence`` counts prior executions of that ``(sql, attempt)``
pair.  Repeated executions of one statement therefore face independent
draws (transient faults are conditions of the *moment*, not of the
statement text), a hedged re-execution passes a different ``attempt`` and
is decorrelated from its primary, and the *multiset* of draws each
statement faces is schedule-independent: thread interleaving can only
permute which caller gets which outcome, never how many faults of each
kind a run injects.  Serial runs (the chaos benches) replay
byte-for-byte.

``connection_drop`` is injected *physically*: the wrapped executor's
SQLite connection is closed, so the statement (and every later one on that
connection) genuinely fails until the executor's ``reconnect`` recycling
recovers it.
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.execution.executor import (
    ExecutionError,
    ExecutionOutcome,
    ExecutionStatus,
    _connection_lock,
)
from repro.observability.context import add_event, current_span

if TYPE_CHECKING:  # avoid a circular import (reliability → core → execution)
    from repro.reliability.deadline import Deadline
    from repro.reliability.stats import ReliabilityStats

__all__ = ["DbFaultKind", "DbFaultPlan", "FaultInjectingExecutor"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def _stable_hash(*parts: object) -> int:
    """Process-independent FNV-1a hash with a murmur-style finalizer."""
    value = _FNV_OFFSET
    data = "|".join(map(str, parts)).encode()
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK
    value ^= value >> 33
    return value


class DbFaultKind:
    """Stat-record labels for injected database faults."""

    LOCKED = "db_locked"
    DISK_ERROR = "db_disk_error"
    CONNECTION_DROP = "db_connection_drop"
    SLOW_QUERY = "db_slow_query"
    TRUNCATED_ROWS = "db_truncated_rows"
    CORRUPT_ROWS = "db_corrupt_rows"

    ALL = (LOCKED, DISK_ERROR, CONNECTION_DROP, SLOW_QUERY, TRUNCATED_ROWS,
           CORRUPT_ROWS)


@dataclass(frozen=True)
class DbFaultPlan:
    """Per-kind injection rates (independent bands of one uniform draw).

    At most one fault fires per execution.  ``slow_seconds`` is the
    recorded virtual latency an injected slow query adds (charged to the
    request's deadline, consistent with the simulator's reported-not-slept
    convention).
    """

    locked: float = 0.0
    disk_error: float = 0.0
    connection_drop: float = 0.0
    slow_query: float = 0.0
    truncate_rows: float = 0.0
    corrupt_rows: float = 0.0
    slow_seconds: float = 4.0

    @classmethod
    def transient(cls, rate: float) -> "DbFaultPlan":
        """Only faults a retry/hedge can recover, at ``rate`` total."""
        return cls(
            locked=rate / 2.0, connection_drop=rate / 4.0, slow_query=rate / 4.0
        )

    @classmethod
    def chaos(cls, rate: float) -> "DbFaultPlan":
        """Everything at once at ``rate`` total, weighted toward the
        transient kinds hedging and recycling are built to absorb."""
        return cls(
            locked=rate / 4.0,
            disk_error=rate / 8.0,
            connection_drop=rate / 8.0,
            slow_query=rate / 4.0,
            truncate_rows=rate / 8.0,
            corrupt_rows=rate / 8.0,
        )

    def total_rate(self) -> float:
        """Probability any fault fires on one execution."""
        return min(
            1.0,
            self.locked + self.disk_error + self.connection_drop
            + self.slow_query + self.truncate_rows + self.corrupt_rows,
        )


class FaultInjectingExecutor:
    """Wraps an executor and injects database faults per a
    :class:`DbFaultPlan`.

    Implements the executor protocol (``execute`` / ``execute_or_raise``)
    plus an ``attempt`` salt that decorrelates hedged re-executions; other
    attributes fall through to the wrapped executor.
    """

    def __init__(
        self,
        inner,
        plan: DbFaultPlan,
        seed: int = 0,
        stats: Optional["ReliabilityStats"] = None,
    ):
        from repro.reliability.stats import ReliabilityStats

        self.inner = inner
        self.plan = plan
        self.seed = seed
        self.stats = stats if stats is not None else ReliabilityStats()
        # Serving workers share one injector per database; the lock guards
        # the stats counters and the per-statement occurrence counters.
        self._stats_lock = threading.Lock()
        self._occurrences: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------- helpers

    def _draw(self, sql: str, attempt: int, occurrence: int) -> float:
        return _stable_hash(self.seed, sql, attempt, occurrence) / float(_MASK)

    def _record(self, kind: str, detail: str = "") -> None:
        with self._stats_lock:
            self.stats.record_fault(
                kind, self.stats.calls, model="sqlite", detail=detail
            )
        add_event("db_fault", kind=kind, detail=detail)

    def _content_rng_index(self, sql: str, attempt: int, n: int) -> int:
        return _stable_hash("victim", self.seed, sql, attempt) % max(1, n)

    # ----------------------------------------------------------------- API

    def execute(
        self,
        sql: str,
        deadline: Optional[Deadline] = None,
        attempt: int = 0,
    ) -> ExecutionOutcome:
        """Execute via the wrapped executor, possibly injecting one fault."""
        with self._stats_lock:
            self.stats.calls += 1
            key = (sql, attempt)
            occurrence = self._occurrences.get(key, 0)
            self._occurrences[key] = occurrence + 1
        plan = self.plan
        draw = self._draw(sql, attempt, occurrence)

        if draw < plan.locked:
            self._record(DbFaultKind.LOCKED, detail=sql[:60])
            return ExecutionOutcome(
                status=ExecutionStatus.LOCKED, error="database is locked"
            )
        draw -= plan.locked

        if draw < plan.disk_error:
            self._record(DbFaultKind.DISK_ERROR, detail=sql[:60])
            return ExecutionOutcome(
                status=ExecutionStatus.DISK_ERROR, error="disk I/O error"
            )
        draw -= plan.disk_error

        if draw < plan.connection_drop:
            self._record(DbFaultKind.CONNECTION_DROP, detail=sql[:60])
            self._drop_connection()
            # The statement now runs against a dead connection: the inner
            # executor either reports CONNECTION_ERROR or — with reconnect
            # wired — recycles and absorbs the fault entirely.
            return self.inner.execute(sql, deadline)
        draw -= plan.connection_drop

        if draw < plan.slow_query:
            outcome = self.inner.execute(sql, deadline)
            self._record(DbFaultKind.SLOW_QUERY, detail=sql[:60])
            if deadline is not None:
                deadline.charge(plan.slow_seconds)
            span = current_span()
            if span is not None:
                # Injected latency is virtual (recorded, not slept) — charge
                # it to the span like any other non-LLM virtual second.
                span.charge(plan.slow_seconds)
            return replace(
                outcome, elapsed_seconds=outcome.elapsed_seconds + plan.slow_seconds
            )
        draw -= plan.slow_query

        outcome = self.inner.execute(sql, deadline)
        if outcome.status is not ExecutionStatus.OK or not outcome.rows:
            return outcome

        if draw < plan.truncate_rows:
            self._record(DbFaultKind.TRUNCATED_ROWS, detail=sql[:60])
            keep = max(1, len(outcome.rows) // 2)
            if keep < len(outcome.rows):
                return replace(outcome, rows=outcome.rows[:keep])
            return outcome
        draw -= plan.truncate_rows

        if draw < plan.corrupt_rows:
            self._record(DbFaultKind.CORRUPT_ROWS, detail=sql[:60])
            victim = self._content_rng_index(sql, attempt, len(outcome.rows))
            rows = list(outcome.rows)
            rows[victim] = tuple(_corrupt_cell(cell) for cell in rows[victim])
            return replace(outcome, rows=tuple(rows))

        return outcome

    def execute_or_raise(
        self, sql: str, deadline: Optional[Deadline] = None
    ) -> ExecutionOutcome:
        """Execute ``sql``; raise :class:`ExecutionError` on failure."""
        outcome = self.execute(sql, deadline)
        if outcome.status.is_error:
            raise ExecutionError(outcome)
        return outcome

    def _drop_connection(self) -> None:
        """Physically close the wrapped executor's SQLite connection.

        Serialized on the executor's per-connection lock: closing a
        sqlite3 connection while another serving worker is mid-statement
        on it crashes the interpreter, not just the statement.
        """
        connection = getattr(self.inner, "_connection", None)
        if connection is not None:
            with _connection_lock(connection):
                try:
                    connection.close()
                except sqlite3.Error:  # pragma: no cover - close is best-effort
                    pass

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _corrupt_cell(cell):
    """Deterministically damage one result cell (type-preserving-ish)."""
    if isinstance(cell, bool):
        return not cell
    if isinstance(cell, int):
        return cell + 1
    if isinstance(cell, float):
        return cell + 1.0
    if isinstance(cell, str):
        return cell + "␀"  # visible NUL marker: clearly corrupt
    return cell
