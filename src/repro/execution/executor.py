"""Safe SQLite execution with timeouts, error classification and
result-set comparison.

The Refinement stage's Correction step is driven by *which kind* of error a
candidate SQL produced (paper Listing 3 keys its correction few-shots by
error type), so execution outcomes carry a coarse :class:`ExecutionStatus`
taxonomy rather than raw exceptions.
"""

from __future__ import annotations

import enum
import math
import re
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.observability.context import add_event, current_span

if TYPE_CHECKING:  # avoid a circular import: reliability imports core.cost,
    # which transitively imports this module.  Deadline is duck-typed here.
    from repro.reliability.deadline import Deadline

__all__ = [
    "ExecutionStatus",
    "ExecutionError",
    "ExecutionOutcome",
    "SQLExecutor",
    "TRANSIENT_STATUSES",
    "results_match",
    "normalize_rows",
]


class ExecutionStatus(enum.Enum):
    """Coarse outcome taxonomy used to pick correction few-shots."""

    OK = "ok"
    EMPTY = "empty"  # executed fine but returned no rows / only NULLs
    SYNTAX_ERROR = "syntax_error"
    MISSING_COLUMN = "missing_column"
    MISSING_TABLE = "missing_table"
    AMBIGUOUS_COLUMN = "ambiguous_column"
    TIMEOUT = "timeout"
    #: another writer holds the database lock (SQLITE_BUSY/SQLITE_LOCKED)
    LOCKED = "locked"
    #: the storage layer failed mid-statement (disk I/O error, corrupt page)
    DISK_ERROR = "disk_error"
    #: the connection itself is gone (closed / dropped mid-request)
    CONNECTION_ERROR = "connection_error"
    OTHER_ERROR = "other_error"

    @property
    def is_error(self) -> bool:
        """True for statuses the Refinement stage must repair."""
        return self not in (ExecutionStatus.OK, ExecutionStatus.EMPTY)

    @property
    def is_transient(self) -> bool:
        """True for infrastructure faults a retry/hedge may recover —
        the SQL itself is not to blame."""
        return self in TRANSIENT_STATUSES


class ExecutionError(RuntimeError):
    """Raised by :meth:`SQLExecutor.execute_or_raise` on failed execution."""

    def __init__(self, outcome: "ExecutionOutcome"):
        super().__init__(outcome.error or outcome.status.value)
        self.outcome = outcome


@dataclass(frozen=True)
class ExecutionOutcome:
    """The result of executing one SQL statement."""

    status: ExecutionStatus
    rows: tuple[tuple, ...] = ()
    columns: tuple[str, ...] = ()
    error: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when execution succeeded with a non-empty result."""
        return self.status is ExecutionStatus.OK

    @property
    def row_count(self) -> int:
        """Number of fetched rows (capped at ``max_rows``)."""
        return len(self.rows)


#: statuses caused by infrastructure rather than the SQL text; a retry on
#: a recycled connection or a hedged re-execution may clear them
TRANSIENT_STATUSES = frozenset(
    {
        ExecutionStatus.TIMEOUT,
        ExecutionStatus.LOCKED,
        ExecutionStatus.DISK_ERROR,
        ExecutionStatus.CONNECTION_ERROR,
    }
)

_MISSING_COLUMN = re.compile(r"no such column", re.IGNORECASE)
_MISSING_TABLE = re.compile(r"no such table", re.IGNORECASE)
_AMBIGUOUS = re.compile(r"ambiguous column", re.IGNORECASE)
_SYNTAX = re.compile(r"syntax error|incomplete input|unrecognized token", re.IGNORECASE)
_LOCKED = re.compile(r"database is locked|database table is locked", re.IGNORECASE)
_DISK = re.compile(r"disk i/o error|database disk image is malformed", re.IGNORECASE)
_CONNECTION = re.compile(
    r"closed database|unable to open database|connection (?:lost|dropped|reset)",
    re.IGNORECASE,
)


def classify_sqlite_error(message: str) -> ExecutionStatus:
    """Map a sqlite3 error message to the coarse taxonomy."""
    if _MISSING_COLUMN.search(message):
        return ExecutionStatus.MISSING_COLUMN
    if _MISSING_TABLE.search(message):
        return ExecutionStatus.MISSING_TABLE
    if _AMBIGUOUS.search(message):
        return ExecutionStatus.AMBIGUOUS_COLUMN
    if _SYNTAX.search(message):
        return ExecutionStatus.SYNTAX_ERROR
    if _LOCKED.search(message):
        return ExecutionStatus.LOCKED
    if _DISK.search(message):
        return ExecutionStatus.DISK_ERROR
    if _CONNECTION.search(message):
        return ExecutionStatus.CONNECTION_ERROR
    return ExecutionStatus.OTHER_ERROR


# One lock per live SQLite connection: the progress-handler + cursor pair
# is connection-global state, so concurrent serving workers must serialize
# statements per database.  Keyed by id(); entries are few (one per built
# database) and live for the process, so no eviction is needed.
_CONNECTION_LOCKS: dict[int, threading.RLock] = {}
_LOCKS_GUARD = threading.Lock()


def _connection_lock(connection: sqlite3.Connection) -> threading.RLock:
    key = id(connection)
    with _LOCKS_GUARD:
        lock = _CONNECTION_LOCKS.get(key)
        if lock is None:
            lock = _CONNECTION_LOCKS[key] = threading.RLock()
        return lock


class SQLExecutor:
    """Execute read-only SQL against a SQLite connection.

    ``timeout_seconds`` is enforced with SQLite's progress handler, so a
    runaway query (cross join explosion from a hallucinated join) cannot
    stall a benchmark run.  A per-request :class:`Deadline` further caps the
    statement budget at the request's remaining virtual time.

    ``reconnect`` (optional) makes connection-level faults recoverable: when
    a statement fails with :attr:`ExecutionStatus.CONNECTION_ERROR`, the
    executor closes the dead connection, opens a fresh one via the callable
    and retries the statement — at most ``max_reconnects`` times per call.

    Thread-safety: every executor over the same connection shares one lock,
    so statements serialize per database while different databases execute
    concurrently — the property the serving engine's thread pool relies on.
    """

    def __init__(
        self,
        connection: sqlite3.Connection,
        timeout_seconds: float = 5.0,
        max_rows: int = 10_000,
        reconnect: Optional[Callable[[], sqlite3.Connection]] = None,
        max_reconnects: int = 2,
    ):
        self._connection = connection
        self._lock = _connection_lock(connection)
        self.timeout_seconds = timeout_seconds
        self.max_rows = max_rows
        self._reconnect = reconnect
        self.max_reconnects = max_reconnects
        #: lifetime count of successful connection recycles
        self.reconnects = 0

    def execute(self, sql: str, deadline: Optional[Deadline] = None) -> ExecutionOutcome:
        """Execute ``sql`` and classify the outcome; never raises for SQL
        failures (harness errors such as a closed connection still raise
        only when no ``reconnect`` is wired).

        When a span is ambient (see :mod:`repro.observability.context`)
        each statement records an ``execute`` event and its elapsed time is
        charged to the span."""
        attempts = 0
        while True:
            lock = self._lock
            with lock:
                # _recycle swaps both the connection and its lock; a caller
                # that waited out a recycle on the old lock would otherwise
                # run on the fresh connection without holding its lock —
                # two unserialized threads on one sqlite3 connection is a
                # hard crash, not an error.
                if lock is not self._lock:
                    continue
                outcome = self._execute_locked(sql, deadline)
            if (
                outcome.status is ExecutionStatus.CONNECTION_ERROR
                and self._reconnect is not None
                and attempts < self.max_reconnects
            ):
                attempts += 1
                add_event("db_reconnect", attempt=attempts, error=outcome.error)
                self._recycle()
                continue
            span = current_span()
            if span is not None:
                span.event(
                    "execute",
                    status=outcome.status.value,
                    rows=outcome.row_count,
                    elapsed_seconds=round(outcome.elapsed_seconds, 6),
                )
                span.charge(outcome.elapsed_seconds)
            return outcome

    def _recycle(self) -> None:
        """Replace the dead connection with a fresh one (bounded callers)."""
        lock = self._lock
        with lock:
            if lock is not self._lock:
                # Another caller recycled while we waited: the connection
                # under self._lock is already fresh.  Recycling it again
                # here — holding the *old* lock — would close a connection
                # that live statements are serialized on.
                return
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = self._reconnect()
            self.reconnects += 1
            # Future statements serialize on the fresh connection's lock;
            # the old lock object dies with the old connection.  (The
            # ``with`` holds the object it acquired, so releasing is safe.)
            self._lock = _connection_lock(self._connection)

    def _execute_locked(
        self, sql: str, deadline: Optional[Deadline] = None
    ) -> ExecutionOutcome:
        timeout = self.timeout_seconds
        if deadline is not None:
            timeout = deadline.clamp(timeout)
            if timeout <= 0:
                return ExecutionOutcome(
                    status=ExecutionStatus.TIMEOUT,
                    error="request deadline exhausted before execution",
                )
        cutoff = time.perf_counter() + timeout
        timed_out = False

        def guard():
            nonlocal timed_out
            if time.perf_counter() > cutoff:
                timed_out = True
                return 1  # non-zero aborts the statement
            return 0

        start = time.perf_counter()
        try:
            self._connection.set_progress_handler(guard, 10_000)
        except sqlite3.ProgrammingError as exc:
            # A closed/dropped connection fails before any statement runs.
            return ExecutionOutcome(
                status=ExecutionStatus.CONNECTION_ERROR, error=str(exc)
            )
        try:
            cursor = self._connection.execute(sql)
            rows = cursor.fetchmany(self.max_rows)
            elapsed = time.perf_counter() - start
            columns = tuple(d[0] for d in cursor.description or ())
            normalized = normalize_rows(rows)
            status = ExecutionStatus.OK if _has_content(normalized) else ExecutionStatus.EMPTY
            return ExecutionOutcome(
                status=status,
                rows=normalized,
                columns=columns,
                elapsed_seconds=elapsed,
            )
        except sqlite3.OperationalError as exc:
            elapsed = time.perf_counter() - start
            message = str(exc)
            # Classify TIMEOUT from the guard's own abort flag (or an
            # external interrupt()), never from elapsed time: a genuine
            # error that happens to land past the deadline keeps its real
            # classification.
            if timed_out or "interrupted" in message.lower():
                status = ExecutionStatus.TIMEOUT
            else:
                status = classify_sqlite_error(message)
            return ExecutionOutcome(status=status, error=message, elapsed_seconds=elapsed)
        except sqlite3.ProgrammingError as exc:
            elapsed = time.perf_counter() - start
            message = str(exc)
            if "closed database" in message.lower():
                status = ExecutionStatus.CONNECTION_ERROR
            else:
                status = ExecutionStatus.OTHER_ERROR
            return ExecutionOutcome(status=status, error=message, elapsed_seconds=elapsed)
        except sqlite3.Error as exc:
            elapsed = time.perf_counter() - start
            return ExecutionOutcome(
                status=classify_sqlite_error(str(exc)),
                error=str(exc),
                elapsed_seconds=elapsed,
            )
        finally:
            try:
                self._connection.set_progress_handler(None, 0)
            except sqlite3.ProgrammingError:
                pass  # connection died mid-statement; nothing to clear

    def execute_or_raise(
        self, sql: str, deadline: Optional[Deadline] = None
    ) -> ExecutionOutcome:
        """Execute ``sql``; raise :class:`ExecutionError` on failure."""
        outcome = self.execute(sql, deadline)
        if outcome.status.is_error:
            raise ExecutionError(outcome)
        return outcome


def _has_content(rows: tuple[tuple, ...]) -> bool:
    """True when the result carries at least one non-NULL cell.

    The paper's Refinement treats "Result: None" (no rows, or all-NULL
    single cell) as an error worth correcting.
    """
    for row in rows:
        for cell in row:
            if cell is not None:
                return True
    return False


def _normalize_cell(cell):
    if isinstance(cell, float):
        if math.isnan(cell):
            return None
        # Collapse float/int representation differences (COUNT vs SUM etc).
        if cell.is_integer() and abs(cell) < 1e15:
            return int(cell)
        return round(cell, 6)
    if isinstance(cell, bytes):
        return cell.decode("utf-8", errors="replace")
    return cell


def normalize_rows(rows: Sequence[Sequence]) -> tuple[tuple, ...]:
    """Normalize cells for robust comparison (floats rounded, bytes decoded)."""
    return tuple(tuple(_normalize_cell(cell) for cell in row) for row in rows)


def results_match(
    predicted: ExecutionOutcome,
    gold: ExecutionOutcome,
    order_sensitive: bool = False,
) -> bool:
    """BIRD-style execution-result comparison.

    Row sets must match exactly (as multisets by default — BIRD's metric
    compares ``set(predicted) == set(gold)``; we keep duplicates, which is
    stricter and penalizes spurious DISTINCT drops).  Column *names* are
    ignored, column order matters, mirroring the official evaluator.
    """
    if predicted.status.is_error or gold.status.is_error:
        return False
    if order_sensitive:
        return predicted.rows == gold.rows
    return sorted(predicted.rows, key=_row_key) == sorted(gold.rows, key=_row_key)


def _row_key(row: tuple) -> tuple:
    return tuple((cell is None, str(type(cell)), str(cell)) for cell in row)
