"""Safe SQLite execution with timeouts, error classification and
result-set comparison.

The Refinement stage's Correction step is driven by *which kind* of error a
candidate SQL produced (paper Listing 3 keys its correction few-shots by
error type), so execution outcomes carry a coarse :class:`ExecutionStatus`
taxonomy rather than raw exceptions.
"""

from __future__ import annotations

import enum
import math
import re
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = [
    "ExecutionStatus",
    "ExecutionError",
    "ExecutionOutcome",
    "SQLExecutor",
    "results_match",
    "normalize_rows",
]


class ExecutionStatus(enum.Enum):
    """Coarse outcome taxonomy used to pick correction few-shots."""

    OK = "ok"
    EMPTY = "empty"  # executed fine but returned no rows / only NULLs
    SYNTAX_ERROR = "syntax_error"
    MISSING_COLUMN = "missing_column"
    MISSING_TABLE = "missing_table"
    AMBIGUOUS_COLUMN = "ambiguous_column"
    TIMEOUT = "timeout"
    OTHER_ERROR = "other_error"

    @property
    def is_error(self) -> bool:
        """True for statuses the Refinement stage must repair."""
        return self not in (ExecutionStatus.OK, ExecutionStatus.EMPTY)


class ExecutionError(RuntimeError):
    """Raised by :meth:`SQLExecutor.execute_or_raise` on failed execution."""

    def __init__(self, outcome: "ExecutionOutcome"):
        super().__init__(outcome.error or outcome.status.value)
        self.outcome = outcome


@dataclass(frozen=True)
class ExecutionOutcome:
    """The result of executing one SQL statement."""

    status: ExecutionStatus
    rows: tuple[tuple, ...] = ()
    columns: tuple[str, ...] = ()
    error: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when execution succeeded with a non-empty result."""
        return self.status is ExecutionStatus.OK

    @property
    def row_count(self) -> int:
        """Number of fetched rows (capped at ``max_rows``)."""
        return len(self.rows)


_MISSING_COLUMN = re.compile(r"no such column", re.IGNORECASE)
_MISSING_TABLE = re.compile(r"no such table", re.IGNORECASE)
_AMBIGUOUS = re.compile(r"ambiguous column", re.IGNORECASE)
_SYNTAX = re.compile(r"syntax error|incomplete input|unrecognized token", re.IGNORECASE)


def classify_sqlite_error(message: str) -> ExecutionStatus:
    """Map a sqlite3 error message to the coarse taxonomy."""
    if _MISSING_COLUMN.search(message):
        return ExecutionStatus.MISSING_COLUMN
    if _MISSING_TABLE.search(message):
        return ExecutionStatus.MISSING_TABLE
    if _AMBIGUOUS.search(message):
        return ExecutionStatus.AMBIGUOUS_COLUMN
    if _SYNTAX.search(message):
        return ExecutionStatus.SYNTAX_ERROR
    return ExecutionStatus.OTHER_ERROR


# One lock per live SQLite connection: the progress-handler + cursor pair
# is connection-global state, so concurrent serving workers must serialize
# statements per database.  Keyed by id(); entries are few (one per built
# database) and live for the process, so no eviction is needed.
_CONNECTION_LOCKS: dict[int, threading.RLock] = {}
_LOCKS_GUARD = threading.Lock()


def _connection_lock(connection: sqlite3.Connection) -> threading.RLock:
    key = id(connection)
    with _LOCKS_GUARD:
        lock = _CONNECTION_LOCKS.get(key)
        if lock is None:
            lock = _CONNECTION_LOCKS[key] = threading.RLock()
        return lock


class SQLExecutor:
    """Execute read-only SQL against a SQLite connection.

    ``timeout_seconds`` is enforced with SQLite's progress handler, so a
    runaway query (cross join explosion from a hallucinated join) cannot
    stall a benchmark run.

    Thread-safety: every executor over the same connection shares one lock,
    so statements serialize per database while different databases execute
    concurrently — the property the serving engine's thread pool relies on.
    """

    def __init__(
        self,
        connection: sqlite3.Connection,
        timeout_seconds: float = 5.0,
        max_rows: int = 10_000,
    ):
        self._connection = connection
        self._lock = _connection_lock(connection)
        self.timeout_seconds = timeout_seconds
        self.max_rows = max_rows

    def execute(self, sql: str) -> ExecutionOutcome:
        """Execute ``sql`` and classify the outcome; never raises for SQL
        failures (harness errors such as a closed connection still raise)."""
        with self._lock:
            return self._execute_locked(sql)

    def _execute_locked(self, sql: str) -> ExecutionOutcome:
        deadline = time.perf_counter() + self.timeout_seconds

        def guard():
            if time.perf_counter() > deadline:
                return 1  # non-zero aborts the statement
            return 0

        start = time.perf_counter()
        self._connection.set_progress_handler(guard, 10_000)
        try:
            cursor = self._connection.execute(sql)
            rows = cursor.fetchmany(self.max_rows)
            elapsed = time.perf_counter() - start
            columns = tuple(d[0] for d in cursor.description or ())
            normalized = normalize_rows(rows)
            status = ExecutionStatus.OK if _has_content(normalized) else ExecutionStatus.EMPTY
            return ExecutionOutcome(
                status=status,
                rows=normalized,
                columns=columns,
                elapsed_seconds=elapsed,
            )
        except sqlite3.OperationalError as exc:
            elapsed = time.perf_counter() - start
            message = str(exc)
            if "interrupted" in message.lower() or elapsed >= self.timeout_seconds:
                status = ExecutionStatus.TIMEOUT
            else:
                status = classify_sqlite_error(message)
            return ExecutionOutcome(status=status, error=message, elapsed_seconds=elapsed)
        except sqlite3.Error as exc:
            elapsed = time.perf_counter() - start
            return ExecutionOutcome(
                status=ExecutionStatus.OTHER_ERROR,
                error=str(exc),
                elapsed_seconds=elapsed,
            )
        finally:
            self._connection.set_progress_handler(None, 0)

    def execute_or_raise(self, sql: str) -> ExecutionOutcome:
        """Execute ``sql``; raise :class:`ExecutionError` on failure."""
        outcome = self.execute(sql)
        if outcome.status.is_error:
            raise ExecutionError(outcome)
        return outcome


def _has_content(rows: tuple[tuple, ...]) -> bool:
    """True when the result carries at least one non-NULL cell.

    The paper's Refinement treats "Result: None" (no rows, or all-NULL
    single cell) as an error worth correcting.
    """
    for row in rows:
        for cell in row:
            if cell is not None:
                return True
    return False


def _normalize_cell(cell):
    if isinstance(cell, float):
        if math.isnan(cell):
            return None
        # Collapse float/int representation differences (COUNT vs SUM etc).
        if cell.is_integer() and abs(cell) < 1e15:
            return int(cell)
        return round(cell, 6)
    if isinstance(cell, bytes):
        return cell.decode("utf-8", errors="replace")
    return cell


def normalize_rows(rows: Sequence[Sequence]) -> tuple[tuple, ...]:
    """Normalize cells for robust comparison (floats rounded, bytes decoded)."""
    return tuple(tuple(_normalize_cell(cell) for cell in row) for row in rows)


def results_match(
    predicted: ExecutionOutcome,
    gold: ExecutionOutcome,
    order_sensitive: bool = False,
) -> bool:
    """BIRD-style execution-result comparison.

    Row sets must match exactly (as multisets by default — BIRD's metric
    compares ``set(predicted) == set(gold)``; we keep duplicates, which is
    stricter and penalizes spurious DISTINCT drops).  Column *names* are
    ignored, column order matters, mirroring the official evaluator.
    """
    if predicted.status.is_error or gold.status.is_error:
        return False
    if order_sensitive:
        return predicted.rows == gold.rows
    return sorted(predicted.rows, key=_row_key) == sorted(gold.rows, key=_row_key)


def _row_key(row: tuple) -> tuple:
    return tuple((cell is None, str(type(cell)), str(cell)) for cell in row)
