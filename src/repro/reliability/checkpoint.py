"""JSONL checkpointing for evaluation runs.

A checkpointed run appends one JSON line per finished example — its three
stage scores, per-stage cost, degradation events and (when the example
crashed) the error.  Resuming with the same path replays finished examples
from disk and continues with the rest, so an interrupted run reaches the
identical final :class:`~repro.evaluation.runner.EvalReport` as an
uninterrupted one.

The format is append-only and crash-tolerant: a line truncated by a kill
mid-write — at the tail or, after filesystem reordering, in the middle of
the file — is skipped on load and its example simply re-runs.  The opt-in
``fsync_every_n`` flag adds power-loss durability: every n appends the
file is fsync'd, bounding how many records a power cut (which can drop
data the OS already buffered) may lose.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.core.cost import CostTracker
from repro.llm.base import TokenUsage
from repro.reliability.degradation import DegradationEvent

if TYPE_CHECKING:  # runtime import would cycle through repro.evaluation
    from repro.evaluation.metrics import ExampleScore

__all__ = [
    "CHECKPOINT_VERSION",
    "EvalCheckpoint",
    "encode_score",
    "decode_score",
    "encode_cost",
    "decode_cost",
]

CHECKPOINT_VERSION = 1


def encode_score(score: Optional[ExampleScore]) -> Optional[dict]:
    """ExampleScore → JSON-ready dict (None passes through)."""
    return None if score is None else asdict(score)


def decode_score(payload: Optional[dict]) -> Optional[ExampleScore]:
    """Inverse of :func:`encode_score`."""
    from repro.evaluation.metrics import ExampleScore

    return None if payload is None else ExampleScore(**payload)


def encode_cost(cost: CostTracker) -> dict:
    """Lossless per-stage cost serialization (unlike ``summary()``)."""
    return {
        name: {
            "wall_seconds": stage.wall_seconds,
            "model_seconds": stage.model_seconds,
            "prompt_tokens": stage.usage.prompt_tokens,
            "completion_tokens": stage.usage.completion_tokens,
            "calls": stage.calls,
        }
        for name, stage in cost.stages.items()
    }


def decode_cost(payload: dict) -> CostTracker:
    """Inverse of :func:`encode_cost`."""
    cost = CostTracker()
    for name, fields in payload.items():
        stage = cost.stage(name)
        stage.wall_seconds = fields.get("wall_seconds", 0.0)
        stage.model_seconds = fields.get("model_seconds", 0.0)
        stage.usage = TokenUsage(
            fields.get("prompt_tokens", 0), fields.get("completion_tokens", 0)
        )
        stage.calls = fields.get("calls", 0)
    return cost


class EvalCheckpoint:
    """Append-only JSONL store of per-example evaluation records."""

    def __init__(
        self,
        path: Union[str, Path],
        fsync_every_n: int = 0,
        opener=None,
    ):
        if fsync_every_n < 0:
            raise ValueError("fsync_every_n must be >= 0")
        self.path = Path(path)
        #: 0 (default) flushes to the OS only — kill-resilient; n > 0 also
        #: fsyncs every n appends — power-loss-resilient at write cost
        self.fsync_every_n = fsync_every_n
        #: ``opener(path, "a")`` returns the append handle — the storage
        #: fault-injection seam (:class:`repro.storage.FaultyStorage`)
        self._opener = opener or (
            lambda target, mode: open(target, mode, encoding="utf-8")
        )
        self._appends = 0
        self._unsynced = 0
        self._records: dict[str, dict] = {}
        # Parallel evaluation workers append concurrently; the lock keeps
        # each JSONL line intact (no interleaved partial writes).
        self._lock = threading.Lock()
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        with self.path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a killed run (tail or mid-file)
                qid = record.get("question_id")
                if qid:
                    self._records[qid] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, question_id: str) -> bool:
        return question_id in self._records

    def get(self, question_id: str) -> Optional[dict]:
        """The stored record for one example, or None."""
        return self._records.get(question_id)

    def record_example(
        self,
        question_id: str,
        *,
        score: Optional[ExampleScore] = None,
        generation_score: Optional[ExampleScore] = None,
        refined_score: Optional[ExampleScore] = None,
        cost: Optional[CostTracker] = None,
        degradations: Optional[list[DegradationEvent]] = None,
        error: Optional[str] = None,
    ) -> dict:
        """Append one finished example and return the stored record."""
        record = {
            "version": CHECKPOINT_VERSION,
            "question_id": question_id,
            "score": encode_score(score),
            "generation_score": encode_score(generation_score),
            "refined_score": encode_score(refined_score),
            "cost": encode_cost(cost) if cost is not None else None,
            "degradations": [e.to_dict() for e in (degradations or [])],
            "error": error,
        }
        with self._lock:
            self._records[question_id] = record
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._opener(self.path, "a") as handle:
                handle.write(json.dumps(record) + "\n")
                handle.flush()
                self._appends += 1
                self._unsynced += 1
                if self.fsync_every_n and self._appends % self.fsync_every_n == 0:
                    self._fsync(handle)
        return record

    def _fsync(self, handle) -> None:
        sync = getattr(handle, "sync", None)
        if callable(sync):
            sync()
        else:
            os.fsync(handle.fileno())
        self._unsynced = 0

    def close(self) -> None:
        """fsync the final partial batch (idempotent, crash-safe to skip).

        ``fsync_every_n`` syncs every n appends; without this, the last
        ``appends % n`` records are droppable on power cut even after a
        *clean* run.  Call when the evaluation finishes.
        """
        with self._lock:
            if self._unsynced == 0 or not self.path.exists():
                return
            try:
                with self._opener(self.path, "a") as handle:
                    self._fsync(handle)
            except OSError:
                pass  # best-effort: close() must not fail a finished run

    @staticmethod
    def decode(record: dict) -> tuple[
        Optional[ExampleScore],
        Optional[ExampleScore],
        Optional[ExampleScore],
        Optional[CostTracker],
        list[DegradationEvent],
    ]:
        """Unpack a stored record into runner-ready pieces."""
        cost = decode_cost(record["cost"]) if record.get("cost") else None
        degradations = [
            DegradationEvent.from_dict(d) for d in record.get("degradations", [])
        ]
        return (
            decode_score(record.get("score")),
            decode_score(record.get("generation_score")),
            decode_score(record.get("refined_score")),
            cost,
            degradations,
        )
