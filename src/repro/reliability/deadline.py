"""Per-request deadlines over the repo's virtual-time convention.

A serving request must not do unbounded work: the paper's Refinement stage
alone can spend ``n_candidates`` executions plus correction LLM calls, and
under injected faults the retry/backoff machinery multiplies that.  A
:class:`Deadline` is created once per request (by the serving engine or an
evaluation runner) and threaded through ``OpenSearchSQL.answer`` into every
stage and ``SQLExecutor`` call, so each stage sees only the budget its
predecessors left behind.

Time here is **virtual**, consistent with the rest of the codebase: the
simulator *reports* model decode latency instead of sleeping it, and the
resilient transport *records* backoff instead of sleeping.  A deadline
therefore advances three ways:

* real wall seconds since construction (its monotonic clock);
* explicit :meth:`charge` calls for recorded virtual seconds (injected
  slow-query latency, recorded backoff);
* attached **meters** — callables returning cumulative virtual seconds —
  so a request's :class:`~repro.core.cost.CostTracker` feeds its reported
  model seconds into the deadline without any per-call plumbing.

Deadline exhaustion is *containment, not crash*: stages consult
:attr:`expired` / :meth:`check` and degrade through the existing typed
:class:`~repro.reliability.degradation.DegradationEvent` machinery.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["Deadline", "DeadlineExceededError"]


class DeadlineExceededError(RuntimeError):
    """Raised by :meth:`Deadline.check` when the request budget is spent.

    Pipeline stages catch this at their containment points and record a
    ``DEADLINE_EXCEEDED`` degradation instead of letting it propagate.
    """

    def __init__(self, message: str, stage: str = "", elapsed_seconds: float = 0.0,
                 budget_seconds: float = 0.0):
        super().__init__(message)
        self.stage = stage
        self.elapsed_seconds = elapsed_seconds
        self.budget_seconds = budget_seconds


class Deadline:
    """One request's shrinking time budget (real wall + virtual seconds).

    Thread-safe: a hedged execution may consult the same deadline from the
    hedge and the primary path.  Not reusable — create one per request.
    """

    def __init__(self, budget_seconds: float, clock: Callable[[], float] = time.perf_counter):
        if budget_seconds <= 0:
            raise ValueError("budget_seconds must be > 0")
        self.budget_seconds = float(budget_seconds)
        self._clock = clock
        self._start = clock()
        self._charged = 0.0
        self._meters: list[Callable[[], float]] = []
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- time

    @property
    def elapsed_seconds(self) -> float:
        """Virtual seconds consumed so far (wall + charges + meters)."""
        with self._lock:
            metered = sum(meter() for meter in self._meters)
            return (self._clock() - self._start) + self._charged + metered

    @property
    def remaining_seconds(self) -> float:
        """Budget left, clamped at zero."""
        return max(0.0, self.budget_seconds - self.elapsed_seconds)

    @property
    def expired(self) -> bool:
        """True once the budget is fully consumed."""
        return self.elapsed_seconds >= self.budget_seconds

    # ------------------------------------------------------------- feeding

    def charge(self, seconds: float) -> None:
        """Consume ``seconds`` of recorded virtual time (never negative)."""
        if seconds < 0:
            raise ValueError("cannot charge negative seconds")
        with self._lock:
            self._charged += seconds

    def attach_meter(self, meter: Callable[[], float]) -> None:
        """Attach a cumulative virtual-seconds source (e.g. a request's
        ``CostTracker.total_model_seconds``).  The meter must be monotone
        non-decreasing; it is polled on every elapsed/remaining read."""
        with self._lock:
            self._meters.append(meter)

    # ---------------------------------------------------------- consulting

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceededError` when the budget is spent."""
        elapsed = self.elapsed_seconds
        if elapsed >= self.budget_seconds:
            raise DeadlineExceededError(
                f"deadline of {self.budget_seconds:.3f}s exceeded "
                f"({elapsed:.3f}s elapsed)"
                + (f" entering {stage}" if stage else ""),
                stage=stage,
                elapsed_seconds=elapsed,
                budget_seconds=self.budget_seconds,
            )

    def clamp(self, seconds: float) -> float:
        """Cap a sub-operation timeout at the remaining budget."""
        return min(seconds, self.remaining_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget={self.budget_seconds:.3f}s, "
            f"remaining={self.remaining_seconds:.3f}s)"
        )
