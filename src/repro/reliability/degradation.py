"""Typed degradation events: what the pipeline gave up, and why.

Graceful degradation is only useful when it is *observable* — a run that
silently falls back to full-schema prompting would corrupt an ablation
without anyone noticing.  Every containment decision in
:meth:`~repro.core.pipeline.OpenSearchSQL.answer` therefore appends a
:class:`DegradationEvent` to the :class:`~repro.core.pipeline.PipelineResult`,
and the evaluation runner aggregates them into the report.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass

__all__ = ["DegradationKind", "DegradationEvent"]


class DegradationKind(enum.Enum):
    """Each containment point in the pipeline has its own kind."""

    #: Extraction crashed; generation got the full, unfiltered schema.
    EXTRACTION_FALLBACK = "extraction_fallback"
    #: Generation crashed at the configured width; retried with one candidate.
    GENERATION_REDUCED = "generation_reduced"
    #: Generation produced no parseable SQL; a stub query stands in.
    EMPTY_GENERATION = "empty_generation"
    #: Refinement crashed; the best unrefined candidate was returned.
    REFINEMENT_SKIPPED = "refinement_skipped"
    #: Every recovery failed; the result is an empty/stub answer.
    ANSWER_FAILED = "answer_failed"
    #: The request's deadline ran out; remaining work was skipped/truncated.
    DEADLINE_EXCEEDED = "deadline_exceeded"


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded containment decision."""

    kind: DegradationKind
    stage: str
    #: exception type name (or symptom) that triggered the containment
    cause: str = ""
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form (used by checkpoints and reports)."""
        payload = asdict(self)
        payload["kind"] = self.kind.value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "DegradationEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=DegradationKind(payload["kind"]),
            stage=payload.get("stage", ""),
            cause=payload.get("cause", ""),
            detail=payload.get("detail", ""),
        )
