"""Reliability accounting, symmetric to :class:`~repro.core.cost.CostTracker`.

Every wrapper in the reliability layer reports what happened — faults
injected, retries spent, breaker transitions, fallback calls, budget burn —
into a :class:`ReliabilityStats` so a benchmark run can print an
infrastructure-cost table next to the paper's Table 6 token-cost table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FaultRecord", "ReliabilityStats"]


@dataclass(frozen=True)
class FaultRecord:
    """One observed fault: where it happened and what it was."""

    kind: str
    call_index: int
    model: str = ""
    detail: str = ""


@dataclass
class ReliabilityStats:
    """Counters for one client's lifetime (mergeable across clients)."""

    calls: int = 0
    failures: int = 0
    retries: int = 0
    giveups: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    fallback_calls: int = 0
    backoff_seconds: float = 0.0
    tokens_spent: int = 0
    faults: list[FaultRecord] = field(default_factory=list)

    def record_fault(
        self, kind: str, call_index: int, model: str = "", detail: str = ""
    ) -> None:
        """Append one fault occurrence to the log and bump the counter."""
        self.failures += 1
        self.faults.append(
            FaultRecord(kind=kind, call_index=call_index, model=model, detail=detail)
        )

    def fault_counts(self) -> dict[str, int]:
        """Occurrences per fault kind."""
        counts: dict[str, int] = {}
        for record in self.faults:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def merge(self, other: "ReliabilityStats") -> None:
        """Fold another stats object into this one."""
        self.calls += other.calls
        self.failures += other.failures
        self.retries += other.retries
        self.giveups += other.giveups
        self.breaker_opens += other.breaker_opens
        self.breaker_closes += other.breaker_closes
        self.fallback_calls += other.fallback_calls
        self.backoff_seconds += other.backoff_seconds
        self.tokens_spent += other.tokens_spent
        self.faults.extend(other.faults)

    def summary(self) -> dict:
        """Plain-dict view for reports and benches."""
        return {
            "calls": self.calls,
            "failures": self.failures,
            "retries": self.retries,
            "giveups": self.giveups,
            "breaker_opens": self.breaker_opens,
            "breaker_closes": self.breaker_closes,
            "fallback_calls": self.fallback_calls,
            "backoff_seconds": round(self.backoff_seconds, 3),
            "tokens_spent": self.tokens_spent,
            "fault_counts": self.fault_counts(),
        }
