"""Reliability layer: fault injection, resilient transport, graceful
degradation and checkpointed evaluation.

The paper suppresses *model* failure modes; this package suppresses
*infrastructure* failure modes — the rate limits, timeouts and garbled
completions that a deployed Text-to-SQL service meets at scale:

* :class:`FaultInjectingLLM` + :class:`FaultPlan` — a seeded
  infrastructure-noise channel symmetric to the simulator's semantic-noise
  channels, for chaos testing and the reliability benches;
* :class:`ResilientLLM` + :class:`RetryPolicy` + :class:`CircuitBreaker`
  — retry with exponential backoff, per-model circuit breaking, budget
  guards and model fallback;
* :class:`DegradationEvent` — the typed record each pipeline containment
  point emits instead of crashing;
* :class:`Deadline` — the per-request time budget (real wall + recorded
  virtual seconds) threaded from the serving engine through every pipeline
  stage and SQL execution;
* :class:`EvalCheckpoint` — JSONL checkpoint/resume for evaluation runs;
* :class:`ReliabilityStats` — the accounting all of the above report into.
"""

from repro.reliability.breaker import BreakerState, CircuitBreaker
from repro.reliability.checkpoint import EvalCheckpoint
from repro.reliability.deadline import Deadline, DeadlineExceededError
from repro.reliability.degradation import DegradationEvent, DegradationKind
from repro.reliability.faults import (
    BudgetExceededError,
    CircuitOpenError,
    FaultKind,
    RateLimitError,
    ServiceUnavailableError,
    TransientTimeoutError,
    TransportFault,
)
from repro.reliability.injection import FaultInjectingLLM, FaultPlan
from repro.reliability.stats import FaultRecord, ReliabilityStats
from repro.reliability.transport import ResilientLLM, RetryPolicy

__all__ = [
    "BreakerState",
    "BudgetExceededError",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "DegradationEvent",
    "DegradationKind",
    "EvalCheckpoint",
    "FaultInjectingLLM",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "RateLimitError",
    "ReliabilityStats",
    "ResilientLLM",
    "RetryPolicy",
    "ServiceUnavailableError",
    "TransientTimeoutError",
    "TransportFault",
]
