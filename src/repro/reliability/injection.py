"""Deterministic fault injection for any :class:`~repro.llm.base.LLMClient`.

:class:`FaultInjectingLLM` is the infrastructure-noise channel symmetric to
the semantic-noise channels of :mod:`repro.llm.noise`: seeded, rate-
configurable, and recorded.  Wrap any client with it and a benchmark run
experiences rate limits, timeouts, truncated/empty/malformed completions
and latency spikes at known rates — which is how the reliability benches
measure EX retention under infrastructure stress.

Determinism: each call draws from a ``random.Random`` seeded at
construction, so the same wrapped run injects the same fault sequence.
(Retries advance the sequence — a retried call is a *new* call, exactly as
a real API would treat it.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from repro.llm.base import LLMClient, LLMResponse
from repro.observability.context import add_event
from repro.reliability.faults import (
    FaultKind,
    RateLimitError,
    ServiceUnavailableError,
    TransientTimeoutError,
)
from repro.reliability.stats import ReliabilityStats

__all__ = ["FaultPlan", "FaultInjectingLLM"]

_MALFORMED_TEXTS = (
    "I'm sorry, I can't help with writing SQL for that request.",
    '{"error": "upstream model returned an unexpected payload"}',
    "<<<garbled bytes: \x00\x01\x02 stream reset by peer>>>",
)


@dataclass(frozen=True)
class FaultPlan:
    """Per-kind injection rates (independent probabilities per call).

    Transport rates decide whether the call raises instead of returning;
    content rates decide whether the returned completions are degraded.
    At most one transport fault and one content fault fire per call.
    """

    rate_limit: float = 0.0
    timeout: float = 0.0
    service_unavailable: float = 0.0
    truncated: float = 0.0
    empty: float = 0.0
    malformed: float = 0.0
    latency_spike: float = 0.0
    #: seconds added to every response's reported latency on a spike
    spike_seconds: float = 30.0

    @classmethod
    def transient(cls, rate: float) -> "FaultPlan":
        """A plan injecting only retryable transport faults at ``rate``
        total, split across rate limits, timeouts and 5xx errors."""
        return cls(
            rate_limit=rate / 2.0, timeout=rate / 4.0, service_unavailable=rate / 4.0
        )

    @classmethod
    def content(cls, rate: float) -> "FaultPlan":
        """A plan degrading only completion content at ``rate`` total."""
        return cls(truncated=rate / 3.0, empty=rate / 3.0, malformed=rate / 3.0)

    @classmethod
    def chaos(cls, rate: float) -> "FaultPlan":
        """Everything at once: ``rate`` transport plus ``rate`` content."""
        transient = cls.transient(rate)
        content = cls.content(rate)
        return replace(
            transient,
            truncated=content.truncated,
            empty=content.empty,
            malformed=content.malformed,
            latency_spike=rate / 4.0,
        )

    def transport_rate(self) -> float:
        """Total probability of a transport fault per call."""
        return min(1.0, self.rate_limit + self.timeout + self.service_unavailable)


class FaultInjectingLLM:
    """Wraps a client and injects faults per a :class:`FaultPlan`.

    Every injected fault is appended to :attr:`stats` (a
    :class:`~repro.reliability.stats.ReliabilityStats`) so benchmark
    assertions can reconcile observed degradation with injected cause.
    """

    def __init__(
        self,
        inner: LLMClient,
        plan: FaultPlan,
        seed: int = 0,
        stats: Optional[ReliabilityStats] = None,
    ):
        self.inner = inner
        self.plan = plan
        self.model_name = inner.model_name
        self.stats = stats if stats is not None else ReliabilityStats()
        self._rng = random.Random(seed)
        self._call_index = 0

    # ------------------------------------------------------------- helpers

    def _record(self, kind: FaultKind, detail: str = "") -> None:
        self.stats.record_fault(
            kind.value, self._call_index, model=self.model_name, detail=detail
        )
        add_event("llm_fault_injected", kind=kind.value, detail=detail)

    def _transport_fault(self) -> None:
        """Raise a transport fault when the draw lands in a transport band."""
        plan = self.plan
        draw = self._rng.random()
        if draw < plan.rate_limit:
            self._record(FaultKind.RATE_LIMIT)
            raise RateLimitError(retry_after=0.5)
        draw -= plan.rate_limit
        if draw < plan.timeout:
            self._record(FaultKind.TIMEOUT)
            raise TransientTimeoutError("request timed out after 60s")
        draw -= plan.timeout
        if draw < plan.service_unavailable:
            self._record(FaultKind.SERVICE_UNAVAILABLE)
            raise ServiceUnavailableError("503 service unavailable")

    def _degrade(self, responses: list[LLMResponse]) -> list[LLMResponse]:
        """Apply at most one content fault to the response list."""
        plan = self.plan
        draw = self._rng.random()
        if draw < plan.truncated:
            victim = self._rng.randrange(len(responses))
            self._record(FaultKind.TRUNCATED, detail=f"candidate {victim}")
            text = responses[victim].text
            responses[victim] = replace(
                responses[victim], text=text[: max(1, len(text) // 3)]
            )
            return responses
        draw -= plan.truncated
        if draw < plan.empty:
            victim = self._rng.randrange(len(responses))
            self._record(FaultKind.EMPTY, detail=f"candidate {victim}")
            responses[victim] = replace(responses[victim], text="")
            return responses
        draw -= plan.empty
        if draw < plan.malformed:
            victim = self._rng.randrange(len(responses))
            self._record(FaultKind.MALFORMED, detail=f"candidate {victim}")
            junk = _MALFORMED_TEXTS[self._rng.randrange(len(_MALFORMED_TEXTS))]
            responses[victim] = replace(responses[victim], text=junk)
            return responses
        draw -= plan.malformed
        if draw < plan.latency_spike:
            self._record(FaultKind.LATENCY_SPIKE)
            responses = [
                replace(r, latency_seconds=r.latency_seconds + plan.spike_seconds)
                for r in responses
            ]
        return responses

    # ----------------------------------------------------------------- API

    def complete(
        self,
        prompt: str,
        *,
        temperature: float = 0.0,
        n: int = 1,
        task: Optional[object] = None,
    ) -> list[LLMResponse]:
        """Complete via the wrapped client, possibly injecting a fault."""
        self._call_index += 1
        self.stats.calls += 1
        self._transport_fault()
        responses = list(
            self.inner.complete(prompt, temperature=temperature, n=n, task=task)
        )
        if responses:
            responses = self._degrade(responses)
        return responses
