"""Transport-fault taxonomy.

The paper's contribution suppresses *model* failure modes (alignments,
self-consistency); this module names the *infrastructure* failure modes a
deployed pipeline meets — rate limits, timeouts, truncated or garbled
completions — so the rest of the reliability layer can inject, classify,
retry and account for them uniformly.

Two families:

* **transport faults** are exceptions raised instead of a completion.
  They subclass :class:`TransportFault` and carry a ``retryable`` flag —
  :class:`ResilientLLM` retries exactly the retryable ones.
* **content faults** are degraded completions (truncated / empty /
  malformed text, latency spikes).  They are not exceptions: the call
  "succeeds" and the damage must be absorbed downstream (vote, correction,
  degradation fallbacks), mirroring how real APIs fail.
"""

from __future__ import annotations

import enum

__all__ = [
    "FaultKind",
    "TransportFault",
    "RateLimitError",
    "TransientTimeoutError",
    "ServiceUnavailableError",
    "BudgetExceededError",
    "CircuitOpenError",
    "CONTENT_FAULTS",
    "TRANSPORT_FAULTS",
]


class FaultKind(enum.Enum):
    """Every fault the injector can produce / the transport can observe."""

    RATE_LIMIT = "rate_limit"
    TIMEOUT = "timeout"
    SERVICE_UNAVAILABLE = "service_unavailable"
    TRUNCATED = "truncated"
    EMPTY = "empty"
    MALFORMED = "malformed"
    LATENCY_SPIKE = "latency_spike"

    @property
    def is_transport(self) -> bool:
        """True when this kind surfaces as an exception (vs bad content)."""
        return self in TRANSPORT_FAULTS


class TransportFault(RuntimeError):
    """Base class of every transport-level failure.

    ``retryable`` tells :class:`~repro.reliability.transport.ResilientLLM`
    whether backing off and retrying can help.
    """

    kind: FaultKind = FaultKind.SERVICE_UNAVAILABLE
    retryable: bool = True


class RateLimitError(TransportFault):
    """HTTP-429 analogue; ``retry_after`` hints the polite backoff."""

    kind = FaultKind.RATE_LIMIT
    retryable = True

    def __init__(self, message: str = "rate limited", retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class TransientTimeoutError(TransportFault):
    """The request timed out in flight; a retry usually succeeds."""

    kind = FaultKind.TIMEOUT
    retryable = True


class ServiceUnavailableError(TransportFault):
    """HTTP-5xx analogue: the backend fell over mid-request."""

    kind = FaultKind.SERVICE_UNAVAILABLE
    retryable = True


class BudgetExceededError(TransportFault):
    """The run's token/call budget is spent; retrying cannot help."""

    retryable = False

    def __init__(self, message: str, *, spent_tokens: int = 0, spent_calls: int = 0):
        super().__init__(message)
        self.spent_tokens = spent_tokens
        self.spent_calls = spent_calls


class CircuitOpenError(TransportFault):
    """The per-model circuit breaker is open and no fallback is wired."""

    retryable = False


#: kinds realised as exceptions
TRANSPORT_FAULTS = frozenset(
    {FaultKind.RATE_LIMIT, FaultKind.TIMEOUT, FaultKind.SERVICE_UNAVAILABLE}
)

#: kinds realised as degraded completions
CONTENT_FAULTS = frozenset(
    {FaultKind.TRUNCATED, FaultKind.EMPTY, FaultKind.MALFORMED, FaultKind.LATENCY_SPIKE}
)
