"""Resilient LLM transport: retry, backoff, circuit breaking, budgets.

:class:`ResilientLLM` wraps any :class:`~repro.llm.base.LLMClient` and
gives it the production behaviours a benchmark run needs to survive a
flaky backend:

* **retry with exponential backoff** and deterministic jitter for
  retryable :class:`~repro.reliability.faults.TransportFault`\\ s;
* a per-model **circuit breaker** so a dying backend stops eating retries;
* an optional **fallback client** (a cheaper model profile) that serves
  traffic while the breaker is open;
* a **token/call budget guard** that converts runaway spend into a
  non-retryable :class:`~repro.reliability.faults.BudgetExceededError`;
* full accounting into a :class:`~repro.reliability.stats.ReliabilityStats`.

Backoff seconds are *recorded, not slept* by default — the same convention
the simulator uses for decode latency — so offline runs stay fast.  Pass
``sleep=time.sleep`` when wrapping a real API client.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Callable, Optional

from repro.llm.base import LLMClient, LLMResponse
from repro.observability.context import add_event
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.faults import (
    BudgetExceededError,
    CircuitOpenError,
    RateLimitError,
    TransportFault,
)
from repro.reliability.stats import ReliabilityStats

__all__ = ["RetryPolicy", "ResilientLLM"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry schedule.

    ``max_attempts`` counts the first try: the default 4 means one call
    plus up to three retries.  The delay before retry ``k`` (0-based) is
    ``min(max_delay, base_delay * multiplier**k)`` stretched by up to
    ``jitter`` (deterministic, seeded), and never less than a rate-limit's
    ``retry_after`` hint.
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    max_delay: float = 8.0
    multiplier: float = 2.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """The backoff before the ``retry_index``-th retry."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** retry_index)
        return raw * (1.0 + self.jitter * rng.random())


class ResilientLLM:
    """Retry + breaker + budget + fallback around any LLM client."""

    def __init__(
        self,
        inner: LLMClient,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        fallback: Optional[LLMClient] = None,
        max_tokens: Optional[int] = None,
        max_calls: Optional[int] = None,
        stats: Optional[ReliabilityStats] = None,
        sleep: Optional[Callable[[float], None]] = None,
        seed: int = 0,
    ):
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.fallback = fallback
        self.max_tokens = max_tokens
        self.max_calls = max_calls
        self.stats = stats if stats is not None else ReliabilityStats()
        self._sleep = sleep
        self._rng = random.Random(seed)
        # Serving workers share one transport: the lock guards the jitter
        # RNG, the stats counters and the (stateful) breaker.  The inner
        # model call itself runs outside the lock.
        self._lock = threading.RLock()
        self.model_name = inner.model_name

    # ------------------------------------------------------------- helpers

    def _check_budget(self) -> None:
        if self.max_calls is not None and self.stats.calls >= self.max_calls:
            raise BudgetExceededError(
                f"call budget of {self.max_calls} exhausted",
                spent_tokens=self.stats.tokens_spent,
                spent_calls=self.stats.calls,
            )
        if self.max_tokens is not None and self.stats.tokens_spent >= self.max_tokens:
            raise BudgetExceededError(
                f"token budget of {self.max_tokens} exhausted",
                spent_tokens=self.stats.tokens_spent,
                spent_calls=self.stats.calls,
            )

    def _account(self, responses: list[LLMResponse]) -> None:
        for response in responses:
            self.stats.tokens_spent += response.usage.total_tokens

    def _backoff(self, retry_index: int, fault: TransportFault) -> None:
        with self._lock:
            delay = self.policy.delay(retry_index, self._rng)
            if isinstance(fault, RateLimitError):
                delay = max(delay, fault.retry_after)
            self.stats.backoff_seconds += delay
        if self._sleep is not None:
            self._sleep(delay)

    def _fault_kind(self, exc: Exception) -> str:
        if isinstance(exc, TransportFault):
            return exc.kind.value
        return type(exc).__name__

    # ----------------------------------------------------------------- API

    def complete(
        self,
        prompt: str,
        *,
        temperature: float = 0.0,
        n: int = 1,
        task: Optional[object] = None,
    ) -> list[LLMResponse]:
        """Complete with retries; may serve from the fallback model."""
        with self._lock:
            self._check_budget()
            self.stats.calls += 1
            allowed = self.breaker.allow()

        if not allowed:
            if self.fallback is not None:
                with self._lock:
                    self.stats.fallback_calls += 1
                add_event("llm_fallback", model=self.model_name)
                responses = self.fallback.complete(
                    prompt, temperature=temperature, n=n, task=task
                )
                with self._lock:
                    self._account(responses)
                return responses
            raise CircuitOpenError(
                f"circuit open for {self.model_name} and no fallback configured"
            )

        last_fault: Optional[Exception] = None
        for attempt in range(self.policy.max_attempts):
            try:
                responses = self.inner.complete(
                    prompt, temperature=temperature, n=n, task=task
                )
            except Exception as exc:  # noqa: BLE001 — transport boundary
                last_fault = exc
                with self._lock:
                    self.stats.record_fault(
                        self._fault_kind(exc), self.stats.calls,
                        model=self.model_name, detail=str(exc),
                    )
                    if self.breaker.record_failure():
                        self.stats.breaker_opens += 1
                add_event("llm_fault", kind=self._fault_kind(exc), attempt=attempt)
                retryable = isinstance(exc, TransportFault) and exc.retryable
                if retryable and attempt + 1 < self.policy.max_attempts:
                    with self._lock:
                        self.stats.retries += 1
                    add_event(
                        "llm_retry", attempt=attempt + 1, kind=self._fault_kind(exc)
                    )
                    self._backoff(attempt, exc)
                    continue
                with self._lock:
                    self.stats.giveups += 1
                add_event("llm_giveup", kind=self._fault_kind(exc))
                raise
            with self._lock:
                if self.breaker.record_success():
                    self.stats.breaker_closes += 1
                self._account(responses)
            return responses

        # Unreachable: the loop either returns or raises; keep mypy honest.
        raise last_fault if last_fault else RuntimeError("retry loop fell through")
