"""A deterministic, call-counted circuit breaker.

Classic three-state breaker (closed → open → half-open), but cooldown is
measured in *denied calls* rather than wall-clock seconds so that replayed
and simulated runs behave identically: after ``failure_threshold``
consecutive transport failures the breaker opens; the next
``cooldown_calls`` attempts are denied (routed to the fallback model when
one is wired); the attempt after that is a half-open probe whose outcome
closes or re-opens the circuit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Per-model failure gate.

    ``allow()`` must be consulted before each attempt; ``record_success`` /
    ``record_failure`` must be reported after it.
    """

    failure_threshold: int = 5
    cooldown_calls: int = 10

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_calls < 1:
            raise ValueError("cooldown_calls must be >= 1")
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._denied_since_open = 0

    def allow(self) -> bool:
        """True when the next call may go to the primary model."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self._denied_since_open >= self.cooldown_calls:
                self.state = BreakerState.HALF_OPEN
                return True
            self._denied_since_open += 1
            return False
        # HALF_OPEN: a probe is already in flight this attempt; allow it.
        return True

    def record_success(self) -> bool:
        """Report a successful call; returns True when the circuit closed."""
        closed = self.state is not BreakerState.CLOSED
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._denied_since_open = 0
        return closed

    def record_failure(self) -> bool:
        """Report a failed call; returns True when the circuit just opened."""
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to a fresh cooldown.
            self.state = BreakerState.OPEN
            self._denied_since_open = 0
            return True
        self._consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self._denied_since_open = 0
            return True
        return False
