"""OpenSearch-SQL reproduction.

A full offline reproduction of "OpenSearch-SQL: Enhancing Text-to-SQL with
Dynamic Few-shot and Consistency Alignment" (SIGMOD 2025): the four-stage
pipeline with consistency alignment, self-taught Query-CoT-SQL few-shot,
the SQL-Like intermediate language, self-consistency & vote — plus every
substrate it needs (SQL parsing, vector retrieval, SQLite execution,
synthetic BIRD/Spider-like benchmarks, a simulated LLM) and the baseline
systems the paper compares against.

Quickstart::

    from repro import (
        OpenSearchSQL, PipelineConfig, SimulatedLLM, build_bird_like,
        evaluate_pipeline,
    )

    benchmark = build_bird_like()
    pipeline = OpenSearchSQL(benchmark, SimulatedLLM(), PipelineConfig())
    report = evaluate_pipeline(pipeline, benchmark.dev[:20])
    print(report.ex, report.r_ves)
"""

from repro.core import OpenSearchSQL, PipelineConfig, PipelineResult
from repro.datasets import Benchmark, Example, build_bird_like, build_spider_like
from repro.evaluation import EvalReport, evaluate_pipeline, evaluate_system
from repro.llm import GPT_4, GPT_4O, GPT_4O_MINI, SimulatedLLM, SkillProfile
from repro.observability import MetricsRegistry, Trace
from repro.reliability import (
    FaultInjectingLLM,
    FaultPlan,
    ResilientLLM,
    RetryPolicy,
)
from repro.serving import LRUCache, ServingEngine, ServingStats

__version__ = "1.2.0"

__all__ = [
    "Benchmark",
    "EvalReport",
    "Example",
    "FaultInjectingLLM",
    "FaultPlan",
    "GPT_4",
    "GPT_4O",
    "GPT_4O_MINI",
    "LRUCache",
    "MetricsRegistry",
    "OpenSearchSQL",
    "PipelineConfig",
    "PipelineResult",
    "ResilientLLM",
    "RetryPolicy",
    "ServingEngine",
    "ServingStats",
    "SimulatedLLM",
    "SkillProfile",
    "Trace",
    "build_bird_like",
    "build_spider_like",
    "evaluate_pipeline",
    "evaluate_system",
    "__version__",
]
