"""Plain-text table formatting for the benchmark harness output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table (the benches print these so their
    output mirrors the paper's tables)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
