"""Failure analysis: categorize wrong predictions by error kind, trait and
difficulty.

The paper's discussion sections reason about *why* questions fail (which
hallucination survived the pipeline); this module gives downstream users
the same view over their own runs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from repro.datasets.types import Example
from repro.evaluation.metrics import ExampleScore
from repro.evaluation.report import format_table

__all__ = ["ErrorBreakdown", "analyze_failures"]


@dataclass
class ErrorBreakdown:
    """Aggregated failure statistics for one evaluation run."""

    total: int = 0
    wrong: int = 0
    by_status: Counter = field(default_factory=Counter)
    by_difficulty: Counter = field(default_factory=Counter)
    by_trait: Counter = field(default_factory=Counter)
    by_template: Counter = field(default_factory=Counter)
    failed_question_ids: list[str] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        """Fraction of evaluated questions that scored wrong."""
        return self.wrong / self.total if self.total else 0.0

    def render(self, top: int = 8) -> str:
        """A printable multi-table summary."""
        parts = [
            f"{self.wrong}/{self.total} wrong "
            f"({100 * self.error_rate:.1f}% error rate)"
        ]
        for title, counter in (
            ("by execution status", self.by_status),
            ("by difficulty", self.by_difficulty),
            ("by trait", self.by_trait),
            ("by question family", self.by_template),
        ):
            if not counter:
                continue
            rows = [[key, count] for key, count in counter.most_common(top)]
            parts.append(format_table(["bucket", "wrong"], rows, title=title))
        return "\n\n".join(parts)


def analyze_failures(
    examples: list[Example],
    scores: list[ExampleScore],
) -> ErrorBreakdown:
    """Cross-reference scores with their examples and bucket the failures.

    ``examples`` and ``scores`` must be parallel lists (the order
    ``evaluate_pipeline``/``evaluate_system`` preserve).
    """
    if len(examples) != len(scores):
        raise ValueError(
            f"examples ({len(examples)}) and scores ({len(scores)}) differ in length"
        )
    breakdown = ErrorBreakdown(total=len(scores))
    for example, score in zip(examples, scores):
        if example.question_id != score.question_id:
            raise ValueError(
                f"misaligned inputs: {example.question_id} vs {score.question_id}"
            )
        if score.correct:
            continue
        breakdown.wrong += 1
        breakdown.failed_question_ids.append(example.question_id)
        breakdown.by_status[score.predicted_status] += 1
        breakdown.by_difficulty[example.difficulty] += 1
        for trait in example.traits or ("(no traits)",):
            breakdown.by_trait[trait] += 1
        family = example.template_id or "(unknown)"
        breakdown.by_template[family] += 1
    return breakdown
