"""BIRD evaluation metrics: Execution Accuracy (EX) and the Reward-based
Valid Efficiency Score (R-VES).

EX compares execution result sets of predicted and gold SQL.  R-VES
rewards a *correct* prediction by how fast it runs relative to the gold
query, using BIRD's published reward brackets on the time ratio
``gold_time / predicted_time``:

    ratio >= 2      → 1.25
    1 <= ratio < 2  → 1.0
    0.5 <= ratio<1  → 0.75
    0.25<= ratio<.5 → 0.5
    ratio < 0.25    → 0.25
    incorrect       → 0.0

and reports the mean reward × 100.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datasets.types import Example
from repro.execution.executor import (
    ExecutionOutcome,
    ExecutionStatus,
    SQLExecutor,
    results_match,
)

__all__ = [
    "ExampleScore",
    "score_example",
    "execution_accuracy",
    "r_ves_reward",
    "r_ves",
    "ves",
]

_MIN_TIME = 1e-6


@dataclass(frozen=True)
class ExampleScore:
    """Correctness and timing of one prediction against its gold."""

    question_id: str
    correct: bool
    predicted_time: float = 0.0
    gold_time: float = 0.0
    predicted_status: str = ""
    difficulty: str = "simple"
    #: set when the example crashed the system and was isolated by the
    #: runner (the score is then 0 by construction)
    error: Optional[str] = None

    @property
    def reward(self) -> float:
        """The R-VES reward bracket for this example."""
        return r_ves_reward(self.correct, self.gold_time, self.predicted_time)


def r_ves_reward(correct: bool, gold_time: float, predicted_time: float) -> float:
    """The BIRD R-VES reward bracket for one example."""
    if not correct:
        return 0.0
    ratio = max(gold_time, _MIN_TIME) / max(predicted_time, _MIN_TIME)
    if ratio >= 2.0:
        return 1.25
    if ratio >= 1.0:
        return 1.0
    if ratio >= 0.5:
        return 0.75
    if ratio >= 0.25:
        return 0.5
    return 0.25


def _ordered(sql: str) -> bool:
    return "ORDER BY" in sql.upper()


def score_example(
    example: Example,
    predicted_sql: Optional[str],
    executor: SQLExecutor,
    gold_outcome: Optional[ExecutionOutcome] = None,
) -> ExampleScore:
    """Execute gold and predicted SQL and compare results.

    Order sensitivity follows the gold query: when the gold orders its
    output the comparison is order-sensitive, otherwise set-style — the
    behaviour of BIRD's official evaluator.
    """
    if gold_outcome is None:
        gold_outcome = executor.execute(example.gold_sql)
    if gold_outcome.status is not ExecutionStatus.OK:
        raise ValueError(
            f"gold SQL failed for {example.question_id}: {gold_outcome.error}"
        )
    if not predicted_sql:
        return ExampleScore(
            question_id=example.question_id,
            correct=False,
            gold_time=gold_outcome.elapsed_seconds,
            predicted_status="missing",
            difficulty=example.difficulty,
        )
    predicted = executor.execute(predicted_sql)
    correct = results_match(
        predicted, gold_outcome, order_sensitive=_ordered(example.gold_sql)
    )
    return ExampleScore(
        question_id=example.question_id,
        correct=correct,
        predicted_time=predicted.elapsed_seconds,
        gold_time=gold_outcome.elapsed_seconds,
        predicted_status=predicted.status.value,
        difficulty=example.difficulty,
    )


def execution_accuracy(scores: list[ExampleScore]) -> float:
    """Mean EX over scores, as a percentage."""
    if not scores:
        return 0.0
    return 100.0 * sum(score.correct for score in scores) / len(scores)


def r_ves(scores: list[ExampleScore]) -> float:
    """Mean R-VES reward over scores, as a percentage."""
    if not scores:
        return 0.0
    return 100.0 * sum(score.reward for score in scores) / len(scores)


def ves(scores: list[ExampleScore]) -> float:
    """BIRD's original Valid Efficiency Score, as a percentage.

    VES weights each *correct* prediction by the square root of the
    relative speed ``gold_time / predicted_time`` (incorrect predictions
    contribute 0).  R-VES replaced it on the leaderboard because unbounded
    speed ratios made it noisy; both are provided for completeness.
    """
    if not scores:
        return 0.0
    total = 0.0
    for score in scores:
        if not score.correct:
            continue
        ratio = max(score.gold_time, _MIN_TIME) / max(score.predicted_time, _MIN_TIME)
        total += ratio ** 0.5
    return 100.0 * total / len(scores)
