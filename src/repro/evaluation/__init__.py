"""Evaluation: BIRD-style Execution Accuracy and R-VES, workload runners
and table formatting for the benchmark harness."""

from repro.evaluation.metrics import (
    ExampleScore,
    execution_accuracy,
    r_ves,
    r_ves_reward,
    score_example,
    ves,
)
from repro.evaluation.analysis import ErrorBreakdown, analyze_failures
from repro.evaluation.runner import EvalReport, evaluate_pipeline, evaluate_system
from repro.evaluation.report import format_table

__all__ = [
    "EvalReport",
    "ExampleScore",
    "evaluate_pipeline",
    "evaluate_system",
    "execution_accuracy",
    "format_table",
    "r_ves",
    "r_ves_reward",
    "score_example",
    "ves",
    "ErrorBreakdown",
    "analyze_failures",
]
