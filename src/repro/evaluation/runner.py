"""Workload runners: evaluate a pipeline (with EX_G/EX_R/EX traces) or any
generic text-to-SQL system over a list of examples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from repro.core.cost import CostTracker
from repro.core.pipeline import OpenSearchSQL, PipelineResult
from repro.datasets.build import Benchmark
from repro.datasets.types import Example
from repro.evaluation.metrics import (
    ExampleScore,
    execution_accuracy,
    r_ves,
    score_example,
    ves,
)
from repro.execution.executor import SQLExecutor

__all__ = ["EvalReport", "evaluate_pipeline", "evaluate_system", "TextToSQLSystem"]


@runtime_checkable
class TextToSQLSystem(Protocol):
    """Anything that maps an Example to a final SQL string."""

    name: str

    def answer(self, example: Example):
        """Return the final SQL (or an object with ``final_sql``)."""
        ...


@dataclass
class EvalReport:
    """Aggregated evaluation of one system over one workload."""

    system: str
    scores: list[ExampleScore] = field(default_factory=list)
    generation_scores: list[ExampleScore] = field(default_factory=list)
    refined_scores: list[ExampleScore] = field(default_factory=list)
    cost: CostTracker = field(default_factory=CostTracker)

    @property
    def ex(self) -> float:
        """Final execution accuracy (the paper's EX)."""
        return execution_accuracy(self.scores)

    @property
    def ex_g(self) -> float:
        """Single-SQL accuracy straight out of Generation (EX_G)."""
        return execution_accuracy(self.generation_scores)

    @property
    def ex_r(self) -> float:
        """Single-SQL accuracy after refinement, before vote (EX_R)."""
        return execution_accuracy(self.refined_scores)

    @property
    def r_ves(self) -> float:
        """Reward-based Valid Efficiency Score (BIRD leaderboard metric)."""
        return r_ves(self.scores)

    @property
    def ves(self) -> float:
        """BIRD's original (unbounded) Valid Efficiency Score."""
        return ves(self.scores)

    def ex_by_difficulty(self) -> dict[str, float]:
        """EX per difficulty bucket (the Figure 3 view)."""
        buckets: dict[str, list[ExampleScore]] = {}
        for score in self.scores:
            buckets.setdefault(score.difficulty, []).append(score)
        return {
            difficulty: execution_accuracy(scores)
            for difficulty, scores in sorted(buckets.items())
        }

    @property
    def count(self) -> int:
        """Number of evaluated examples."""
        return len(self.scores)

    def to_dict(self) -> dict:
        """JSON-serializable summary (used by ``save_json``)."""
        from dataclasses import asdict

        return {
            "system": self.system,
            "count": self.count,
            "ex": self.ex,
            "ex_g": self.ex_g,
            "ex_r": self.ex_r,
            "r_ves": self.r_ves,
            "ves": self.ves,
            "ex_by_difficulty": self.ex_by_difficulty(),
            "cost": self.cost.summary(),
            "scores": [asdict(score) for score in self.scores],
        }

    def save_json(self, path) -> None:
        """Write the report summary to ``path`` as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))


def evaluate_pipeline(
    pipeline: OpenSearchSQL,
    examples: list[Example],
    name: Optional[str] = None,
) -> EvalReport:
    """Run an OpenSearch-SQL pipeline over ``examples``, scoring the three
    observables (EX_G, EX_R, EX) the paper's ablation tables report."""
    report = EvalReport(system=name or f"opensearch-sql[{pipeline.llm.model_name}]")
    gold_cache: dict[str, object] = {}
    for example in examples:
        executor = pipeline.executor(example.db_id)
        result: PipelineResult = pipeline.answer(example)
        gold = gold_cache.get(example.question_id)
        if gold is None:
            gold = executor.execute(example.gold_sql)
            gold_cache[example.question_id] = gold
        report.scores.append(
            score_example(example, result.final_sql, executor, gold)
        )
        report.generation_scores.append(
            score_example(example, result.generation_sql, executor, gold)
        )
        report.refined_scores.append(
            score_example(example, result.refined_sql, executor, gold)
        )
        report.cost.merge(result.cost)
    return report


def evaluate_system(
    system: TextToSQLSystem,
    benchmark: Benchmark,
    examples: list[Example],
    timeout_seconds: float = 5.0,
) -> EvalReport:
    """Evaluate any text-to-SQL system (baseline or pipeline wrapper)."""
    report = EvalReport(system=system.name)
    executors: dict[str, SQLExecutor] = {}
    for example in examples:
        if example.db_id not in executors:
            executors[example.db_id] = SQLExecutor(
                benchmark.database(example.db_id).connection,
                timeout_seconds=timeout_seconds,
            )
        executor = executors[example.db_id]
        answer = system.answer(example)
        sql = answer if isinstance(answer, str) else getattr(answer, "final_sql", "")
        report.scores.append(score_example(example, sql, executor))
    return report
