"""Workload runners: evaluate a pipeline (with EX_G/EX_R/EX traces) or any
generic text-to-SQL system over a list of examples.

Both runners are production-hardened:

* **per-example error isolation** — an example that crashes the system
  scores 0 and carries an ``error`` field instead of killing the run;
* **checkpoint/resume** — pass ``checkpoint_path`` and every finished
  example is appended to a JSONL checkpoint
  (:class:`~repro.reliability.checkpoint.EvalCheckpoint`); re-running with
  the same path replays finished examples from disk and continues with the
  rest, producing the identical final :class:`EvalReport`;
* **parallel mode** — ``evaluate_pipeline(..., workers=N)`` scores
  examples on a thread pool.  Because the simulated model derives every
  draw from per-call hashed seeds and gold execution goes through the
  lock-protected shared :class:`~repro.caching.GoldResultCache`, a
  parallel run produces the identical EX/EX_G/EX_R as a serial one.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Protocol, Union, runtime_checkable

from repro.caching import GoldResultCache
from repro.core.cost import CostTracker
from repro.core.pipeline import OpenSearchSQL, PipelineResult
from repro.datasets.build import Benchmark
from repro.datasets.types import Example
from repro.evaluation.metrics import (
    ExampleScore,
    execution_accuracy,
    r_ves,
    score_example,
    ves,
)
from repro.execution.executor import SQLExecutor
from repro.observability.trace import Trace
from repro.reliability.checkpoint import EvalCheckpoint
from repro.reliability.deadline import Deadline
from repro.serving.latency import LatencySummary

__all__ = ["EvalReport", "evaluate_pipeline", "evaluate_system", "TextToSQLSystem"]


@runtime_checkable
class TextToSQLSystem(Protocol):
    """Anything that maps an Example to a final SQL string."""

    name: str

    def answer(self, example: Example):
        """Return the final SQL (or an object with ``final_sql``)."""
        ...


@dataclass
class EvalReport:
    """Aggregated evaluation of one system over one workload."""

    system: str
    scores: list[ExampleScore] = field(default_factory=list)
    generation_scores: list[ExampleScore] = field(default_factory=list)
    refined_scores: list[ExampleScore] = field(default_factory=list)
    cost: CostTracker = field(default_factory=CostTracker)
    #: one dict per degradation event: question_id + the event's fields
    degradations: list[dict] = field(default_factory=list)
    #: per-example simulated model latency (seconds), aligned with scores;
    #: empty for runners that do not track cost (evaluate_system)
    latencies: list[float] = field(default_factory=list)
    #: question_id → Trace for runs with ``tracing=True`` (else empty)
    traces: dict = field(default_factory=dict)
    #: run-level annotations (e.g. a routed run's tier mix); only
    #: non-empty metas serialize, so unannotated reports keep their
    #: historical byte layout
    meta: dict = field(default_factory=dict)

    @property
    def ex(self) -> float:
        """Final execution accuracy (the paper's EX)."""
        return execution_accuracy(self.scores)

    @property
    def ex_g(self) -> float:
        """Single-SQL accuracy straight out of Generation (EX_G)."""
        return execution_accuracy(self.generation_scores)

    @property
    def ex_r(self) -> float:
        """Single-SQL accuracy after refinement, before vote (EX_R)."""
        return execution_accuracy(self.refined_scores)

    @property
    def r_ves(self) -> float:
        """Reward-based Valid Efficiency Score (BIRD leaderboard metric)."""
        return r_ves(self.scores)

    @property
    def ves(self) -> float:
        """BIRD's original (unbounded) Valid Efficiency Score."""
        return ves(self.scores)

    def ex_by_difficulty(self) -> dict[str, float]:
        """EX per difficulty bucket (the Figure 3 view)."""
        buckets: dict[str, list[ExampleScore]] = {}
        for score in self.scores:
            buckets.setdefault(score.difficulty, []).append(score)
        return {
            difficulty: execution_accuracy(scores)
            for difficulty, scores in sorted(buckets.items())
        }

    @property
    def count(self) -> int:
        """Number of evaluated examples."""
        return len(self.scores)

    @property
    def errors(self) -> list[ExampleScore]:
        """Scores of examples the runner had to isolate."""
        return [score for score in self.scores if score.error]

    def latency_summary(self) -> LatencySummary:
        """p50/p95/p99 + mean over per-example model latency.

        Every bench that prints ``to_dict()`` gains this latency view for
        free; the simulator reports decode latency instead of sleeping it,
        so the numbers are stable across machines.
        """
        return LatencySummary.from_values(self.latencies)

    def stage_costs(self) -> dict[str, dict]:
        """Per-stage cost attribution (the paper's Table 6 view).

        Tokens, simulated model seconds and call counts per agent summed
        over the workload, plus per-request means and each stage's share
        of the total token spend.  Stage totals sum to the report's
        request totals by construction (one CostTracker merged per
        example).
        """
        count = max(1, self.count)
        total_tokens = self.cost.total_tokens
        costs: dict[str, dict] = {}
        for name, stage in sorted(self.cost.stages.items()):
            costs[name] = {
                "tokens": stage.total_tokens,
                "model_seconds": round(stage.model_seconds, 6),
                "calls": stage.calls,
                "tokens_per_request": round(stage.total_tokens / count, 2),
                "model_seconds_per_request": round(stage.model_seconds / count, 6),
                "tokens_share": (
                    round(stage.total_tokens / total_tokens, 4)
                    if total_tokens
                    else 0.0
                ),
            }
        return costs

    def degradation_counts(self) -> dict[str, int]:
        """Occurrences per degradation kind across the workload."""
        counts: dict[str, int] = {}
        for event in self.degradations:
            kind = event.get("kind", "unknown")
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """JSON-serializable summary (used by ``save_json``)."""
        from dataclasses import asdict

        return {
            "system": self.system,
            "count": self.count,
            "ex": self.ex,
            "ex_g": self.ex_g,
            "ex_r": self.ex_r,
            "r_ves": self.r_ves,
            "ves": self.ves,
            "ex_by_difficulty": self.ex_by_difficulty(),
            "cost": self.cost.summary(),
            "stage_costs": self.stage_costs(),
            "latency": self.latency_summary().to_dict(),
            "errors": len(self.errors),
            "degradations": self.degradation_counts(),
            "scores": [asdict(score) for score in self.scores],
        }

    def deterministic_dict(self) -> dict:
        """The report restricted to its run-invariant fields.

        ``to_dict()`` carries real wall-clock measurements (gold/predicted
        execution times, per-stage wall seconds, VES time ratios) that
        differ between two otherwise identical runs.  This view keeps only
        what the deterministic simulator pins down — accuracy scores,
        token/call/model-second stage costs, virtual latency, degradation
        and error counts, and per-example outcomes — so two runs over the
        same workload with the same seeds serialize *byte-identically*.
        Crash-recovery certification diffs exactly this document.
        """
        document = {
            "system": self.system,
            "count": self.count,
            "ex": self.ex,
            "ex_g": self.ex_g,
            "ex_r": self.ex_r,
            "ex_by_difficulty": self.ex_by_difficulty(),
            "stage_costs": self.stage_costs(),
            "total_tokens": self.cost.total_tokens,
            "total_model_seconds": round(self.cost.total_model_seconds, 6),
            "latency": LatencySummary.from_values(
                [round(value, 6) for value in self.latencies]
            ).to_dict(),
            "errors": len(self.errors),
            "degradations": self.degradation_counts(),
            "scores": [
                {
                    "question_id": score.question_id,
                    "correct": score.correct,
                    "predicted_status": score.predicted_status,
                    "difficulty": score.difficulty,
                    "error": score.error,
                }
                for score in self.scores
            ],
        }
        if self.meta:
            document["meta"] = dict(sorted(self.meta.items()))
        return document

    def save_json(self, path) -> None:
        """Write the report summary to ``path`` as JSON, creating missing
        parent directories."""
        import json

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2))


def _error_score(example: Example, error: str, gold_time: float = 0.0) -> ExampleScore:
    """The zero score an isolated (crashed) example receives."""
    return ExampleScore(
        question_id=example.question_id,
        correct=False,
        gold_time=gold_time,
        predicted_status="crashed",
        difficulty=example.difficulty,
        error=error,
    )


def evaluate_pipeline(
    pipeline: OpenSearchSQL,
    examples: list[Example],
    name: Optional[str] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    workers: int = 1,
    gold_cache: Optional[GoldResultCache] = None,
    deadline_ms: Optional[float] = None,
    tracing: bool = False,
) -> EvalReport:
    """Run an OpenSearch-SQL pipeline over ``examples``, scoring the three
    observables (EX_G, EX_R, EX) the paper's ablation tables report.

    A crashed example never kills the run: it scores 0 with an ``error``
    field.  With ``checkpoint_path`` every finished example is appended to
    a JSONL checkpoint and already-checkpointed examples are replayed from
    disk on resume.  ``workers > 1`` scores examples on a thread pool;
    the report's scores stay in ``examples`` order and EX/EX_G/EX_R are
    identical to a serial run (the pipeline's answer path is reentrant
    and order-independent).  ``deadline_ms`` bounds each example with a
    per-request :class:`~repro.reliability.deadline.Deadline` (virtual
    time); exhaustion degrades the answer — visible in the report's
    ``deadline_exceeded`` degradation counts — instead of crashing it.
    ``tracing=True`` records one :class:`~repro.observability.trace.Trace`
    per freshly-answered example into ``report.traces`` (checkpoint
    replays carry no trace).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if deadline_ms is not None and deadline_ms <= 0:
        raise ValueError("deadline_ms must be > 0")
    report = EvalReport(system=name or f"opensearch-sql[{pipeline.llm.model_name}]")
    checkpoint = EvalCheckpoint(checkpoint_path) if checkpoint_path else None
    gold = gold_cache if gold_cache is not None else GoldResultCache()

    def run_one(example: Example) -> tuple:
        record = checkpoint.get(example.question_id) if checkpoint else None
        if record is not None:
            score, generation_score, refined_score, cost, degradations = (
                EvalCheckpoint.decode(record)
            )
            return score, generation_score, refined_score, cost, degradations, None

        degradation_events: list = []
        trace = (
            Trace(question_id=example.question_id, db_id=example.db_id)
            if tracing
            else None
        )
        try:
            executor = pipeline.executor(example.db_id)
            # keyword only when set: pipeline stand-ins (test doubles,
            # wrappers) need not know about deadlines or traces
            answer_kwargs: dict = {}
            if deadline_ms is not None:
                answer_kwargs["deadline"] = Deadline(deadline_ms / 1000.0)
            if trace is not None:
                answer_kwargs["trace"] = trace
            result: PipelineResult = pipeline.answer(example, **answer_kwargs)
            degradation_events = result.degradations
            gold_outcome = gold.outcome(example, executor)
            score = score_example(example, result.final_sql, executor, gold_outcome)
            generation_score = score_example(
                example, result.generation_sql, executor, gold_outcome
            )
            refined_score = score_example(
                example, result.refined_sql, executor, gold_outcome
            )
            cost = result.cost
            error = None
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            score = _error_score(example, error)
            generation_score = _error_score(example, error)
            refined_score = _error_score(example, error)
            cost = None
            if trace is not None:
                trace.root.status = "failed"
                trace.root.event("request_failed", error=error)
                trace.finish()

        if checkpoint is not None:
            checkpoint.record_example(
                example.question_id,
                score=score,
                generation_score=generation_score,
                refined_score=refined_score,
                cost=cost,
                degradations=list(degradation_events),
                error=error,
            )
        return score, generation_score, refined_score, cost, degradation_events, trace

    if workers == 1:
        outcomes = [run_one(example) for example in examples]
    else:
        # pool.map preserves input order, so the report is example-ordered
        # regardless of completion order; checkpoint appends happen inside
        # run_one under the checkpoint's own lock.
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="eval"
        ) as pool:
            outcomes = list(pool.map(run_one, examples))
    if checkpoint is not None:
        checkpoint.close()  # fsync the final partial batch

    for example, outcome in zip(examples, outcomes):
        score, generation_score, refined_score, cost, degradations, trace = outcome
        _append(report, example, score, generation_score, refined_score)
        report.latencies.append(cost.total_model_seconds if cost is not None else 0.0)
        if cost is not None:
            report.cost.merge(cost)
        if trace is not None:
            report.traces[example.question_id] = trace
        for event in degradations:
            report.degradations.append(
                {"question_id": example.question_id, **event.to_dict()}
            )
    return report


def _append(
    report: EvalReport,
    example: Example,
    score: Optional[ExampleScore],
    generation_score: Optional[ExampleScore],
    refined_score: Optional[ExampleScore],
) -> None:
    fallback = _error_score(example, "missing checkpoint score")
    report.scores.append(score or fallback)
    report.generation_scores.append(generation_score or fallback)
    report.refined_scores.append(refined_score or fallback)


def evaluate_system(
    system: TextToSQLSystem,
    benchmark: Benchmark,
    examples: list[Example],
    timeout_seconds: float = 5.0,
    checkpoint_path: Optional[Union[str, Path]] = None,
    gold_cache: Optional[GoldResultCache] = None,
) -> EvalReport:
    """Evaluate any text-to-SQL system (baseline or pipeline wrapper).

    Gold outcomes go through the same shared, lock-protected
    :class:`~repro.caching.GoldResultCache` as :func:`evaluate_pipeline`
    (pass one in to share it across runs), crashed examples are isolated,
    and ``checkpoint_path`` enables JSONL checkpoint/resume.
    """
    report = EvalReport(system=system.name)
    checkpoint = EvalCheckpoint(checkpoint_path) if checkpoint_path else None
    executors: dict[str, SQLExecutor] = {}
    gold = gold_cache if gold_cache is not None else GoldResultCache()
    for example in examples:
        record = checkpoint.get(example.question_id) if checkpoint else None
        if record is not None:
            score, _generation, _refined, _cost, _degradations = (
                EvalCheckpoint.decode(record)
            )
            report.scores.append(
                score or _error_score(example, "missing checkpoint score")
            )
            continue

        try:
            if example.db_id not in executors:
                executors[example.db_id] = SQLExecutor(
                    benchmark.database(example.db_id).connection,
                    timeout_seconds=timeout_seconds,
                )
            executor = executors[example.db_id]
            gold_outcome = gold.outcome(example, executor)
            answer = system.answer(example)
            sql = answer if isinstance(answer, str) else getattr(answer, "final_sql", "")
            score = score_example(example, sql, executor, gold_outcome)
            error = None
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            score = _error_score(example, error)

        report.scores.append(score)
        if checkpoint is not None:
            checkpoint.record_example(example.question_id, score=score, error=error)
    if checkpoint is not None:
        checkpoint.close()  # fsync the final partial batch
    return report
