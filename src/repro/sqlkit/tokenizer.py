"""A tokenizer for the SQLite-dialect SQL subset used by the reproduction.

The tokenizer is intentionally small but complete for the query shapes that
appear in BIRD-style workloads: quoted identifiers (backtick, double-quote
and square-bracket forms), string literals with doubled-quote escapes,
numeric literals (integer, float, scientific), multi-character comparison
operators and line/block comments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Token", "TokenType", "TokenizeError", "tokenize", "KEYWORDS"]


class TokenizeError(ValueError):
    """Raised when the input text contains a character sequence that is not
    valid in the supported SQL subset (for example an unterminated string)."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at position {position})")
        self.position = position


class TokenType(enum.Enum):
    """Lexical category of a :class:`Token`."""

    KEYWORD = "keyword"
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words recognised as keywords.  Anything alphabetic that is not in
#: this set is an identifier.  The set covers the SQL subset in ``parser.py``
#: plus the words used by the SQL-Like intermediate language (``SHOW``).
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "AS",
        "ASC",
        "BETWEEN",
        "BY",
        "CASE",
        "CAST",
        "CROSS",
        "DESC",
        "DISTINCT",
        "ELSE",
        "END",
        "ESCAPE",
        "EXCEPT",
        "EXISTS",
        "FROM",
        "FULL",
        "GROUP",
        "HAVING",
        "IN",
        "INNER",
        "INTERSECT",
        "IS",
        "JOIN",
        "LEFT",
        "LIKE",
        "LIMIT",
        "NOT",
        "NULL",
        "OFFSET",
        "ON",
        "OR",
        "ORDER",
        "OUTER",
        "RIGHT",
        "SELECT",
        "SHOW",
        "THEN",
        "UNION",
        "USING",
        "WHEN",
        "WHERE",
    }
)

_OPERATORS = (
    "<>",
    "<=",
    ">=",
    "!=",
    "||",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
)

_PUNCT = {"(", ")", ",", ".", ";"}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the normalized form: keywords are upper-cased, quoted
    identifiers are unquoted, and string literals have their surrounding
    quotes removed and escapes resolved.  ``raw`` preserves the original
    spelling for error reporting.
    """

    type: TokenType
    value: str
    position: int
    raw: str = ""

    def is_keyword(self, *words: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in words


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of tokens terminated by an EOF token.

    Raises :class:`TokenizeError` on unterminated strings/identifiers or
    characters outside the supported subset.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise TokenizeError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            value, i = _read_string(text, i, "'")
            tokens.append(Token(TokenType.STRING, value, i, raw=value))
            continue
        if ch == '"':
            value, i = _read_string(text, i, '"')
            tokens.append(Token(TokenType.IDENT, value, i, raw=value))
            continue
        if ch == "`":
            value, i = _read_string(text, i, "`")
            tokens.append(Token(TokenType.IDENT, value, i, raw=value))
            continue
        if ch == "[":
            end = text.find("]", i + 1)
            if end == -1:
                raise TokenizeError("unterminated bracketed identifier", i)
            tokens.append(Token(TokenType.IDENT, text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            value, i = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if _is_ident_start(ch):
            start = i
            while i < n and _is_ident_char(text[i]):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start, raw=word))
            else:
                tokens.append(Token(TokenType.IDENT, word, start, raw=word))
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise TokenizeError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(text: str, start: int, quote: str) -> tuple[str, int]:
    """Read a quoted region starting at ``start``; doubled quotes escape.

    Returns the unquoted value and the index just past the closing quote.
    """
    i = start + 1
    n = len(text)
    parts: list[str] = []
    while i < n:
        ch = text[i]
        if ch == quote:
            if i + 1 < n and text[i + 1] == quote:
                parts.append(quote)
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise TokenizeError(f"unterminated {quote} quoted region", start)


def _read_number(text: str, start: int) -> tuple[str, int]:
    """Read a numeric literal (integer, float or scientific notation)."""
    i = start
    n = len(text)
    while i < n and text[i].isdigit():
        i += 1
    if i < n and text[i] == ".":
        i += 1
        while i < n and text[i].isdigit():
            i += 1
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j].isdigit():
            i = j
            while i < n and text[i].isdigit():
                i += 1
    return text[start:i], i
