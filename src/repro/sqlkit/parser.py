"""Recursive-descent parser for the supported SQL subset.

The grammar covers single SELECT statements (optionally parenthesised) with
joins, WHERE/GROUP BY/HAVING/ORDER BY/LIMIT clauses, scalar and aggregate
functions, CASE/CAST expressions and subqueries in expression, IN and FROM
positions.  Set operations (UNION etc.) are not supported; BIRD-style
workloads almost never need them and the generation stage never emits them.
"""

from __future__ import annotations

from typing import Optional

from repro.sqlkit.ast import (
    Between,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    Exists,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Subquery,
    TableRef,
    UnaryOp,
)
from repro.sqlkit.tokenizer import Token, TokenType, tokenize

__all__ = ["ParseError", "parse_select", "parse_expression"]


class ParseError(ValueError):
    """Raised when the token stream does not match the supported grammar."""

    def __init__(self, message: str, token: Optional[Token] = None):
        if token is not None:
            message = f"{message} (near {token.value!r} at position {token.position})"
        super().__init__(message)
        self.token = token


def parse_select(sql: str) -> Select:
    """Parse ``sql`` into a :class:`Select` AST.

    Raises :class:`ParseError` (or :class:`TokenizeError`) when the text is
    not a single well-formed SELECT in the supported subset.
    """
    parser = _Parser(tokenize(sql))
    select = parser.select_statement()
    parser.expect_end()
    return select


def parse_expression(text: str) -> Expr:
    """Parse a standalone SQL expression (used by SQL-Like and tests)."""
    parser = _Parser(tokenize(text))
    expr = parser.expression()
    parser.expect_end()
    return expr


_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_ADDITIVE_OPS = {"+", "-", "||"}
_MULTIPLICATIVE_OPS = {"*", "/", "%"}


class _Parser:
    """Token-stream cursor with one method per grammar production."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------- cursor

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _match_keyword(self, *words: str) -> bool:
        if self.current.is_keyword(*words):
            self._advance()
            return True
        return False

    def _match_punct(self, value: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == value:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise ParseError(f"expected {word}", self.current)
        return self._advance()

    def _expect_punct(self, value: str) -> Token:
        token = self.current
        if token.type is not TokenType.PUNCT or token.value != value:
            raise ParseError(f"expected {value!r}", token)
        return self._advance()

    def _expect_ident(self) -> str:
        token = self.current
        if token.type is TokenType.IDENT:
            return self._advance().value
        # Non-reserved usage of soft keywords as identifiers is common in
        # real schemas; allow any keyword in identifier position except the
        # structural ones that would make the grammar ambiguous.
        if token.type is TokenType.KEYWORD and token.value not in {
            "SELECT",
            "FROM",
            "WHERE",
            "GROUP",
            "ORDER",
            "HAVING",
            "LIMIT",
            "JOIN",
            "ON",
            "AND",
            "OR",
            "NOT",
            "CASE",
            "WHEN",
            "THEN",
            "ELSE",
            "END",
        }:
            return self._advance().value
        raise ParseError("expected identifier", token)

    def expect_end(self) -> None:
        self._match_punct(";")
        if self.current.type is not TokenType.EOF:
            raise ParseError("unexpected trailing input", self.current)

    # -------------------------------------------------------- statements

    def select_statement(self) -> Select:
        if self._match_punct("("):
            select = self.select_statement()
            self._expect_punct(")")
            return select
        self._expect_keyword("SELECT")
        distinct = False
        if self._match_keyword("DISTINCT"):
            distinct = True
        elif self._match_keyword("ALL"):
            pass
        items = [self.select_item()]
        while self._match_punct(","):
            items.append(self.select_item())

        from_table: Optional[TableRef] = None
        joins: list[Join] = []
        if self._match_keyword("FROM"):
            from_table = self.table_ref()
            while True:
                join = self.maybe_join()
                if join is None:
                    break
                joins.append(join)

        where = self.expression() if self._match_keyword("WHERE") else None

        group_by: list[Expr] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.expression())
            while self._match_punct(","):
                group_by.append(self.expression())

        having = self.expression() if self._match_keyword("HAVING") else None

        order_by: list[OrderItem] = []
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self.order_item())
            while self._match_punct(","):
                order_by.append(self.order_item())

        limit: Optional[int] = None
        offset: Optional[int] = None
        if self._match_keyword("LIMIT"):
            limit = self._int_literal()
            if self._match_keyword("OFFSET"):
                offset = self._int_literal()
            elif self._match_punct(","):
                # LIMIT offset, count
                offset = limit
                limit = self._int_literal()

        return Select(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _int_literal(self) -> int:
        negative = False
        if self.current.type is TokenType.OPERATOR and self.current.value == "-":
            self._advance()
            negative = True
        token = self.current
        if token.type is not TokenType.NUMBER:
            raise ParseError("expected integer literal", token)
        self._advance()
        value = int(float(token.value))
        return -value if negative else value

    def select_item(self) -> SelectItem:
        expr = self.expression()
        alias: Optional[str] = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def table_ref(self) -> TableRef:
        if self._match_punct("("):
            subquery = self.select_statement()
            self._expect_punct(")")
            alias = None
            if self._match_keyword("AS"):
                alias = self._expect_ident()
            elif self.current.type is TokenType.IDENT:
                alias = self._advance().value
            return TableRef(name="", alias=alias, subquery=subquery)
        name = self._expect_ident()
        alias: Optional[str] = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    def maybe_join(self) -> Optional[Join]:
        kind: Optional[str] = None
        if self.current.is_keyword("INNER"):
            self._advance()
            self._expect_keyword("JOIN")
            kind = "INNER"
        elif self.current.is_keyword("LEFT", "RIGHT", "FULL"):
            kind = self._advance().value
            self._match_keyword("OUTER")
            self._expect_keyword("JOIN")
        elif self.current.is_keyword("CROSS"):
            self._advance()
            self._expect_keyword("JOIN")
            kind = "CROSS"
        elif self.current.is_keyword("JOIN"):
            self._advance()
            kind = "INNER"
        elif self._match_punct(","):
            kind = "CROSS"
        if kind is None:
            return None
        table = self.table_ref()
        condition: Optional[Expr] = None
        if kind != "CROSS":
            self._expect_keyword("ON")
            condition = self.expression()
        return Join(table=table, kind=kind, condition=condition)

    def order_item(self) -> OrderItem:
        expr = self.expression()
        desc = False
        if self._match_keyword("DESC"):
            desc = True
        else:
            self._match_keyword("ASC")
        return OrderItem(expr=expr, desc=desc)

    # ------------------------------------------------------- expressions

    def expression(self) -> Expr:
        return self.or_expr()

    def or_expr(self) -> Expr:
        left = self.and_expr()
        while self._match_keyword("OR"):
            left = BinaryOp("OR", left, self.and_expr())
        return left

    def and_expr(self) -> Expr:
        left = self.not_expr()
        while self._match_keyword("AND"):
            left = BinaryOp("AND", left, self.not_expr())
        return left

    def not_expr(self) -> Expr:
        if self._match_keyword("NOT"):
            return UnaryOp("NOT", self.not_expr())
        return self.predicate()

    def predicate(self) -> Expr:
        left = self.additive()
        negated = bool(self._match_keyword("NOT"))
        if self._match_keyword("BETWEEN"):
            low = self.additive()
            self._expect_keyword("AND")
            high = self.additive()
            return Between(left, low, high, negated=negated)
        if self._match_keyword("IN"):
            return self._in_tail(left, negated)
        if self._match_keyword("LIKE"):
            pattern = self.additive()
            if self._match_keyword("ESCAPE"):
                self.additive()
            return Like(left, pattern, negated=negated)
        if negated:
            raise ParseError("expected BETWEEN, IN or LIKE after NOT", self.current)
        # Comparisons and IS NULL chain left-associatively, matching SQLite
        # (``a = b = c`` parses as ``(a = b) = c``).
        while True:
            if self._match_keyword("IS"):
                is_negated = bool(self._match_keyword("NOT"))
                self._expect_keyword("NULL")
                left = IsNull(left, negated=is_negated)
                continue
            token = self.current
            if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
                op = self._advance().value
                if op == "!=":
                    op = "<>"
                left = BinaryOp(op, left, self.additive())
                continue
            return left

    def _in_tail(self, left: Expr, negated: bool) -> Expr:
        self._expect_punct("(")
        if self.current.is_keyword("SELECT"):
            subquery = self.select_statement()
            self._expect_punct(")")
            return InList(left, subquery=subquery, negated=negated)
        items = [self.additive()]
        while self._match_punct(","):
            items.append(self.additive())
        self._expect_punct(")")
        return InList(left, items=tuple(items), negated=negated)

    def additive(self) -> Expr:
        left = self.multiplicative()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in _ADDITIVE_OPS
        ):
            op = self._advance().value
            left = BinaryOp(op, left, self.multiplicative())
        return left

    def multiplicative(self) -> Expr:
        left = self.unary()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in _MULTIPLICATIVE_OPS
        ):
            op = self._advance().value
            left = BinaryOp(op, left, self.unary())
        return left

    def unary(self) -> Expr:
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in {"-", "+"}:
            op = self._advance().value
            operand = self.unary()
            if op == "+":
                return operand
            if isinstance(operand, Literal) and operand.kind == "number":
                return Literal.number(-operand.value)  # type: ignore[arg-type]
            return UnaryOp("-", operand)
        return self.primary()

    def primary(self) -> Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return Literal.number(value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal.string(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal.null()
        if token.is_keyword("CASE"):
            return self.case_expr()
        if token.is_keyword("CAST"):
            return self.cast_expr()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self.select_statement()
            self._expect_punct(")")
            return Exists(subquery)
        if self._match_punct("("):
            if self.current.is_keyword("SELECT"):
                subquery = self.select_statement()
                self._expect_punct(")")
                return Subquery(subquery)
            expr = self.expression()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return Star()
        if token.type is TokenType.IDENT or token.type is TokenType.KEYWORD:
            return self._name_or_call()
        raise ParseError("expected expression", token)

    def case_expr(self) -> Case:
        self._expect_keyword("CASE")
        whens: list[tuple[Expr, Expr]] = []
        operand: Optional[Expr] = None
        if not self.current.is_keyword("WHEN"):
            operand = self.expression()
        while self._match_keyword("WHEN"):
            cond = self.expression()
            if operand is not None:
                cond = BinaryOp("=", operand, cond)
            self._expect_keyword("THEN")
            result = self.expression()
            whens.append((cond, result))
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self.current)
        else_: Optional[Expr] = None
        if self._match_keyword("ELSE"):
            else_ = self.expression()
        self._expect_keyword("END")
        return Case(whens=tuple(whens), else_=else_)

    def cast_expr(self) -> Cast:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        expr = self.expression()
        self._expect_keyword("AS")
        type_name = self._expect_ident()
        # Multi-word types such as DOUBLE PRECISION.
        while self.current.type is TokenType.IDENT:
            type_name += " " + self._advance().value
        self._expect_punct(")")
        return Cast(expr, type_name.upper())

    def _name_or_call(self) -> Expr:
        name = self._expect_ident()
        if self._match_punct("("):
            distinct = bool(self._match_keyword("DISTINCT"))
            args: list[Expr] = []
            if not (self.current.type is TokenType.PUNCT and self.current.value == ")"):
                args.append(self.expression())
                while self._match_punct(","):
                    args.append(self.expression())
            self._expect_punct(")")
            return FuncCall(name.upper(), tuple(args), distinct=distinct)
        if self._match_punct("."):
            token = self.current
            if token.type is TokenType.OPERATOR and token.value == "*":
                self._advance()
                return Star(table=name)
            column = self._expect_ident()
            return ColumnRef(column=column, table=name)
        return ColumnRef(column=name)
