"""Render AST nodes back to SQL text (SQLite dialect).

Rendering is canonical: keywords upper-case, identifiers quoted with
backticks only when necessary, single-quoted strings with doubled-quote
escapes.  ``parse_select(render(ast)) == ast`` holds for every AST the
parser can produce, which the property tests verify.
"""

from __future__ import annotations

import re

from repro.sqlkit.ast import (
    Between,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    Exists,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Subquery,
    TableRef,
    UnaryOp,
)
from repro.sqlkit.tokenizer import KEYWORDS

__all__ = ["render", "render_expr", "quote_identifier"]

_SAFE_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def quote_identifier(name: str) -> str:
    """Quote ``name`` with backticks when it is not a safe bare identifier."""
    if _SAFE_IDENT.match(name) and name.upper() not in KEYWORDS:
        return name
    return "`" + name.replace("`", "``") + "`"


def _quote_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


#: Binding power of binary operators, used to decide parenthesisation.
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4,
    "<>": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "||": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

_COMPARISON_LEVEL = 4


def render(select: Select) -> str:
    """Render a :class:`Select` AST to SQL text."""
    parts: list[str] = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_select_item(item) for item in select.items))
    if select.from_table is not None:
        parts.append("FROM")
        parts.append(_render_table(select.from_table))
        for join in select.joins:
            parts.append(_render_join(join))
    if select.where is not None:
        parts.append("WHERE")
        parts.append(render_expr(select.where))
    if select.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(render_expr(e) for e in select.group_by))
    if select.having is not None:
        parts.append("HAVING")
        parts.append(render_expr(select.having))
    if select.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_render_order_item(o) for o in select.order_by))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
        if select.offset is not None:
            parts.append(f"OFFSET {select.offset}")
    return " ".join(parts)


def _render_select_item(item: SelectItem) -> str:
    text = render_expr(item.expr)
    if item.alias:
        return f"{text} AS {quote_identifier(item.alias)}"
    return text


def _render_table(table: TableRef) -> str:
    if table.subquery is not None:
        inner = f"({render(table.subquery)})"
        return f"{inner} AS {quote_identifier(table.alias)}" if table.alias else inner
    text = quote_identifier(table.name)
    if table.alias:
        text += f" AS {quote_identifier(table.alias)}"
    return text


def _render_join(join: Join) -> str:
    if join.kind == "CROSS":
        return f"CROSS JOIN {_render_table(join.table)}"
    text = f"{join.kind} JOIN {_render_table(join.table)}"
    if join.condition is not None:
        text += f" ON {render_expr(join.condition)}"
    return text


def _render_order_item(item: OrderItem) -> str:
    text = render_expr(item.expr)
    return f"{text} DESC" if item.desc else text


def render_expr(expr: Expr, parent_level: int = 0) -> str:
    """Render an expression, parenthesising when ``parent_level`` demands."""
    if isinstance(expr, Literal):
        if expr.kind == "null" or expr.value is None:
            return "NULL"
        if expr.kind == "number":
            return _render_number(expr.value)
        return _quote_string(str(expr.value))
    if isinstance(expr, ColumnRef):
        if expr.table:
            return f"{quote_identifier(expr.table)}.{quote_identifier(expr.column)}"
        return quote_identifier(expr.column)
    if isinstance(expr, Star):
        return f"{quote_identifier(expr.table)}.*" if expr.table else "*"
    if isinstance(expr, FuncCall):
        inner = ", ".join(render_expr(arg) for arg in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, BinaryOp):
        level = _PRECEDENCE.get(expr.op, _COMPARISON_LEVEL)
        left = render_expr(expr.left, level)
        # Right side binds one tighter to keep left-associative round trips.
        right = render_expr(expr.right, level + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if level < parent_level else text
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            inner = render_expr(expr.operand, 3)
            text = f"NOT {inner}"
            return f"({text})" if parent_level > 3 else text
        inner = render_expr(expr.operand, 7)
        return f"{expr.op}{inner}"
    if isinstance(expr, Between):
        head = render_expr(expr.expr, _COMPARISON_LEVEL + 1)
        low = render_expr(expr.low, _COMPARISON_LEVEL + 1)
        high = render_expr(expr.high, _COMPARISON_LEVEL + 1)
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        text = f"{head} {word} {low} AND {high}"
        return f"({text})" if parent_level > 3 else text
    if isinstance(expr, InList):
        head = render_expr(expr.expr, _COMPARISON_LEVEL + 1)
        word = "NOT IN" if expr.negated else "IN"
        if expr.subquery is not None:
            inner = render(expr.subquery)
        else:
            inner = ", ".join(render_expr(item) for item in expr.items)
        text = f"{head} {word} ({inner})"
        return f"({text})" if parent_level > _COMPARISON_LEVEL else text
    if isinstance(expr, IsNull):
        head = render_expr(expr.expr, _COMPARISON_LEVEL + 1)
        word = "IS NOT NULL" if expr.negated else "IS NULL"
        text = f"{head} {word}"
        return f"({text})" if parent_level > _COMPARISON_LEVEL else text
    if isinstance(expr, Like):
        head = render_expr(expr.expr, _COMPARISON_LEVEL + 1)
        pattern = render_expr(expr.pattern, _COMPARISON_LEVEL + 1)
        word = "NOT LIKE" if expr.negated else "LIKE"
        text = f"{head} {word} {pattern}"
        return f"({text})" if parent_level > _COMPARISON_LEVEL else text
    if isinstance(expr, Case):
        parts = ["CASE"]
        for cond, result in expr.whens:
            parts.append(f"WHEN {render_expr(cond)} THEN {render_expr(result)}")
        if expr.else_ is not None:
            parts.append(f"ELSE {render_expr(expr.else_)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, Cast):
        return f"CAST({render_expr(expr.expr)} AS {expr.type_name})"
    if isinstance(expr, Subquery):
        return f"({render(expr.select)})"
    if isinstance(expr, Exists):
        word = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{word} ({render(expr.select)})"
    raise TypeError(f"cannot render node of type {type(expr).__name__}")


def _render_number(value) -> str:
    if isinstance(value, float) and value.is_integer():
        # Keep floats that carry no fraction readable but still float-typed.
        return repr(value)
    return repr(value)
