"""AST node definitions for the supported SQL subset.

All nodes are frozen-ish dataclasses (mutable where pipeline rewrites need
in-place edits would be awkward, so rewrites build new nodes instead).
Equality is structural, which the self-consistency and alignment stages rely
on to compare candidate queries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

__all__ = [
    "Expr",
    "Literal",
    "ColumnRef",
    "Star",
    "FuncCall",
    "BinaryOp",
    "UnaryOp",
    "Between",
    "InList",
    "IsNull",
    "Like",
    "Case",
    "Cast",
    "Subquery",
    "Exists",
    "SelectItem",
    "TableRef",
    "Join",
    "OrderItem",
    "Select",
]


class Expr:
    """Base class for all expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        """Return the direct expression children of this node."""
        return ()


@dataclass(frozen=True)
class Literal(Expr):
    """A literal value.  ``kind`` is one of ``string``, ``number``, ``null``."""

    value: Optional[Union[str, int, float]]
    kind: str = "string"

    @staticmethod
    def string(value: str) -> "Literal":
        """A string literal."""
        return Literal(value, "string")

    @staticmethod
    def number(value: Union[int, float]) -> "Literal":
        """A numeric literal."""
        return Literal(value, "number")

    @staticmethod
    def null() -> "Literal":
        """The NULL literal."""
        return Literal(None, "null")


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to ``table.column`` (table part optional)."""

    column: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        """``table.column`` when qualified, else just the column name."""
        return f"{self.table}.{self.column}" if self.table else self.column

    def key(self) -> tuple[str, str]:
        """Case-insensitive comparison key."""
        return ((self.table or "").lower(), self.column.lower())


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``table.*`` in a select list or in ``COUNT(*)``."""

    table: Optional[str] = None


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call such as ``COUNT(DISTINCT x)`` or ``strftime(f, c)``."""

    name: str
    args: tuple[Expr, ...] = ()
    distinct: bool = False

    def children(self) -> tuple[Expr, ...]:
        return self.args

    @property
    def is_aggregate(self) -> bool:
        """True for COUNT/SUM/AVG/MIN/MAX-family calls."""
        return self.name.upper() in AGGREGATE_FUNCTIONS


#: Aggregate function names recognised by alignment rules.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX", "TOTAL", "GROUP_CONCAT"})


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A binary operation (comparison, arithmetic, AND/OR, ``||``)."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operation: ``NOT x`` or ``-x``."""

    op: str
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.expr, self.low, self.high)


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (items...)`` or ``expr [NOT] IN (subquery)``."""

    expr: Expr
    items: tuple[Expr, ...] = ()
    subquery: Optional["Select"] = None
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.expr, *self.items)


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class Like(Expr):
    """``expr [NOT] LIKE pattern``."""

    expr: Expr
    pattern: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.expr, self.pattern)


@dataclass(frozen=True)
class Case(Expr):
    """``CASE [WHEN cond THEN result]... [ELSE else_] END``."""

    whens: tuple[tuple[Expr, Expr], ...]
    else_: Optional[Expr] = None

    def children(self) -> tuple[Expr, ...]:
        out: list[Expr] = []
        for cond, result in self.whens:
            out.append(cond)
            out.append(result)
        if self.else_ is not None:
            out.append(self.else_)
        return tuple(out)


@dataclass(frozen=True)
class Cast(Expr):
    """``CAST(expr AS type)``."""

    expr: Expr
    type_name: str

    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class Subquery(Expr):
    """A scalar subquery used in an expression position."""

    select: "Select"


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (subquery)``."""

    select: "Select"
    negated: bool = False


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list, with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause, with an optional alias, or a derived
    table (``(SELECT ...) AS alias``) when ``subquery`` is set."""

    name: str = ""
    alias: Optional[str] = None
    subquery: Optional["Select"] = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by in column references."""
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    """A join clause: ``kind JOIN table ON condition``."""

    table: TableRef
    kind: str = "INNER"
    condition: Optional[Expr] = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY item."""

    expr: Expr
    desc: bool = False


@dataclass(frozen=True)
class Select:
    """A SELECT query.

    ``from_table`` may be None for table-less selects (``SELECT 1``);
    ``joins`` is the ordered list of join clauses applied to it.
    """

    items: tuple[SelectItem, ...]
    from_table: Optional[TableRef] = None
    joins: tuple[Join, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    def tables(self) -> tuple[TableRef, ...]:
        """All table references in FROM + JOIN order."""
        refs: list[TableRef] = []
        if self.from_table is not None:
            refs.append(self.from_table)
        refs.extend(join.table for join in self.joins)
        return tuple(refs)

    def with_(self, **changes) -> "Select":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
