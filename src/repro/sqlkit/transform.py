"""Generic AST traversal and rewriting utilities.

The alignment and refinement stages are AST-to-AST rewrites; this module
provides the walking/replacing machinery they share so each rule stays a
small pure function.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass, replace
from typing import Callable, Iterator, Optional, Union

from repro.sqlkit.ast import (
    ColumnRef,
    Expr,
    FuncCall,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    TableRef,
)

__all__ = [
    "walk",
    "walk_expressions",
    "replace_nodes",
    "collect_column_refs",
    "collect_literals",
    "collect_functions",
    "collect_tables",
    "map_expressions",
]

Node = Union[Expr, Select, SelectItem, TableRef, Join, OrderItem]


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every AST node reachable from it, depth first.

    Traversal descends into subqueries (expression subqueries, IN
    subqueries and derived tables).
    """
    yield node
    for child in _children(node):
        yield from walk(child)


def _children(node: Node) -> Iterator[Node]:
    if not is_dataclass(node):
        return
    for f in fields(node):
        value = getattr(node, f.name)
        yield from _nodes_in(value)


def _nodes_in(value) -> Iterator[Node]:
    if isinstance(value, (Expr, Select, SelectItem, TableRef, Join, OrderItem)):
        yield value
    elif isinstance(value, tuple):
        for item in value:
            yield from _nodes_in(item)


def walk_expressions(node: Node) -> Iterator[Expr]:
    """Yield every :class:`Expr` node reachable from ``node``."""
    for item in walk(node):
        if isinstance(item, Expr):
            yield item


def collect_column_refs(node: Node) -> list[ColumnRef]:
    """All column references in document order (including subqueries)."""
    return [n for n in walk(node) if isinstance(n, ColumnRef)]


def collect_literals(node: Node) -> list[Literal]:
    """All literals in document order."""
    return [n for n in walk(node) if isinstance(n, Literal)]


def collect_functions(node: Node) -> list[FuncCall]:
    """All function calls in document order."""
    return [n for n in walk(node) if isinstance(n, FuncCall)]


def collect_tables(node: Node) -> list[TableRef]:
    """All table references (FROM, JOIN and derived) in document order."""
    return [n for n in walk(node) if isinstance(n, TableRef)]


def replace_nodes(node: Node, mapping: Callable[[Node], Optional[Node]]) -> Node:
    """Rebuild ``node`` bottom-up, substituting nodes where ``mapping``
    returns a replacement.

    ``mapping`` is called on every node *after* its children have been
    rewritten; returning ``None`` keeps the (child-rewritten) node.
    """
    rebuilt = _rebuild(node, mapping)
    replacement = mapping(rebuilt)
    return replacement if replacement is not None else rebuilt


def _rebuild(node: Node, mapping: Callable[[Node], Optional[Node]]) -> Node:
    if not is_dataclass(node):
        return node
    changes = {}
    for f in fields(node):
        value = getattr(node, f.name)
        new_value = _rebuild_value(value, mapping)
        if new_value is not value:
            changes[f.name] = new_value
    return replace(node, **changes) if changes else node


def _rebuild_value(value, mapping):
    if isinstance(value, (Expr, Select, SelectItem, TableRef, Join, OrderItem)):
        return replace_nodes(value, mapping)
    if isinstance(value, tuple):
        rebuilt = tuple(_rebuild_value(item, mapping) for item in value)
        if any(a is not b for a, b in zip(rebuilt, value)):
            return rebuilt
        return value
    return value


def map_expressions(node: Node, fn: Callable[[Expr], Optional[Expr]]) -> Node:
    """Like :func:`replace_nodes` but ``fn`` is only consulted for
    expression nodes."""

    def mapper(n: Node) -> Optional[Node]:
        if isinstance(n, Expr):
            return fn(n)
        return None

    return replace_nodes(node, mapper)
