"""SQL substrate: tokenizer, AST, parser, renderer and the SQL-Like language.

``sqlkit`` implements the SQLite-dialect subset used throughout the
reproduction: SELECT queries with joins, aggregates, grouping, ordering,
scalar functions (including ``strftime``), CASE expressions and subqueries.
It is the foundation the extraction, generation, alignment and refinement
stages are built on.
"""

from repro.sqlkit.ast import (
    Between,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Subquery,
    TableRef,
    UnaryOp,
)
from repro.sqlkit.parser import ParseError, parse_expression, parse_select
from repro.sqlkit.render import render, render_expr
from repro.sqlkit.sql_like import (
    SQLLike,
    parse_sql_like,
    render_sql_like,
    select_to_sql_like,
)
from repro.sqlkit.tokenizer import Token, TokenizeError, TokenType, tokenize
from repro.sqlkit.transform import (
    collect_column_refs,
    collect_functions,
    collect_literals,
    collect_tables,
    replace_nodes,
    walk,
)

__all__ = [
    "Between",
    "BinaryOp",
    "Case",
    "Cast",
    "ColumnRef",
    "Expr",
    "FuncCall",
    "InList",
    "IsNull",
    "Join",
    "Like",
    "Literal",
    "OrderItem",
    "ParseError",
    "SQLLike",
    "Select",
    "SelectItem",
    "Star",
    "Subquery",
    "TableRef",
    "Token",
    "TokenType",
    "TokenizeError",
    "UnaryOp",
    "collect_column_refs",
    "collect_functions",
    "collect_literals",
    "collect_tables",
    "parse_expression",
    "parse_select",
    "parse_sql_like",
    "render_sql_like",
    "render",
    "render_expr",
    "replace_nodes",
    "select_to_sql_like",
    "tokenize",
    "walk",
]
