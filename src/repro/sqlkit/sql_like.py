"""The SQL-Like intermediate language (paper §3.5).

SQL-Like is the paper's intermediate representation: a SQL statement with
its FROM/JOIN machinery erased, so the model can commit to the *logic*
(what to select, filter, group, order) before the *syntax* (join paths,
aliases).  A SQL-Like statement looks like::

    Show COUNT(DISTINCT Patient.ID) WHERE Laboratory.IGA > 80
        AND Laboratory.IGA < 500 ORDER BY Patient.`First Date` DESC LIMIT 1

Every column is table-qualified, which is what makes the later join
reconstruction (``repro.schema.joins``) possible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.sqlkit.ast import (
    ColumnRef,
    Expr,
    OrderItem,
    Select,
    SelectItem,
    Star,
)
from repro.sqlkit.parser import ParseError, _Parser
from repro.sqlkit.render import render_expr
from repro.sqlkit.tokenizer import tokenize
from repro.sqlkit.transform import collect_column_refs, map_expressions

__all__ = ["SQLLike", "parse_sql_like", "render_sql_like", "select_to_sql_like"]


@dataclass(frozen=True)
class SQLLike:
    """A parsed SQL-Like statement: a ``Select`` without FROM/JOIN."""

    items: tuple[SelectItem, ...]
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    def tables(self) -> tuple[str, ...]:
        """Distinct table names referenced by qualified columns, in first
        appearance order."""
        seen: dict[str, None] = {}
        for part in (self.items, (self.where,), self.group_by, (self.having,), self.order_by):
            for node in part:
                if node is None:
                    continue
                for ref in collect_column_refs(node):
                    if ref.table and ref.table not in seen:
                        seen[ref.table] = None
        return tuple(seen)

    def with_(self, **changes) -> "SQLLike":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def parse_sql_like(text: str) -> SQLLike:
    """Parse SQL-Like text.  Accepts both ``Show ...`` and ``SELECT ...``
    leading keywords."""
    tokens = tokenize(text)
    parser = _Parser(tokens)
    head = parser.current
    if head.is_keyword("SHOW") or head.is_keyword("SELECT"):
        parser._advance()
    else:
        raise ParseError("SQL-Like must start with Show or SELECT", head)

    distinct = False
    if parser.current.is_keyword("DISTINCT"):
        parser._advance()
        distinct = True

    items = [parser.select_item()]
    while parser._match_punct(","):
        items.append(parser.select_item())

    where = parser.expression() if parser._match_keyword("WHERE") else None

    group_by: list[Expr] = []
    if parser._match_keyword("GROUP"):
        parser._expect_keyword("BY")
        group_by.append(parser.expression())
        while parser._match_punct(","):
            group_by.append(parser.expression())

    having = parser.expression() if parser._match_keyword("HAVING") else None

    order_by: list[OrderItem] = []
    if parser._match_keyword("ORDER"):
        parser._expect_keyword("BY")
        order_by.append(parser.order_item())
        while parser._match_punct(","):
            order_by.append(parser.order_item())

    limit: Optional[int] = None
    offset: Optional[int] = None
    if parser._match_keyword("LIMIT"):
        limit = parser._int_literal()
        if parser._match_keyword("OFFSET"):
            offset = parser._int_literal()

    parser.expect_end()
    return SQLLike(
        items=tuple(items),
        where=where,
        group_by=tuple(group_by),
        having=having,
        order_by=tuple(order_by),
        limit=limit,
        offset=offset,
        distinct=distinct,
    )


def render_sql_like(sql_like: SQLLike) -> str:
    """Render a :class:`SQLLike` back to its textual ``Show ...`` form."""
    parts = ["Show"]
    if sql_like.distinct:
        parts.append("DISTINCT")
    rendered_items = []
    for item in sql_like.items:
        text = render_expr(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        rendered_items.append(text)
    parts.append(", ".join(rendered_items))
    if sql_like.where is not None:
        parts.append("WHERE " + render_expr(sql_like.where))
    if sql_like.group_by:
        parts.append("GROUP BY " + ", ".join(render_expr(e) for e in sql_like.group_by))
    if sql_like.having is not None:
        parts.append("HAVING " + render_expr(sql_like.having))
    if sql_like.order_by:
        rendered = ", ".join(
            render_expr(o.expr) + (" DESC" if o.desc else "") for o in sql_like.order_by
        )
        parts.append("ORDER BY " + rendered)
    if sql_like.limit is not None:
        parts.append(f"LIMIT {sql_like.limit}")
        if sql_like.offset is not None:
            parts.append(f"OFFSET {sql_like.offset}")
    return " ".join(parts)


def select_to_sql_like(select: Select) -> SQLLike:
    """Project a full ``Select`` down to its SQL-Like skeleton.

    Aliases introduced in the FROM clause are resolved back to real table
    names so that the SQL-Like form is self-describing.
    """
    alias_map: dict[str, str] = {}
    for table in select.tables():
        if table.alias and table.name:
            alias_map[table.alias.lower()] = table.name

    def unalias(expr: Expr) -> Optional[Expr]:
        if isinstance(expr, ColumnRef) and expr.table:
            real = alias_map.get(expr.table.lower())
            if real is not None:
                return ColumnRef(column=expr.column, table=real)
        if isinstance(expr, Star) and expr.table:
            real = alias_map.get(expr.table.lower())
            if real is not None:
                return Star(table=real)
        return None

    def convert_expr(expr: Optional[Expr]) -> Optional[Expr]:
        if expr is None:
            return None
        return map_expressions(expr, unalias)  # type: ignore[return-value]

    items = tuple(
        SelectItem(expr=convert_expr(item.expr), alias=item.alias) for item in select.items
    )
    return SQLLike(
        items=items,
        where=convert_expr(select.where),
        group_by=tuple(convert_expr(e) for e in select.group_by),
        having=convert_expr(select.having),
        order_by=tuple(
            OrderItem(expr=convert_expr(o.expr), desc=o.desc) for o in select.order_by
        ),
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )
