"""Vector index interface and the exact (flat) implementation.

The pipeline's value/column retrieval is expressed against the
:class:`VectorIndex` protocol so the exact index (used in tests, where
recall must be perfect) and the HNSW index (used in benchmarks, matching
the paper's §4.6 latency discussion) are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = ["SearchHit", "VectorIndex", "FlatIndex"]


@dataclass(frozen=True)
class SearchHit:
    """One retrieval result: the stored payload and its cosine score."""

    key: str
    payload: object
    score: float


@runtime_checkable
class VectorIndex(Protocol):
    """Minimal vector-index protocol: add unit vectors, search by cosine."""

    def add(self, key: str, vector: np.ndarray, payload: object = None) -> None:
        ...

    def search(self, query: np.ndarray, k: int = 10) -> list[SearchHit]:
        ...

    def remove(self, key: str) -> int:
        ...

    def __len__(self) -> int:
        ...


class FlatIndex:
    """Exact nearest-neighbour search by brute-force cosine scan.

    Vectors are L2-normalized on insert so search is a single mat-vec.
    """

    def __init__(self, dimensions: int):
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self._keys: list[str] = []
        self._payloads: list[object] = []
        self._rows: list[np.ndarray] = []
        self._matrix: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: str, vector: np.ndarray, payload: object = None) -> None:
        """Add one vector.  Zero vectors are stored but never match."""
        if vector.shape != (self.dimensions,):
            raise ValueError(
                f"expected vector of shape ({self.dimensions},), got {vector.shape}"
            )
        norm = float(np.linalg.norm(vector))
        unit = vector / norm if norm > 0 else vector
        self._keys.append(key)
        self._payloads.append(payload)
        self._rows.append(unit.astype(np.float32))
        self._matrix = None  # invalidate cache

    def remove(self, key: str) -> int:
        """Drop every vector stored under ``key``; returns the number
        removed.  Incremental reindexing (live-mutation path) deletes a
        stale entry before re-adding its re-embedded replacement."""
        victims = [i for i, stored in enumerate(self._keys) if stored == key]
        for i in reversed(victims):
            del self._keys[i]
            del self._payloads[i]
            del self._rows[i]
        if victims:
            self._matrix = None  # invalidate cache
        return len(victims)

    def search(self, query: np.ndarray, k: int = 10) -> list[SearchHit]:
        """Return the top-``k`` hits by cosine similarity, best first."""
        if not self._keys or k <= 0:
            return []
        if self._matrix is None:
            self._matrix = np.stack(self._rows)
        norm = float(np.linalg.norm(query))
        unit = query / norm if norm > 0 else query
        scores = self._matrix @ unit.astype(np.float32)
        k = min(k, len(scores))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top], kind="stable")]
        return [
            SearchHit(key=self._keys[i], payload=self._payloads[i], score=float(scores[i]))
            for i in top
        ]
