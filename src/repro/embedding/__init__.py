"""Embedding substrate: a character-n-gram hashing vectorizer (offline
substitute for bge-large-en-v1.5) plus exact and HNSW vector indexes."""

from repro.embedding.vectorizer import HashingVectorizer, cosine_similarity
from repro.embedding.index import FlatIndex, SearchHit, VectorIndex
from repro.embedding.hnsw import HNSWIndex

__all__ = [
    "FlatIndex",
    "HNSWIndex",
    "HashingVectorizer",
    "SearchHit",
    "VectorIndex",
    "cosine_similarity",
]
