"""Hierarchical Navigable Small World index (Malkov & Yashunin, 2018).

The paper (§4.6) notes that HNSW makes retrieval latency negligible
relative to LLM calls; we implement it from scratch so the benchmark's
retrieval-latency claims run against a real ANN structure rather than a
brute-force scan.

Distances are cosine (vectors are normalized on insert, so similarity is a
dot product).  Level assignment uses a seeded RNG for reproducibility.
"""

from __future__ import annotations

import heapq
import math
from typing import Optional

import numpy as np

from repro.embedding.index import SearchHit

__all__ = ["HNSWIndex"]


class HNSWIndex:
    """An HNSW approximate-nearest-neighbour index over cosine similarity.

    Parameters mirror the original paper: ``m`` neighbours per node per
    layer (``2m`` on layer 0), ``ef_construction`` candidates during
    insertion, ``ef_search`` during queries.
    """

    def __init__(
        self,
        dimensions: int,
        m: int = 12,
        ef_construction: int = 80,
        ef_search: int = 48,
        seed: int = 0,
    ):
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        if m < 2:
            raise ValueError("m must be at least 2")
        self.dimensions = dimensions
        self.m = m
        self.max_m0 = 2 * m
        self.ef_construction = max(ef_construction, m)
        self.ef_search = ef_search
        self._level_mult = 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)

        self._keys: list[str] = []
        self._payloads: list[object] = []
        self._vectors: list[np.ndarray] = []
        # _links[node][level] -> list of neighbour node ids
        self._links: list[list[list[int]]] = []
        self._entry_point: Optional[int] = None
        self._max_level = -1
        # Tombstoned node ids: removed entries stay in the graph (their
        # links keep the small world navigable) but are filtered from
        # results.  Incremental reindexing removes and re-adds keys.
        self._deleted: set[int] = set()

    def __len__(self) -> int:
        return len(self._keys) - len(self._deleted)

    # ----------------------------------------------------------- helpers

    def _similarity(self, a: int, query: np.ndarray) -> float:
        return float(np.dot(self._vectors[a], query))

    def _random_level(self) -> int:
        uniform = float(self._rng.random())
        # Guard against log(0).
        uniform = max(uniform, 1e-12)
        return int(-math.log(uniform) * self._level_mult)

    def _search_layer(
        self, query: np.ndarray, entry: int, ef: int, level: int
    ) -> list[tuple[float, int]]:
        """Best-first search on one layer; returns (similarity, node) pairs,
        unsorted, at most ``ef`` of them."""
        visited = {entry}
        entry_sim = self._similarity(entry, query)
        # candidates: max-heap by similarity (store negative for heapq)
        candidates = [(-entry_sim, entry)]
        # results: min-heap by similarity so the worst is on top
        results = [(entry_sim, entry)]
        while candidates:
            neg_sim, node = heapq.heappop(candidates)
            if -neg_sim < results[0][0] and len(results) >= ef:
                break
            for neighbor in self._links[node][level]:
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                sim = self._similarity(neighbor, query)
                if len(results) < ef or sim > results[0][0]:
                    heapq.heappush(candidates, (-sim, neighbor))
                    heapq.heappush(results, (sim, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
        return results

    def _select_neighbors(
        self, candidates: list[tuple[float, int]], count: int
    ) -> list[int]:
        """Simple top-``count`` by similarity (the paper's base heuristic)."""
        ordered = sorted(candidates, key=lambda pair: -pair[0])
        return [node for _sim, node in ordered[:count]]

    # --------------------------------------------------------------- API

    def add(self, key: str, vector: np.ndarray, payload: object = None) -> None:
        """Insert one vector under ``key``."""
        if vector.shape != (self.dimensions,):
            raise ValueError(
                f"expected vector of shape ({self.dimensions},), got {vector.shape}"
            )
        norm = float(np.linalg.norm(vector))
        unit = (vector / norm if norm > 0 else vector).astype(np.float32)

        node = len(self._keys)
        level = self._random_level()
        self._keys.append(key)
        self._payloads.append(payload)
        self._vectors.append(unit)
        self._links.append([[] for _ in range(level + 1)])

        if self._entry_point is None:
            self._entry_point = node
            self._max_level = level
            return

        entry = self._entry_point
        # Greedy descent through layers above the new node's level.
        for search_level in range(self._max_level, level, -1):
            improved = True
            while improved:
                improved = False
                best_sim = self._similarity(entry, unit)
                for neighbor in self._links[entry][search_level]:
                    sim = self._similarity(neighbor, unit)
                    if sim > best_sim:
                        best_sim = sim
                        entry = neighbor
                        improved = True

        # Insert with full candidate search on each level at or below.
        for search_level in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(unit, entry, self.ef_construction, search_level)
            max_links = self.max_m0 if search_level == 0 else self.m
            neighbors = self._select_neighbors(candidates, max_links)
            self._links[node][search_level] = list(neighbors)
            for neighbor in neighbors:
                links = self._links[neighbor][search_level]
                links.append(node)
                if len(links) > max_links:
                    # Re-prune neighbour's links by similarity to it.
                    scored = [
                        (float(np.dot(self._vectors[other], self._vectors[neighbor])), other)
                        for other in links
                    ]
                    self._links[neighbor][search_level] = self._select_neighbors(
                        scored, max_links
                    )
            if candidates:
                entry = max(candidates, key=lambda pair: pair[0])[1]

        if level > self._max_level:
            self._max_level = level
            self._entry_point = node

    def remove(self, key: str) -> int:
        """Tombstone every node stored under ``key``; returns the number
        removed.  The nodes stay in the graph as routing waypoints (so
        neighbour lists never dangle) but no longer appear in results;
        ``__len__`` counts live entries only."""
        victims = [
            node
            for node, stored in enumerate(self._keys)
            if stored == key and node not in self._deleted
        ]
        self._deleted.update(victims)
        return len(victims)

    def search(self, query: np.ndarray, k: int = 10) -> list[SearchHit]:
        """Return approximately the top-``k`` hits by cosine similarity."""
        if self._entry_point is None or k <= 0:
            return []
        norm = float(np.linalg.norm(query))
        unit = (query / norm if norm > 0 else query).astype(np.float32)

        entry = self._entry_point
        for level in range(self._max_level, 0, -1):
            improved = True
            while improved:
                improved = False
                best_sim = self._similarity(entry, unit)
                for neighbor in self._links[entry][level]:
                    sim = self._similarity(neighbor, unit)
                    if sim > best_sim:
                        best_sim = sim
                        entry = neighbor
                        improved = True

        # Tombstones are traversed but not returned; widen ef so k live
        # results can still surface past the dead ones.
        ef = max(self.ef_search, k) + len(self._deleted)
        results = self._search_layer(unit, entry, ef, 0)
        ordered = sorted(
            (pair for pair in results if pair[1] not in self._deleted),
            key=lambda pair: -pair[0],
        )[:k]
        return [
            SearchHit(key=self._keys[node], payload=self._payloads[node], score=sim)
            for sim, node in ordered
        ]
