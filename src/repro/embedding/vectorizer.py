"""Character-n-gram hashing embedder.

Offline stand-in for the paper's bge-large-en-v1.5 retrieval model.  Two
properties matter for the pipeline and both hold by construction:

* surface robustness — case folding plus overlapping character n-grams make
  ``'USA'`` / ``'usa'`` / ``'U.S.A'`` and typo'd variants land close in
  cosine space, which is exactly why the paper retrieves values by
  embedding instead of exact match;
* determinism — the hash is a fixed FNV-1a, so retrieval results (and the
  benchmark tables built on them) are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HashingVectorizer", "cosine_similarity"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def _fnv1a(data: bytes) -> int:
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK
    return value


def _normalize_text(text: str) -> str:
    # Case-fold and collapse punctuation to single spaces so that storage
    # format differences ('First Date' vs 'first_date') share n-grams.
    out = []
    prev_space = True
    for ch in text.lower():
        if ch.isalnum():
            out.append(ch)
            prev_space = False
        elif not prev_space:
            out.append(" ")
            prev_space = True
    return "".join(out).strip()


class HashingVectorizer:
    """Embed strings as L2-normalized hashed bags of character n-grams.

    ``ngram_range`` n-grams are extracted from the padded, normalized text;
    word-level unigrams are added so multi-word phrases also match on whole
    words.  Dimensions default to 512, ample for the vocabulary sizes in
    play and small enough to keep indexes cheap.
    """

    def __init__(self, dimensions: int = 512, ngram_range: tuple[int, int] = (2, 4)):
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        lo, hi = ngram_range
        if lo <= 0 or hi < lo:
            raise ValueError("invalid ngram_range")
        self.dimensions = dimensions
        self.ngram_range = ngram_range

    def embed(self, text: str) -> np.ndarray:
        """Embed one string into a unit-length float32 vector."""
        vector = np.zeros(self.dimensions, dtype=np.float32)
        normalized = _normalize_text(text)
        if not normalized:
            return vector
        padded = f" {normalized} "
        lo, hi = self.ngram_range
        for n in range(lo, hi + 1):
            if len(padded) < n:
                continue
            for i in range(len(padded) - n + 1):
                gram = padded[i : i + n]
                h = _fnv1a(gram.encode("utf-8"))
                index = h % self.dimensions
                sign = 1.0 if (h >> 32) & 1 else -1.0
                vector[index] += sign
        for word in normalized.split():
            h = _fnv1a(("w:" + word).encode("utf-8"))
            index = h % self.dimensions
            sign = 1.0 if (h >> 32) & 1 else -1.0
            vector[index] += 2.0 * sign  # whole words weigh more than grams
        norm = float(np.linalg.norm(vector))
        if norm > 0:
            vector /= norm
        return vector

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed many strings; returns an (n, dimensions) float32 matrix."""
        if not texts:
            return np.zeros((0, self.dimensions), dtype=np.float32)
        return np.stack([self.embed(text) for text in texts])


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is all-zero)."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))
