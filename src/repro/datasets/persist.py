"""Benchmark persistence: save a built benchmark to a directory and load
it back.

Layout (mirrors how BIRD distributes its data)::

    <root>/
      manifest.json                 # name + db ids
      databases/<db_id>.sqlite      # one SQLite file per database
      databases/<db_id>.schema.json # descriptions (lost by raw SQLite DDL)
      train.jsonl dev.jsonl test.jsonl

Loading re-opens the SQLite files (read into fresh in-memory connections so
a loaded benchmark is safe to use concurrently) and re-attaches the schema
descriptions.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import asdict, replace
from pathlib import Path
from typing import Union

from repro.datasets.build import Benchmark, BuiltDatabase
from repro.datasets.types import Example, ValueMention
from repro.schema.introspect import introspect_sqlite
from repro.schema.model import Database

__all__ = ["save_benchmark", "load_benchmark"]


def _example_to_dict(example: Example) -> dict:
    payload = asdict(example)
    payload["value_mentions"] = [asdict(m) for m in example.value_mentions]
    payload["traits"] = list(example.traits)
    return payload


def _example_from_dict(payload: dict) -> Example:
    mentions = tuple(
        ValueMention(**mention) for mention in payload.pop("value_mentions", [])
    )
    traits = tuple(payload.pop("traits", []))
    return Example(value_mentions=mentions, traits=traits, **payload)


def _schema_metadata(schema: Database) -> dict:
    return {
        "name": schema.name,
        "description": schema.description,
        "tables": {
            table.name: {
                "description": table.description,
                "columns": {
                    column.name: {
                        "description": column.description,
                        "value_examples": list(column.value_examples),
                    }
                    for column in table.columns
                },
            }
            for table in schema.tables
        },
    }


def _apply_schema_metadata(schema: Database, metadata: dict) -> Database:
    tables = []
    for table in schema.tables:
        info = metadata.get("tables", {}).get(table.name, {})
        columns = []
        for column in table.columns:
            column_info = info.get("columns", {}).get(column.name, {})
            columns.append(
                replace(
                    column,
                    description=column_info.get("description", ""),
                    value_examples=tuple(column_info.get("value_examples", ())),
                )
            )
        tables.append(
            replace(table, description=info.get("description", ""), columns=tuple(columns))
        )
    return replace(
        schema,
        tables=tuple(tables),
        description=metadata.get("description", ""),
        name=metadata.get("name", schema.name),
    )


def save_benchmark(benchmark: Benchmark, root: Union[str, Path]) -> Path:
    """Write ``benchmark`` under ``root``; returns the root path."""
    root = Path(root)
    (root / "databases").mkdir(parents=True, exist_ok=True)

    manifest = {"name": benchmark.name, "databases": sorted(benchmark.databases)}
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2))

    for db_id, built in benchmark.databases.items():
        target = root / "databases" / f"{db_id}.sqlite"
        if target.exists():
            target.unlink()
        disk = sqlite3.connect(target)
        built.connection.backup(disk)
        disk.close()
        (root / "databases" / f"{db_id}.schema.json").write_text(
            json.dumps(_schema_metadata(built.schema), indent=2)
        )

    for split in ("train", "dev", "test"):
        with (root / f"{split}.jsonl").open("w", encoding="utf-8") as handle:
            for example in benchmark.split(split):
                handle.write(json.dumps(_example_to_dict(example)) + "\n")
    return root


def load_benchmark(root: Union[str, Path]) -> Benchmark:
    """Load a benchmark previously written by :func:`save_benchmark`.

    Database contents are copied into in-memory connections, so the loaded
    benchmark behaves exactly like a freshly built one.
    """
    root = Path(root)
    manifest = json.loads((root / "manifest.json").read_text())
    databases: dict[str, BuiltDatabase] = {}
    for db_id in manifest["databases"]:
        disk = sqlite3.connect(root / "databases" / f"{db_id}.sqlite")
        # Same cross-thread policy as build_database: executors lock.
        memory = sqlite3.connect(":memory:", check_same_thread=False)
        disk.backup(memory)
        disk.close()
        metadata = json.loads(
            (root / "databases" / f"{db_id}.schema.json").read_text()
        )
        schema = introspect_sqlite(memory, name=db_id, value_examples=0)
        schema = _apply_schema_metadata(schema, metadata)
        databases[db_id] = BuiltDatabase(schema=schema, connection=memory)

    benchmark = Benchmark(name=manifest["name"], databases=databases)
    for split in ("train", "dev", "test"):
        path = root / f"{split}.jsonl"
        if not path.exists():
            continue
        with path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    benchmark.split(split).append(_example_from_dict(json.loads(line)))
    return benchmark
