"""The BIRD-like benchmark: 10 domains with big-ish dirty-value databases.

``build_bird_like`` assembles the full suite; ``mini_dev`` mirrors the
MINI-DEV subset BIRD publishes for cheap ablations (the paper runs its
Table 4/5/7 ablations there).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.build import Benchmark, build_benchmark
from repro.datasets.domains.blockchain import DOMAIN as BLOCKCHAIN
from repro.datasets.domains.education import DOMAIN as EDUCATION
from repro.datasets.domains.energy import DOMAIN as ENERGY
from repro.datasets.domains.finance import DOMAIN as FINANCE
from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
from repro.datasets.domains.hockey import DOMAIN as HOCKEY
from repro.datasets.domains.library import DOMAIN as LIBRARY
from repro.datasets.domains.music import DOMAIN as MUSIC
from repro.datasets.domains.realestate import DOMAIN as REALESTATE
from repro.datasets.domains.retail import DOMAIN as RETAIL
from repro.datasets.types import Example

__all__ = ["BIRD_DOMAINS", "build_bird_like", "mini_dev"]

BIRD_DOMAINS = [
    HEALTHCARE,
    EDUCATION,
    FINANCE,
    HOCKEY,
    RETAIL,
    MUSIC,
    LIBRARY,
    BLOCKCHAIN,
    ENERGY,
    REALESTATE,
]


def build_bird_like(
    seed: int = 7,
    per_template_train: int = 4,
    per_template_dev: int = 3,
    per_template_test: int = 3,
) -> Benchmark:
    """Build the BIRD-like suite (10 domains, dirty values, evidence)."""
    return build_benchmark(
        name="bird-like",
        domains=BIRD_DOMAINS,
        per_template_train=per_template_train,
        per_template_dev=per_template_dev,
        per_template_test=per_template_test,
        seed=seed,
    )


def mini_dev(benchmark: Benchmark, size: int = 120, seed: int = 11) -> list[Example]:
    """A difficulty-stratified subsample of the dev split (BIRD MINI-DEV).

    Sampling preserves the dev split's difficulty mix so ablation deltas on
    the mini set track the full set.
    """
    rng = np.random.default_rng(seed)
    by_difficulty: dict[str, list[Example]] = {}
    for example in benchmark.dev:
        by_difficulty.setdefault(example.difficulty, []).append(example)
    total = len(benchmark.dev)
    if size >= total:
        return list(benchmark.dev)
    chosen: list[Example] = []
    for difficulty, bucket in sorted(by_difficulty.items()):
        quota = max(1, round(size * len(bucket) / total))
        indexes = rng.permutation(len(bucket))[:quota]
        chosen.extend(bucket[i] for i in sorted(indexes))
    return chosen[:size] if len(chosen) > size else chosen
