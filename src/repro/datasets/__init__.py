"""Synthetic benchmark datasets.

Offline substitutes for BIRD and Spider: multi-domain SQLite databases with
seeded synthetic data, plus question templates that produce (NLQ, evidence,
gold SQL, difficulty) tuples carrying BIRD's characteristic pitfalls
(dirty values, same-name columns, nullable sort keys, date-format tricks).
"""

from repro.datasets.types import DIFFICULTIES, Example, ValueMention
from repro.datasets.build import (
    Benchmark,
    BuiltDatabase,
    DomainSpec,
    QuestionDraft,
    TemplateSpec,
    build_benchmark,
)
from repro.datasets.bird import build_bird_like, mini_dev
from repro.datasets.persist import load_benchmark, save_benchmark
from repro.datasets.spider import build_spider_like

__all__ = [
    "Benchmark",
    "BuiltDatabase",
    "DIFFICULTIES",
    "DomainSpec",
    "Example",
    "QuestionDraft",
    "TemplateSpec",
    "ValueMention",
    "build_benchmark",
    "build_bird_like",
    "build_spider_like",
    "load_benchmark",
    "mini_dev",
    "save_benchmark",
]
