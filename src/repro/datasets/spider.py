"""The Spider-like benchmark: many small clean databases.

Spider's profile (richer database variety, lower average SQL difficulty,
clean values) is what lets every method score higher than on BIRD and
compresses the gaps between methods — the qualitative claim of Table 3.
"""

from __future__ import annotations

from repro.datasets.build import Benchmark, build_benchmark
from repro.datasets.domains.spider_domains import SPIDER_DOMAINS

__all__ = ["build_spider_like"]


def build_spider_like(
    seed: int = 13,
    per_template_train: int = 4,
    per_template_dev: int = 3,
    per_template_test: int = 3,
) -> Benchmark:
    """Build the Spider-like suite (6 small clean domains)."""
    return build_benchmark(
        name="spider-like",
        domains=SPIDER_DOMAINS,
        per_template_train=per_template_train,
        per_template_dev=per_template_dev,
        per_template_test=per_template_test,
        seed=seed,
    )
