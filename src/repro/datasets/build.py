"""Benchmark assembly machinery.

A domain contributes a :class:`DomainSpec` (schema, row population, question
templates); :func:`build_benchmark` builds the SQLite database, draws
questions from each template, validates every gold SQL (it must parse in
our dialect AND execute to a non-empty result), and splits examples into
train/dev/test with disjoint parameterizations.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.datasets.types import Example, ValueMention
from repro.execution.executor import ExecutionStatus, SQLExecutor
from repro.schema.model import Database
from repro.schema.serialize import schema_to_ddl
from repro.sqlkit.parser import ParseError, parse_select
from repro.sqlkit.tokenizer import TokenizeError

__all__ = [
    "DomainContext",
    "QuestionDraft",
    "TemplateSpec",
    "DomainSpec",
    "BuiltDatabase",
    "Benchmark",
    "build_benchmark",
    "surface_variant",
]


@dataclass
class DomainContext:
    """What a question template can see: the schema and the actual rows."""

    schema: Database
    rows: dict[str, list[tuple]]
    executor: SQLExecutor

    def column_index(self, table: str, column: str) -> int:
        """Position of ``column`` within its table's row tuples."""
        names = [c.name.lower() for c in self.schema.table(table).columns]
        return names.index(column.lower())

    def column_values(self, table: str, column: str) -> list:
        """Distinct non-null values of a column, in first-seen order."""
        index = self.column_index(table, column)
        seen: dict = {}
        for row in self.rows[table]:
            value = row[index]
            if value is not None and value not in seen:
                seen[value] = None
        return list(seen)

    def sample_value(self, table: str, column: str, rng: np.random.Generator):
        """Uniformly sample one distinct non-null value of a column."""
        values = self.column_values(table, column)
        if not values:
            raise ValueError(f"no values to sample in {table}.{column}")
        return values[int(rng.integers(len(values)))]


@dataclass(frozen=True)
class QuestionDraft:
    """One concrete question produced by a template."""

    question: str
    sql: str
    evidence: str = ""
    mentions: tuple[ValueMention, ...] = ()


@dataclass(frozen=True)
class TemplateSpec:
    """A question family: difficulty, traits, and a draft maker.

    ``maker(ctx, rng)`` returns a :class:`QuestionDraft` with freshly drawn
    parameters, or ``None`` when it could not produce one this draw.
    """

    template_id: str
    difficulty: str
    maker: Callable[[DomainContext, np.random.Generator], Optional[QuestionDraft]]
    traits: tuple[str, ...] = ()


@dataclass(frozen=True)
class DomainSpec:
    """One synthetic domain: schema, data population and templates."""

    name: str
    schema: Database
    populate: Callable[[np.random.Generator], dict[str, list[tuple]]]
    templates: tuple[TemplateSpec, ...]
    description: str = ""


@dataclass
class BuiltDatabase:
    """A constructed SQLite database plus its schema model.

    ``rebuild`` recreates an identical connection from the materialized
    DDL + rows; executors wire it as their ``reconnect`` recipe so a
    dropped connection (real or chaos-injected) is recoverable.
    """

    schema: Database
    connection: sqlite3.Connection
    rebuild: Optional[Callable[[], sqlite3.Connection]] = None

    def executor(self, timeout_seconds: float = 5.0) -> SQLExecutor:
        """A fresh executor over this database's connection."""
        return SQLExecutor(
            self.connection,
            timeout_seconds=timeout_seconds,
            reconnect=self.rebuild,
        )


@dataclass
class Benchmark:
    """A full benchmark: databases and split example lists."""

    name: str
    databases: dict[str, BuiltDatabase]
    train: list[Example] = field(default_factory=list)
    dev: list[Example] = field(default_factory=list)
    test: list[Example] = field(default_factory=list)

    def database(self, db_id: str) -> BuiltDatabase:
        """Look up a built database by id (KeyError when absent)."""
        return self.databases[db_id]

    def split(self, name: str) -> list[Example]:
        """The example list for ``train``/``dev``/``test``."""
        if name not in ("train", "dev", "test"):
            raise ValueError(f"unknown split {name!r}")
        return getattr(self, name)

    @property
    def statistics(self) -> dict:
        """Dataset statistics for the Table 1 bench."""
        return {
            "name": self.name,
            "train": len(self.train),
            "dev": len(self.dev),
            "test": len(self.test),
            "databases": len(self.databases),
            "tables": sum(len(b.schema.tables) for b in self.databases.values()),
            "columns": sum(b.schema.column_count() for b in self.databases.values()),
        }


def _enrich_schema(schema: Database, rows: dict[str, list[tuple]]) -> Database:
    """Fill each text column's ``value_examples`` from the actual data —
    the prompt-facing schema should show real stored values, exactly like
    BIRD's description files (and the simulated model's value-confusion
    channel draws its plausible-but-wrong values from them)."""
    from dataclasses import replace as _replace

    new_tables = []
    for table in schema.tables:
        data = rows.get(table.name, [])
        new_columns = []
        for index, column in enumerate(table.columns):
            if column.is_text and not column.is_primary:
                seen: dict[str, None] = {}
                for row in data:
                    value = row[index]
                    if value is not None and str(value) not in seen:
                        seen[str(value)] = None
                    if len(seen) >= 4:
                        break
                new_columns.append(_replace(column, value_examples=tuple(seen)))
            else:
                new_columns.append(column)
        new_tables.append(_replace(table, columns=tuple(new_columns)))
    return _replace(schema, tables=tuple(new_tables))


def build_database(spec: DomainSpec, rng: np.random.Generator) -> tuple[BuiltDatabase, DomainContext]:
    """Create and populate an in-memory SQLite database for ``spec``."""
    # check_same_thread=False: serving workers execute on the building
    # thread's connection; SQLExecutor serializes access with a per-
    # connection lock, which is the supported pattern for sqlite3.
    ddl = schema_to_ddl(spec.schema)
    rows = spec.populate(rng)

    def _open() -> sqlite3.Connection:
        conn = sqlite3.connect(":memory:", check_same_thread=False)
        conn.executescript(ddl)
        for table in spec.schema.tables:
            data = rows.get(table.name, [])
            if not data:
                continue
            width = len(table.columns)
            for row in data:
                if len(row) != width:
                    raise ValueError(
                        f"row width {len(row)} != {width} columns "
                        f"in {spec.name}.{table.name}"
                    )
            placeholders = ", ".join("?" * width)
            conn.executemany(
                f'INSERT INTO "{table.name}" VALUES ({placeholders})', data
            )
        conn.commit()
        return conn

    connection = _open()
    schema = _enrich_schema(spec.schema, rows)
    built = BuiltDatabase(schema=schema, connection=connection)

    def _rebuild() -> sqlite3.Connection:
        # Recreate identical content and republish it so later executors
        # over this BuiltDatabase see the live connection.
        built.connection = _open()
        return built.connection

    built.rebuild = _rebuild
    context = DomainContext(schema=schema, rows=rows, executor=built.executor())
    return built, context


def _validate(draft: QuestionDraft, context: DomainContext) -> bool:
    """A draft is usable when its SQL parses in our dialect, executes to a
    non-empty result, and its filters are *discriminative* — removing the
    WHERE filters must change the result, otherwise the question is
    degenerate (any SQL that ignores the filter would score correct)."""
    try:
        select = parse_select(draft.sql)
    except (ParseError, TokenizeError):
        raise ValueError(f"template produced unparseable gold SQL: {draft.sql}")
    outcome = context.executor.execute(draft.sql)
    if outcome.status is not ExecutionStatus.OK:
        return False
    if select.where is not None:
        from repro.sqlkit.ast import IsNull
        from repro.sqlkit.render import render
        from repro.llm.noise import _drop_conjunct, _where_conjuncts

        where = select.where
        for conjunct in _where_conjuncts(select.where):
            if not isinstance(conjunct, IsNull):
                where = _drop_conjunct(where, conjunct)
        if where != select.where:
            unfiltered = context.executor.execute(render(select.with_(where=where)))
            if unfiltered.rows == outcome.rows:
                return False
    return True


def build_benchmark(
    name: str,
    domains: list[DomainSpec],
    per_template_train: int = 3,
    per_template_dev: int = 2,
    per_template_test: int = 2,
    seed: int = 7,
    max_attempts: int = 40,
) -> Benchmark:
    """Build all domain databases and draw examples from every template.

    Parameter draws are disjoint across splits (each accepted draft's
    question text is deduplicated), mirroring how BIRD's train and dev sets
    share question *styles* but not literal questions.
    """
    benchmark = Benchmark(name=name, databases={})
    rng = np.random.default_rng(seed)
    want = (
        ("train", per_template_train),
        ("dev", per_template_dev),
        ("test", per_template_test),
    )
    for spec in domains:
        built, context = build_database(spec, rng)
        benchmark.databases[spec.name] = built
        for template in spec.templates:
            seen_questions: set[str] = set()
            counter = 0
            for split, quota in want:
                produced = 0
                attempts = 0
                while produced < quota and attempts < max_attempts * quota:
                    attempts += 1
                    draft = template.maker(context, rng)
                    if draft is None:
                        continue
                    dedup_key = f"{draft.question}\x00{draft.evidence}"
                    if dedup_key in seen_questions:
                        continue
                    if not _validate(draft, context):
                        continue
                    seen_questions.add(dedup_key)
                    counter += 1
                    example = Example(
                        question_id=f"{spec.name}:{template.template_id}:{counter}",
                        db_id=spec.name,
                        question=draft.question,
                        gold_sql=draft.sql,
                        evidence=draft.evidence,
                        difficulty=template.difficulty,
                        traits=template.traits,
                        value_mentions=draft.mentions,
                        template_id=f"{spec.name}:{template.template_id}",
                        split=split,
                    )
                    benchmark.split(split).append(example)
                    produced += 1
    return benchmark


# --------------------------------------------------------------- dirtiness


def surface_variant(
    stored: str, rng: np.random.Generator, dirty_prob: float = 0.35
) -> str:
    """Produce the natural-language surface form of a stored value.

    BIRD questions sometimes spell values differently from storage (case,
    punctuation, spacing); pipeline value retrieval exists to bridge this.
    A fraction ``dirty_prob`` of draws get a differing surface — BIRD's
    dirtiness affects a minority of questions, not all of them.
    """
    if rng.random() >= dirty_prob:
        return stored
    choices = []
    if stored != stored.title():
        choices.append(stored.title())
    if stored != stored.lower():
        choices.append(stored.lower())
    if stored != stored.capitalize():
        choices.append(stored.capitalize())
    no_punct = stored.replace("_", " ").replace("-", " ")
    if no_punct != stored and no_punct.title() != stored:
        choices.append(no_punct.title())
    if not choices:
        return stored
    return choices[int(rng.integers(len(choices)))]
