"""Benchmark example types shared across datasets, LLM simulation and
evaluation."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ValueMention", "Example", "Difficulty", "DIFFICULTIES"]

#: BIRD's three difficulty labels.
DIFFICULTIES = ("simple", "moderate", "challenging")

Difficulty = str


@dataclass(frozen=True)
class ValueMention:
    """A value referenced by the question whose surface form differs from
    how the database stores it (BIRD's "dirty value" phenomenon).

    ``surface`` is what the question says ("John"), ``stored`` is what the
    database contains ("JOHN"), and ``table``/``column`` locate it.
    """

    surface: str
    stored: str
    table: str
    column: str

    @property
    def is_dirty(self) -> bool:
        """True when the question spells the value differently from storage."""
        return self.surface != self.stored


@dataclass(frozen=True)
class Example:
    """One benchmark question.

    ``traits`` names the structural pitfalls the gold SQL navigates
    (``needs_distinct``, ``date_format``, ``nullable_min``,
    ``max_vs_limit``, ``evidence_formula``) — the simulated LLM's
    hallucination channels key off them, and the dynamic few-shot mechanism
    matches on ``template_id`` families.
    """

    question_id: str
    db_id: str
    question: str
    gold_sql: str
    evidence: str = ""
    difficulty: Difficulty = "simple"
    traits: tuple[str, ...] = ()
    value_mentions: tuple[ValueMention, ...] = ()
    template_id: str = ""
    split: str = "dev"

    def __post_init__(self):
        if self.difficulty not in DIFFICULTIES:
            raise ValueError(f"unknown difficulty {self.difficulty!r}")

    @property
    def has_dirty_values(self) -> bool:
        """True when any mention's surface differs from the stored value."""
        return any(mention.is_dirty for mention in self.value_mentions)
