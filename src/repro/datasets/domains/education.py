"""Education domain — schools, SAT-style score reports and districts
(modelled after BIRD's california_schools database)."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="education",
    description="Schools, their districts and standardized score reports.",
    tables=(
        Table(
            name="District",
            description="School districts.",
            columns=(
                Column("DistrictID", "INTEGER", "district identifier", is_primary=True),
                Column("Name", "TEXT", "district name"),
                Column("County", "TEXT", "county the district belongs to"),
                Column("Type", "TEXT", "district type", value_examples=("UNIFIED", "ELEMENTARY", "HIGH")),
            ),
        ),
        Table(
            name="School",
            description="One row per school.",
            columns=(
                Column("SchoolID", "INTEGER", "school identifier", is_primary=True),
                Column("DistrictID", "INTEGER", "owning district"),
                Column("Name", "TEXT", "school name"),
                Column("City", "TEXT", "city of the school"),
                Column("Charter", "INTEGER", "1 if a charter school else 0"),
                Column("OpenDate", "DATE", "date the school opened"),
                Column("Enrollment", "INTEGER", "number of enrolled students"),
            ),
        ),
        Table(
            name="Scores",
            description="Yearly aggregate test scores per school.",
            columns=(
                Column("ScoreID", "INTEGER", "report identifier", is_primary=True),
                Column("SchoolID", "INTEGER", "reporting school"),
                Column("Year", "INTEGER", "report year"),
                Column("AvgMath", "REAL", "average math score (nullable: small cohorts suppressed)"),
                Column("AvgReading", "REAL", "average reading score (nullable)"),
                Column("NumTakers", "INTEGER", "number of test takers"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("School", "DistrictID", "District", "DistrictID"),
        ForeignKey("Scores", "SchoolID", "School", "SchoolID"),
    ),
)

_COUNTIES = ("ALAMEDA", "FRESNO", "KERN", "LOS ANGELES", "ORANGE", "SACRAMENTO")
_CITIES = (
    "OAKWOOD", "RIVERSIDE FALLS", "EAST MADERA", "PORT LINDEN",
    "NORTH SELMA", "GREENFIELD PARK", "SANTA VERA", "WESTBROOK",
)
_SCHOOL_WORDS = ("LINCOLN", "JEFFERSON", "SIERRA", "PACIFIC", "VALLEY", "SUNSET", "MONROE", "HARBOR")
_SCHOOL_KINDS = ("ELEMENTARY", "MIDDLE", "HIGH", "ACADEMY")


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    districts = []
    for did in range(1, 21):
        districts.append(
            (
                did,
                f"{common.pick(rng, _COUNTIES)} DISTRICT {did}",
                common.pick(rng, _COUNTIES),
                common.pick(rng, ("UNIFIED", "ELEMENTARY", "HIGH")),
            )
        )
    schools = []
    names: dict[str, None] = {}
    open_dates = common.random_dates(rng, 400, 1950, 2015)
    sid = 1
    while sid <= 180:
        name = f"{common.pick(rng, _SCHOOL_WORDS)} {common.pick(rng, _SCHOOL_KINDS)} {sid}"
        if name in names:
            continue
        names[name] = None
        schools.append(
            (
                sid,
                int(rng.integers(1, 21)),
                name,
                common.pick(rng, _CITIES),
                1 if rng.random() < 0.25 else 0,
                open_dates[sid],
                int(rng.integers(120, 3500)),
            )
        )
        sid += 1
    scores = []
    score_id = 1
    for school_id in range(1, 181):
        for year in (2018, 2019, 2020):
            if rng.random() < 0.15:
                continue
            scores.append(
                (
                    score_id,
                    school_id,
                    year,
                    round(float(rng.uniform(380, 720)), 1) if rng.random() < 0.85 else None,
                    round(float(rng.uniform(390, 710)), 1) if rng.random() < 0.85 else None,
                    int(rng.integers(15, 600)),
                )
            )
            score_id += 1
    return {"District": districts, "School": schools, "Scores": scores}


TEMPLATES = (
    common.count_where_dirty(
        "count_city", "School", "City",
        "How many schools are located in {value}?",
    ),
    common.list_where_dirty(
        "schools_in_county_district", "District", "Name", "County",
        "List the names of districts in {value} county.",
    ),
    common.numeric_agg_where(
        "avg_enrollment_city", "School", "AVG", "Enrollment", "City",
        "What is the average enrollment of schools in {value}?",
    ),
    common.count_join_distinct(
        "schools_in_county", "School", "SchoolID", "District", "County",
        "How many different schools belong to districts in {value} county?",
    ),
    common.date_year_count(
        "opened_after", "School", "OpenDate",
        "How many schools opened in {year} or {direction}?",
        year_pool=(1960, 1965, 1970, 1975, 1980, 1985, 1990, 1995, 2000, 2005),
    ),
    common.superlative_nullable(
        "best_math", "Scores", "SchoolID", "AvgMath",
        "In {value}, which school posted the report with the highest "
        "average math score?",
        filter_column="Year", clean=True,
    ),
    common.min_nullable(
        "worst_reading", "Scores", "SchoolID", "AvgReading",
        "In {value}, which school posted the report with the lowest "
        "average reading score?",
        filter_column="Year", clean=True,
    ),
    common.group_top(
        "city_most_schools", "School", "City",
        "Which city has the {rank}most schools?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.evidence_formula_count(
        "competitive_math", "Scores", "AvgMath", "a competitive math average",
        560, 700,
        "How many score reports show {term}?",
    ),
    common.multi_select_where(
        "name_and_enrollment", "School", ("Name", "Enrollment"), "City",
        "Show the name and enrollment of each school in {value}.",
    ),
    common.join_list_dirty(
        "charter_counties", "School", "Name", "District", "County",
        "List the distinct names of schools in districts of {value} county.",
    ),
    common.join_superlative_dirty(
        "top_school_in_county", "School", "Name", "District", "County",
        "Scores", "AvgMath",
        "Among schools in {value} county districts, which school has the "
        "report with the highest average math score?",
    ),
    common.group_having_count(
        "cities_many_schools", "School", "City",
        "Which cities have at least {n} schools?",
    ),
    common.date_between_count(
        "opened_between", "School", "OpenDate",
        "How many schools opened between {lo} and {hi}?",
    ),
    common.top_k_list(
        "top_math_reports", "Scores", "SchoolID", "AvgMath",
        "List the schools behind the {k} best average math scores.",
    ),
    common.count_not_equal(
        "not_in_city", "School", "City",
        "How many schools are located outside {value}?",
    ),
    common.join_avg_dirty(
        "avg_math_in_county", "Scores", "AvgMath", "District", "County",
        "What is the average math score across reports of schools in "
        "{value} county?",
    ),
)

DOMAIN = DomainSpec(
    name="education",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
