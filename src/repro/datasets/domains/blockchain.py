"""Blockchain domain — wallets, blocks and transactions (BIRD's intro
names blockchain among its professional domains)."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="blockchain",
    description="A toy ledger: wallets, mined blocks and transfers.",
    tables=(
        Table(
            name="Wallet",
            description="Wallets holding funds.",
            columns=(
                Column("WalletID", "INTEGER", "wallet id", is_primary=True),
                Column("Owner", "TEXT", "registered owner name, stored upper-case"),
                Column("Network", "TEXT", "chain network",
                       value_examples=("MAINNET ALPHA", "MAINNET BETA", "TESTNET")),
                Column("Created", "DATE", "wallet creation date"),
                Column("Balance", "REAL", "current balance in coins"),
            ),
        ),
        Table(
            name="Block",
            description="Mined blocks.",
            columns=(
                Column("BlockID", "INTEGER", "block height", is_primary=True),
                Column("MinedAt", "DATE", "mining date"),
                Column("Miner", "TEXT", "mining pool name"),
                Column("SizeKb", "REAL", "block size in kilobytes"),
            ),
        ),
        Table(
            name="Transfer",
            description="On-chain transfers, included in blocks.",
            columns=(
                Column("TransferID", "INTEGER", "transfer id", is_primary=True),
                Column("BlockID", "INTEGER", "containing block"),
                Column("WalletID", "INTEGER", "sending wallet"),
                Column("Amount", "REAL", "coins moved"),
                Column("Fee", "REAL", "fee paid (nullable: sponsored)"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Transfer", "BlockID", "Block", "BlockID"),
        ForeignKey("Transfer", "WalletID", "Wallet", "WalletID"),
    ),
)

_NETWORKS = ("MAINNET ALPHA", "MAINNET BETA", "TESTNET")
_POOLS = ("POLAR POOL", "EMBER COLLECTIVE", "QUANTUM MINERS", "SOLO RIG")


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    owners = common.person_names(rng, 120)
    created = common.random_dates(rng, 120, 2016, 2023)
    wallets = [
        (wid, owners[wid - 1], common.pick(rng, _NETWORKS), created[wid - 1],
         round(float(rng.uniform(0, 2500)), 4))
        for wid in range(1, 121)
    ]
    mined = common.random_dates(rng, 300, 2016, 2023)
    blocks = [
        (height, mined[height - 1], common.pick(rng, _POOLS),
         round(float(rng.uniform(1, 1800)), 1))
        for height in range(1, 301)
    ]
    transfers = []
    tid = 1
    for _ in range(1600):
        transfers.append(
            (tid, int(rng.integers(1, 301)), int(rng.integers(1, 121)),
             round(float(rng.uniform(0.01, 400)), 4),
             round(float(rng.uniform(0.0001, 0.4)), 4) if rng.random() < 0.9 else None)
        )
        tid += 1
    return {"Wallet": wallets, "Block": blocks, "Transfer": transfers}


TEMPLATES = (
    common.count_where_dirty(
        "count_network", "Wallet", "Network",
        "How many wallets exist on {value}?",
    ),
    common.list_where_dirty(
        "owners_on_network", "Wallet", "Owner", "Network",
        "List the owners of wallets on {value}.",
    ),
    common.numeric_agg_where(
        "avg_balance_network", "Wallet", "AVG", "Balance", "Network",
        "What is the average balance of wallets on {value}?",
    ),
    common.count_join_distinct(
        "wallets_by_miner", "Wallet", "WalletID", "Block", "Miner",
        "How many different wallets sent a transfer included in a block "
        "mined by {value}?",
    ),
    common.date_year_count(
        "blocks_since", "Block", "MinedAt",
        "How many blocks were mined in {year} or {direction}?",
        year_pool=(2017, 2018, 2019, 2020, 2021, 2022),
    ),
    common.superlative_nullable(
        "highest_fee", "Transfer", "TransferID", "Fee",
        "Which transfer paid the {rank}highest fee?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.min_nullable(
        "lowest_fee", "Transfer", "TransferID", "Fee",
        "Which transfer paid the {rank}lowest non-sponsored fee?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.group_top(
        "busiest_miner", "Block", "Miner",
        "Which mining pool mined the {rank}most blocks?",
        ranks=(1, 2, 3, 4),
    ),
    common.evidence_formula_count(
        "whale_transfers", "Transfer", "Amount", "a whale transfer",
        250, 400,
        "How many transfers qualify as {term}?",
    ),
    common.multi_select_where(
        "owner_and_balance", "Wallet", ("Owner", "Balance"), "Network",
        "Show the owner and balance of every wallet on {value}.",
    ),
    common.join_list_dirty(
        "miners_for_network", "Block", "Miner", "Wallet", "Network",
        "List the distinct mining pools whose blocks include transfers from "
        "{value} wallets.",
    ),
    common.join_superlative_dirty(
        "largest_transfer_network", "Transfer", "Amount", "Wallet", "Network",
        "Transfer", "Amount",
        "Among transfers from {value} wallets, what is the amount of the largest?",
    ),
    common.group_having_count(
        "busy_pools", "Block", "Miner",
        "Which mining pools mined at least {n} blocks?",
        thresholds=(50, 60, 70, 80),
    ),
    common.date_between_count(
        "mined_between", "Block", "MinedAt",
        "How many blocks were mined between {lo} and {hi}?",
        year_pairs=((2016, 2018), (2017, 2019), (2018, 2020), (2019, 2021),
                    (2020, 2022), (2016, 2020), (2017, 2021), (2018, 2022),
                    (2016, 2019), (2019, 2022)),
    ),
    common.top_k_list(
        "largest_transfers", "Transfer", "TransferID", "Amount",
        "List the {k} largest transfers by amount.",
    ),
    common.count_not_equal(
        "not_network", "Wallet", "Network",
        "How many wallets are not on {value}?",
    ),
    common.join_avg_dirty(
        "avg_amount_by_network", "Transfer", "Amount", "Wallet", "Network",
        "What is the average transfer amount sent from {value} wallets?",
    ),
)

DOMAIN = DomainSpec(
    name="blockchain",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
