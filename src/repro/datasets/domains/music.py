"""Music domain — artists, albums and tracks."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="music",
    description="A record label catalogue: artists, albums and tracks.",
    tables=(
        Table(
            name="Artist",
            description="Signed artists.",
            columns=(
                Column("ArtistID", "INTEGER", "artist id", is_primary=True),
                Column("Name", "TEXT", "stage name, stored upper-case"),
                Column("Country", "TEXT", "country of origin"),
                Column("Genre", "TEXT", "primary genre",
                       value_examples=("INDIE ROCK", "JAZZ FUSION", "SYNTH POP", "HIP HOP")),
                Column("Debut", "DATE", "debut date"),
            ),
        ),
        Table(
            name="Album",
            description="Released albums.",
            columns=(
                Column("AlbumID", "INTEGER", "album id", is_primary=True),
                Column("ArtistID", "INTEGER", "recording artist"),
                Column("Title", "TEXT", "album title"),
                Column("Released", "DATE", "release date"),
                Column("Label", "TEXT", "issuing label imprint"),
            ),
        ),
        Table(
            name="Track",
            description="Tracks on albums.",
            columns=(
                Column("TrackID", "INTEGER", "track id", is_primary=True),
                Column("AlbumID", "INTEGER", "owning album"),
                Column("Title", "TEXT", "track title"),
                Column("DurationSec", "INTEGER", "duration in seconds"),
                Column("Plays", "INTEGER", "streaming play count (nullable: unreleased)"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Album", "ArtistID", "Artist", "ArtistID"),
        ForeignKey("Track", "AlbumID", "Album", "AlbumID"),
    ),
)

_GENRES = ("INDIE ROCK", "JAZZ FUSION", "SYNTH POP", "HIP HOP", "FOLK REVIVAL")
_COUNTRIES = ("UNITED KINGDOM", "UNITED STATES", "SWEDEN", "NIGERIA", "SOUTH KOREA")
_LABELS = ("NIGHTFALL RECORDS", "BLUE HARBOR", "STATIC CITY", "WANDERING MOON")
_TITLE_WORDS = ("MIDNIGHT", "VELVET", "PAPER", "NEON", "GOLDEN", "BROKEN",
                "SILENT", "ELECTRIC", "WANDERING", "CRYSTAL")
_TITLE_NOUNS = ("HIGHWAY", "GARDEN", "SIGNAL", "HARBOR", "MIRROR", "SEASON",
                "ENGINE", "LETTER", "HORIZON", "RIVER")


def _title(rng: np.random.Generator) -> str:
    return f"{common.pick(rng, _TITLE_WORDS)} {common.pick(rng, _TITLE_NOUNS)}"


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    names = common.person_names(rng, 80)
    debuts = common.random_dates(rng, 80, 1975, 2018)
    artists = [
        (aid, names[aid - 1], common.pick(rng, _COUNTRIES),
         common.pick(rng, _GENRES), debuts[aid - 1])
        for aid in range(1, 81)
    ]
    albums = []
    released = common.random_dates(rng, 400, 1980, 2023)
    album_id = 1
    for aid in range(1, 81):
        for _ in range(int(rng.integers(1, 6))):
            albums.append(
                (album_id, aid, f"{_title(rng)} {album_id}",
                 released[album_id % len(released)], common.pick(rng, _LABELS))
            )
            album_id += 1
    tracks = []
    track_id = 1
    for album in albums:
        for _ in range(int(rng.integers(6, 13))):
            tracks.append(
                (track_id, album[0], f"{_title(rng)} {track_id}",
                 int(rng.integers(95, 560)),
                 int(rng.integers(1000, 9000000)) if rng.random() < 0.9 else None)
            )
            track_id += 1
    return {"Artist": artists, "Album": albums, "Track": tracks}


TEMPLATES = (
    common.count_where_dirty(
        "count_genre", "Artist", "Genre",
        "How many artists play {value}?",
    ),
    common.list_where_dirty(
        "artists_by_country", "Artist", "Name", "Country",
        "List the names of artists from {value}.",
    ),
    common.numeric_agg_where(
        "avg_duration", "Track", "AVG", "DurationSec", "AlbumID",
        "What is the average track duration on album number {value}?",
    ),
    common.count_join_distinct(
        "artists_on_label", "Artist", "ArtistID", "Album", "Label",
        "How many different artists have released an album on {value}?",
    ),
    common.date_year_count(
        "albums_since", "Album", "Released",
        "How many albums were released in {year} or {direction}?",
        year_pool=(1985, 1989, 1993, 1997, 2001, 2005, 2009, 2013, 2017),
    ),
    common.superlative_nullable(
        "most_played", "Track", "Title", "Plays",
        "What is the title of the {rank}most streamed track?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.min_nullable(
        "least_played", "Track", "Title", "Plays",
        "What is the title of the {rank}least streamed released track?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.group_top(
        "genre_most_artists", "Artist", "Genre",
        "Which genre has the {rank}most artists?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.evidence_formula_count(
        "radio_friendly", "Track", "DurationSec", "a radio-friendly length",
        150, 240,
        "How many tracks have {term}?",
    ),
    common.multi_select_where(
        "name_and_debut", "Artist", ("Name", "Debut"), "Genre",
        "Show the stage name and debut date of every {value} artist.",
    ),
    common.join_list_dirty(
        "labels_by_genre", "Album", "Label", "Artist", "Genre",
        "List the distinct labels that released albums by {value} artists.",
    ),
    common.join_superlative_dirty(
        "longest_track_by_genre", "Track", "Title", "Artist", "Genre",
        "Track", "DurationSec",
        "Among tracks by {value} artists, which has the longest duration?",
    ),
    common.group_having_count(
        "genres_many_artists", "Artist", "Genre",
        "Which genres have at least {n} artists?",
    ),
    common.date_between_count(
        "released_between", "Album", "Released",
        "How many albums were released between {lo} and {hi}?",
    ),
    common.top_k_list(
        "most_streamed", "Track", "Title", "Plays",
        "List the titles of the {k} most streamed tracks.",
    ),
    common.count_not_equal(
        "not_genre", "Artist", "Genre",
        "How many artists play something other than {value}?",
    ),
    common.join_avg_dirty(
        "avg_duration_by_genre", "Track", "DurationSec", "Artist", "Genre",
        "What is the average track duration for {value} artists?",
    ),
)

DOMAIN = DomainSpec(
    name="music",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
