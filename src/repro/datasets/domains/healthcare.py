"""Healthcare domain — mirrors the paper's running example (Patient /
Laboratory / Examination), including the IGA "normal level" evidence
formula and `First Date` (a column name that needs quoting)."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec, QuestionDraft, TemplateSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="healthcare",
    description="Hospital patients, laboratory results and examinations.",
    tables=(
        Table(
            name="Patient",
            description="One row per registered patient.",
            columns=(
                Column("ID", "INTEGER", "patient identifier", is_primary=True),
                Column("SEX", "TEXT", "patient sex: F or M"),
                Column("Birthday", "DATE", "date of birth"),
                Column("First Date", "DATE", "date the patient first came to the hospital"),
                Column("Admission", "TEXT", "admission status", value_examples=("+", "-")),
                Column("Diagnosis", "TEXT", "primary diagnosis label"),
            ),
        ),
        Table(
            name="Laboratory",
            description="Laboratory measurements, many per patient.",
            columns=(
                Column("LabID", "INTEGER", "lab record id", is_primary=True),
                Column("ID", "INTEGER", "patient identifier"),
                Column("Date", "DATE", "measurement date"),
                Column("IGA", "REAL", "immunoglobulin A level"),
                Column("IGG", "REAL", "immunoglobulin G level"),
                Column("GLU", "REAL", "blood glucose (nullable: not always measured)"),
            ),
        ),
        Table(
            name="Examination",
            description="Clinical examinations, many per patient.",
            columns=(
                Column("ExamID", "INTEGER", "examination id", is_primary=True),
                Column("ID", "INTEGER", "patient identifier"),
                Column("Examination Date", "DATE", "date of the examination"),
                Column("Diagnosis", "TEXT", "diagnosis recorded at the examination"),
                Column("Symptoms", "TEXT", "free-text symptoms (nullable)"),
                Column("Thrombosis", "INTEGER", "degree of thrombosis, 0 none"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Laboratory", "ID", "Patient", "ID"),
        ForeignKey("Examination", "ID", "Patient", "ID"),
    ),
)

_DIAGNOSES = ("SLE", "APS", "PSS", "RA", "BEHCET", "MCTD", "SJS")
_SYMPTOMS = ("FEVER", "RASH", "ARTHRALGIA", "HEADACHE", "FATIGUE", None)


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    patients = []
    birthdays = common.random_dates(rng, 240, 1930, 2000)
    first_dates = common.random_dates(rng, 240, 1975, 2015)
    for pid in range(1, 241):
        patients.append(
            (
                pid,
                "F" if rng.random() < 0.6 else "M",
                birthdays[pid - 1],
                first_dates[pid - 1],
                "+" if rng.random() < 0.45 else "-",
                common.pick(rng, _DIAGNOSES),
            )
        )
    labs = []
    lab_id = 1
    lab_dates = common.random_dates(rng, 2000, 1980, 2018)
    for pid in range(1, 241):
        for _ in range(int(rng.integers(1, 8))):
            labs.append(
                (
                    lab_id,
                    pid,
                    lab_dates[lab_id % len(lab_dates)],
                    round(float(rng.uniform(20, 900)), 1),
                    round(float(rng.uniform(200, 2500)), 1),
                    round(float(rng.uniform(50, 300)), 1) if rng.random() < 0.7 else None,
                )
            )
            lab_id += 1
    exams = []
    exam_id = 1
    exam_dates = common.random_dates(rng, 1200, 1985, 2018)
    for pid in range(1, 241):
        for _ in range(int(rng.integers(0, 5))):
            exams.append(
                (
                    exam_id,
                    pid,
                    exam_dates[exam_id % len(exam_dates)],
                    common.pick(rng, _DIAGNOSES),
                    common.pick(rng, _SYMPTOMS),
                    int(rng.integers(0, 4)),
                )
            )
            exam_id += 1
    return {"Patient": patients, "Laboratory": labs, "Examination": exams}


def _iga_formula(ctx, rng) -> QuestionDraft:
    sql = (
        "SELECT COUNT(DISTINCT T1.ID) FROM Patient AS T1 "
        "INNER JOIN Laboratory AS T2 ON T2.ID = T1.ID "
        "WHERE T2.IGA > 80 AND T2.IGA < 500 "
        "AND STRFTIME('%Y', T1.`First Date`) >= '1990'"
    )
    return QuestionDraft(
        question=(
            "How many patients with a normal level of IgA came to the "
            "hospital after 1990?"
        ),
        sql=sql,
        evidence="normal level of IgA refers to IGA > 80 AND IGA < 500",
    )


TEMPLATES = (
    common.count_where_dirty(
        "count_diagnosis", "Patient", "Diagnosis",
        "How many patients were diagnosed with {value}?",
    ),
    common.list_where_dirty(
        "list_birthday", "Patient", "Birthday", "Diagnosis",
        "List the birthdays of patients diagnosed with {value}.",
    ),
    common.numeric_agg_where(
        "avg_thrombosis", "Examination", "AVG", "Thrombosis", "Diagnosis",
        "What is the average thrombosis degree among examinations with a "
        "diagnosis of {value}?",
    ),
    common.count_join_distinct(
        "patients_with_symptom", "Patient", "ID", "Examination", "Symptoms",
        "How many different patients showed the symptom {value}?",
    ),
    common.date_year_count(
        "arrived_after", "Patient", "First Date",
        "How many patients first came to the hospital in {year} or {direction}?",
        year_pool=(1980, 1983, 1986, 1989, 1992, 1995, 1998, 2001, 2004, 2007, 2010),
    ),
    common.superlative_nullable(
        "highest_glu", "Laboratory", "ID", "GLU",
        "Which patient has the laboratory record with the {rank}highest blood glucose?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.min_nullable(
        "lowest_glu", "Laboratory", "ID", "GLU",
        "Which patient has the laboratory record with the {rank}lowest "
        "measured blood glucose?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.group_top(
        "most_common_diagnosis", "Patient", "Diagnosis",
        "Which diagnosis is the {rank}most common among patients?",
        ranks=(1, 2, 3, 4, 5),
    ),
    TemplateSpec(
        "normal_iga_after", "challenging", _iga_formula,
        traits=("evidence_formula", "date_format", "needs_distinct"),
    ),
    common.evidence_formula_count(
        "normal_igg", "Laboratory", "IGG", "a normal level of IgG",
        900, 2000,
        "How many laboratory records show {term}?",
    ),
    common.multi_select_where(
        "sex_and_birthday", "Patient", ("SEX", "Birthday"), "Diagnosis",
        "Give the sex and birthday of every patient diagnosed with {value}.",
    ),
    common.join_list_dirty(
        "patients_by_exam_diag", "Patient", "Birthday", "Examination", "Diagnosis",
        "List the distinct birthdays of patients whose examination "
        "diagnosis was {value}.",
    ),
    common.join_superlative_dirty(
        "earliest_high_glu", "Patient", "First Date", "Patient", "Diagnosis",
        "Laboratory", "GLU",
        "Among patients diagnosed with {value}, what is the first-visit "
        "date of the one with the highest blood glucose record?",
    ),
    common.group_having_count(
        "busy_diagnoses", "Patient", "Diagnosis",
        "Which diagnoses were given to at least {n} patients?",
    ),
    common.date_between_count(
        "arrived_between", "Patient", "First Date",
        "How many patients first came to the hospital between {lo} and {hi}?",
    ),
    common.top_k_list(
        "top_iga_records", "Laboratory", "ID", "IGA",
        "List the patients behind the {k} highest IgA measurements.",
    ),
    common.count_not_equal(
        "count_not_diagnosis", "Patient", "Diagnosis",
        "How many patients have a diagnosis other than {value}?",
    ),
    common.count_two_filters(
        "sex_and_admission", "Patient", "SEX", "Admission",
        "How many patients have sex {value_a} and admission status {value_b}?",
    ),
    common.join_avg_dirty(
        "avg_iga_by_diagnosis", "Laboratory", "IGA", "Patient", "Diagnosis",
        "What is the average IgA level over lab records of patients "
        "diagnosed with {value}?",
    ),
    common.count_in_two(
        "count_two_diagnoses", "Patient", "Diagnosis",
        "How many patients were diagnosed with either {value_a} or {value_b}?",
    ),
)

DOMAIN = DomainSpec(
    name="healthcare",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
