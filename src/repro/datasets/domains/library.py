"""Library domain — members, books and loans."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="library",
    description="A public library: members, the catalogue and loans.",
    tables=(
        Table(
            name="Member",
            description="Registered library members.",
            columns=(
                Column("MemberID", "INTEGER", "member id", is_primary=True),
                Column("Name", "TEXT", "member name, stored upper-case"),
                Column("Joined", "DATE", "membership start date"),
                Column("Branch", "TEXT", "home branch",
                       value_examples=("CENTRAL", "RIVERSIDE", "NORTH END")),
            ),
        ),
        Table(
            name="Book",
            description="Catalogue entries.",
            columns=(
                Column("BookID", "INTEGER", "book id", is_primary=True),
                Column("Title", "TEXT", "book title"),
                Column("Author", "TEXT", "author name, stored upper-case"),
                Column("Genre", "TEXT", "shelf genre",
                       value_examples=("SCIENCE FICTION", "HISTORY", "POETRY", "BIOGRAPHY")),
                Column("Published", "DATE", "publication date"),
                Column("Pages", "INTEGER", "page count (nullable: audiobooks)"),
            ),
        ),
        Table(
            name="Loan",
            description="Borrowing records.",
            columns=(
                Column("LoanID", "INTEGER", "loan id", is_primary=True),
                Column("MemberID", "INTEGER", "borrowing member"),
                Column("BookID", "INTEGER", "borrowed book"),
                Column("LoanDate", "DATE", "checkout date"),
                Column("DaysKept", "INTEGER", "days until return"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Loan", "MemberID", "Member", "MemberID"),
        ForeignKey("Loan", "BookID", "Book", "BookID"),
    ),
)

_GENRES = ("SCIENCE FICTION", "HISTORY", "POETRY", "BIOGRAPHY", "MYSTERY")
_BRANCHES = ("CENTRAL", "RIVERSIDE", "NORTH END", "HILLTOP")
_TITLE_A = ("THE SILENT", "A BRIEF", "THE LAST", "BEYOND THE", "CHRONICLES OF THE", "SHADOWS OVER")
_TITLE_B = ("ARCHIVE", "MOUNTAIN", "CARTOGRAPHER", "DYNASTY", "LIGHTHOUSE", "EQUATION")


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    names = common.person_names(rng, 160)
    joined = common.random_dates(rng, 160, 1998, 2022)
    members = [
        (mid, names[mid - 1], joined[mid - 1], common.pick(rng, _BRANCHES))
        for mid in range(1, 161)
    ]
    authors = common.person_names(rng, 60)
    published = common.random_dates(rng, 220, 1900, 2022)
    books = [
        (bid, f"{common.pick(rng, _TITLE_A)} {common.pick(rng, _TITLE_B)} {bid}",
         common.pick(rng, authors), common.pick(rng, _GENRES),
         published[bid - 1],
         int(rng.integers(60, 1200)) if rng.random() < 0.88 else None)
        for bid in range(1, 221)
    ]
    loans = []
    dates = common.random_dates(rng, 1200, 2015, 2023)
    loan_id = 1
    for _ in range(1400):
        loans.append(
            (loan_id, int(rng.integers(1, 161)), int(rng.integers(1, 221)),
             dates[loan_id % len(dates)], int(rng.integers(1, 60)))
        )
        loan_id += 1
    return {"Member": members, "Book": books, "Loan": loans}


TEMPLATES = (
    common.count_where_dirty(
        "count_genre", "Book", "Genre",
        "How many books are shelved under {value}?",
    ),
    common.list_where_dirty(
        "titles_by_genre", "Book", "Title", "Genre",
        "List the titles of {value} books.",
    ),
    common.numeric_agg_where(
        "avg_pages_genre", "Book", "AVG", "Pages", "Genre",
        "What is the average page count of {value} books?",
    ),
    common.count_join_distinct(
        "members_reading_genre", "Member", "MemberID", "Book", "Genre",
        "How many different members have borrowed a {value} book?",
    ),
    common.date_year_count(
        "published_since", "Book", "Published",
        "How many books were published in {year} or {direction}?",
        year_pool=(1930, 1940, 1950, 1960, 1970, 1980, 1990, 2000, 2010, 2015),
    ),
    common.superlative_nullable(
        "longest_book", "Book", "Title", "Pages",
        "What is the title of the {value} book with the most pages?",
        filter_column="Genre",
    ),
    common.min_nullable(
        "shortest_book", "Book", "Title", "Pages",
        "What is the title of the shortest printed {value} book?",
        filter_column="Genre",
    ),
    common.group_top(
        "branch_most_members", "Member", "Branch",
        "Which branch has the {rank}most members?",
        ranks=(1, 2, 3, 4),
    ),
    common.evidence_formula_count(
        "doorstopper", "Book", "Pages", "a doorstopper",
        700, 1200,
        "How many catalogue books qualify as {term}?",
    ),
    common.multi_select_where(
        "title_and_author", "Book", ("Title", "Author"), "Genre",
        "Show the title and author of every {value} book.",
    ),
    common.join_list_dirty(
        "branches_by_genre", "Member", "Branch", "Book", "Genre",
        "List the distinct home branches of members who borrowed {value} books.",
    ),
    common.join_superlative_dirty(
        "longest_kept_by_branch", "Book", "Title", "Member", "Branch",
        "Loan", "DaysKept",
        "Among loans by members of the {value} branch, which book was kept longest?",
    ),
    common.group_having_count(
        "prolific_genres", "Book", "Genre",
        "Which genres hold at least {n} books?",
        thresholds=(20, 30, 40, 50),
    ),
    common.date_between_count(
        "published_between", "Book", "Published",
        "How many books were published between {lo} and {hi}?",
        year_pairs=((1920, 1960), (1950, 1990), (1970, 2000), (1930, 1980),
                    (1960, 2010), (1940, 1970), (1980, 2020), (1910, 1950),
                    (1955, 1985), (1975, 2005)),
    ),
    common.top_k_list(
        "longest_books", "Book", "Title", "Pages",
        "List the titles of the {k} longest books.",
    ),
    common.count_not_equal(
        "not_genre", "Book", "Genre",
        "How many books are shelved outside {value}?",
    ),
    common.join_avg_dirty(
        "avg_days_by_branch", "Loan", "DaysKept", "Member", "Branch",
        "What is the average borrowing duration for members of the {value} "
        "branch?",
    ),
)

DOMAIN = DomainSpec(
    name="library",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
