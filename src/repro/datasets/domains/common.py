"""Shared question-template factories and data-generation helpers.

The factories return :class:`~repro.datasets.build.TemplateSpec` makers
covering the question archetypes BIRD evaluates: filtered counts over dirty
values, joins with DISTINCT tricks, date-format questions, superlatives
over nullable columns, evidence-formula thresholds, grouped top-k and
multi-output selections.  Domains instantiate them with their own tables
and phrasing so questions read naturally per domain.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets.build import DomainContext, QuestionDraft, TemplateSpec, surface_variant
from repro.datasets.types import ValueMention
from repro.sqlkit.render import quote_identifier

__all__ = [
    "count_where_dirty",
    "list_where_dirty",
    "numeric_agg_where",
    "count_join_distinct",
    "date_year_count",
    "superlative_nullable",
    "min_nullable",
    "group_top",
    "evidence_formula_count",
    "multi_select_where",
    "join_list_dirty",
    "join_superlative_dirty",
    "group_having_count",
    "date_between_count",
    "top_k_list",
    "count_not_equal",
    "count_two_filters",
    "count_in_two",
    "join_avg_dirty",
    "random_dates",
    "person_names",
    "pick",
]

_FIRST = (
    "ALICE", "BRUNO", "CARMEN", "DEVIN", "ELENA", "FARID", "GRETA", "HUGO",
    "INGRID", "JAMAL", "KEIKO", "LARS", "MIRA", "NOEL", "OLGA", "PABLO",
    "QUINN", "ROSA", "STEFAN", "TARA", "UMA", "VICTOR", "WANDA", "XAVIER",
    "YUSUF", "ZELDA",
)
_LAST = (
    "ANDERSEN", "BLACKWOOD", "CASTILLO", "DUBOIS", "EKLUND", "FERRARI",
    "GONZALES", "HOLLOWAY", "IVANOV", "JENSEN", "KOVACS", "LINDQVIST",
    "MORALES", "NAKAMURA", "OKAFOR", "PETROV", "QUIROGA", "ROSSI",
    "SCHNEIDER", "TREMBLAY",
)


_ORDINALS = {
    1: "", 2: "second ", 3: "third ", 4: "fourth ", 5: "fifth ",
    6: "sixth ", 7: "seventh ",
}


def qcol(table: str, column: str) -> str:
    """Render a fully qualified, properly quoted column reference."""
    return f"{quote_identifier(table)}.{quote_identifier(column)}"

def pick(rng: np.random.Generator, pool: Sequence):
    """Uniformly pick one element of ``pool``."""
    return pool[int(rng.integers(len(pool)))]


def person_names(rng: np.random.Generator, count: int) -> list[str]:
    """Distinct upper-case person names (BIRD-style shouty storage)."""
    names: dict[str, None] = {}
    while len(names) < count:
        names[f"{pick(rng, _FIRST)} {pick(rng, _LAST)}"] = None
    return list(names)


def random_dates(
    rng: np.random.Generator, count: int, year_lo: int = 1980, year_hi: int = 2020
) -> list[str]:
    """ISO dates spread over [year_lo, year_hi]."""
    dates = []
    for _ in range(count):
        year = int(rng.integers(year_lo, year_hi + 1))
        month = int(rng.integers(1, 13))
        day = int(rng.integers(1, 29))
        dates.append(f"{year:04d}-{month:02d}-{day:02d}")
    return dates


def _mention(
    ctx_value: str,
    rng: np.random.Generator,
    table: str,
    column: str,
    clean: bool = False,
) -> ValueMention:
    """Build a value mention; ``clean`` keeps the surface identical to the
    stored value (Spider-style datasets have no dirty values)."""
    stored = str(ctx_value)
    surface = stored if clean else surface_variant(stored, rng)
    return ValueMention(surface=surface, stored=stored, table=table, column=column)


# -------------------------------------------------------------- factories


def count_where_dirty(
    template_id: str,
    table: str,
    column: str,
    question_fmt: str,
    difficulty: str = "simple",
    clean: bool = False,
) -> TemplateSpec:
    """"How many <noun> ... {value}?" → SELECT COUNT(*) WHERE col = value.

    The value mention is dirty: the question spells it differently from
    storage, exercising values retrieval + agent alignment.
    """

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        value = str(ctx.sample_value(table, column, rng))
        mention = _mention(value, rng, table, column, clean)
        sql = f"SELECT COUNT(*) FROM {quote_identifier(table)} WHERE {qcol(table, column)} = '{value}'"
        return QuestionDraft(
            question=question_fmt.format(value=mention.surface),
            sql=sql,
            mentions=(mention,),
        )

    return TemplateSpec(template_id, difficulty, maker, traits=())


def list_where_dirty(
    template_id: str,
    table: str,
    out_column: str,
    filter_column: str,
    question_fmt: str,
    difficulty: str = "simple",
    clean: bool = False,
) -> TemplateSpec:
    """"List the <out> of <noun> with <filter> {value}"."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        value = str(ctx.sample_value(table, filter_column, rng))
        mention = _mention(value, rng, table, filter_column, clean)
        sql = (
            f"SELECT {qcol(table, out_column)} FROM {quote_identifier(table)} "
            f"WHERE {qcol(table, filter_column)} = '{value}'"
        )
        return QuestionDraft(
            question=question_fmt.format(value=mention.surface),
            sql=sql,
            mentions=(mention,),
        )

    return TemplateSpec(template_id, difficulty, maker, traits=())


def numeric_agg_where(
    template_id: str,
    table: str,
    agg: str,
    agg_column: str,
    filter_column: str,
    question_fmt: str,
    difficulty: str = "simple",
    clean: bool = False,
) -> TemplateSpec:
    """"What is the average/total <x> of rows with <filter> {value}?"."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        value = str(ctx.sample_value(table, filter_column, rng))
        mention = _mention(value, rng, table, filter_column, clean)
        sql = (
            f"SELECT {agg}({qcol(table, agg_column)}) FROM {quote_identifier(table)} "
            f"WHERE {qcol(table, filter_column)} = '{value}'"
        )
        return QuestionDraft(
            question=question_fmt.format(value=mention.surface),
            sql=sql,
            mentions=(mention,),
        )

    return TemplateSpec(template_id, difficulty, maker, traits=())


def count_join_distinct(
    template_id: str,
    count_table: str,
    count_column: str,
    filter_table: str,
    filter_column: str,
    question_fmt: str,
    difficulty: str = "moderate",
    clean: bool = False,
) -> TemplateSpec:
    """Join + COUNT(DISTINCT ...) — carries the ``needs_distinct`` trick."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        value = str(ctx.sample_value(filter_table, filter_column, rng))
        mention = _mention(value, rng, filter_table, filter_column, clean)
        return _assembled_draft(
            ctx,
            rng,
            question_fmt.format(value=mention.surface),
            select=f"COUNT(DISTINCT {qcol(count_table, count_column)})",
            where=f"{qcol(filter_table, filter_column)} = '{value}'",
            mentions=(mention,),
        )

    return TemplateSpec(template_id, difficulty, maker, traits=("needs_distinct",))


def _assembled_draft(
    ctx: DomainContext,
    rng: np.random.Generator,
    question: str,
    select: str,
    where: str = "",
    group_by: str = "",
    having: str = "",
    order_by: str = "",
    limit: Optional[int] = None,
    mentions: tuple[ValueMention, ...] = (),
    evidence: str = "",
) -> Optional[QuestionDraft]:
    """Build gold SQL by assembling a SQL-Like skeleton through the domain's
    FK graph — exactly the mechanism the pipeline itself uses, so golds are
    guaranteed consistent with the schema."""
    from repro.schema.joins import assemble_select
    from repro.sqlkit.render import render
    from repro.sqlkit.sql_like import parse_sql_like

    text = f"Show {select}"
    if where:
        text += f" WHERE {where}"
    if group_by:
        text += f" GROUP BY {group_by}"
    if having:
        text += f" HAVING {having}"
    if order_by:
        text += f" ORDER BY {order_by}"
    if limit is not None:
        text += f" LIMIT {limit}"
    try:
        sql_like = parse_sql_like(text)
        select_ast = assemble_select(ctx.schema, sql_like)
    except Exception as exc:
        raise ValueError(f"template produced bad skeleton {text!r}: {exc}") from exc
    return QuestionDraft(
        question=question,
        sql=render(select_ast),
        evidence=evidence,
        mentions=mentions,
    )


def date_year_count(
    template_id: str,
    table: str,
    date_column: str,
    question_fmt: str,
    comparator: str = ">=",
    difficulty: str = "moderate",
    year_pool: tuple[int, ...] = (1990, 1995, 2000, 2005, 2010),
) -> TemplateSpec:
    """Count rows by year bound via strftime — the ``date_format`` trick."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        year = int(pick(rng, year_pool))
        direction = "after" if comparator in (">=", ">") else "before"
        sql = (
            f"SELECT COUNT(*) FROM {quote_identifier(table)} "
            f"WHERE STRFTIME('%Y', {qcol(table, date_column)}) {comparator} '{year}'"
        )
        return QuestionDraft(
            question=question_fmt.format(year=year, direction=direction),
            sql=sql,
        )

    return TemplateSpec(template_id, difficulty, maker, traits=("date_format",))


def superlative_nullable(
    template_id: str,
    table: str,
    out_column: str,
    order_column: str,
    question_fmt: str,
    desc: bool = True,
    difficulty: str = "moderate",
    filter_column: Optional[str] = None,
    clean: bool = False,
    ranks: tuple[int, ...] = (1,),
) -> TemplateSpec:
    """"Which <noun> has the highest <x>?" — BIRD style mandates
    ``ORDER BY ... LIMIT 1`` with an ``IS NOT NULL`` guard
    (traits ``max_vs_limit`` + ``nullable_min``).

    Parameter variety (so every split gets distinct questions) comes from
    ``filter_column`` (restrict to a sampled value, "{value}" in the
    format) and/or ``ranks`` ("{rank}" in the format: "second highest" →
    ``LIMIT 1 OFFSET 1``).
    """

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        direction = "DESC" if desc else "ASC"
        where = f"{qcol(table, order_column)} IS NOT NULL"
        mentions: tuple[ValueMention, ...] = ()
        fields: dict[str, str] = {}
        if filter_column is not None:
            value = str(ctx.sample_value(table, filter_column, rng))
            mention = _mention(value, rng, table, filter_column, clean)
            where = f"{qcol(table, filter_column)} = '{value}' AND " + where
            mentions = (mention,)
            fields["value"] = mention.surface
        rank = int(pick(rng, ranks))
        if "{rank}" in question_fmt:
            fields["rank"] = _ORDINALS[rank]
        offset = f" OFFSET {rank - 1}" if rank > 1 else ""
        question = question_fmt.format(**fields) if fields else question_fmt
        sql = (
            f"SELECT {qcol(table, out_column)} FROM {quote_identifier(table)} "
            f"WHERE {where} "
            f"ORDER BY {qcol(table, order_column)} {direction} LIMIT 1{offset}"
        )
        return QuestionDraft(question=question, sql=sql, mentions=mentions)

    return TemplateSpec(
        template_id, difficulty, maker, traits=("max_vs_limit", "nullable_min")
    )


def min_nullable(
    template_id: str,
    table: str,
    out_column: str,
    order_column: str,
    question_fmt: str,
    difficulty: str = "moderate",
    filter_column: Optional[str] = None,
    clean: bool = False,
    ranks: tuple[int, ...] = (1,),
) -> TemplateSpec:
    """Lowest-value superlative over a nullable column (``nullable_min``)."""
    return superlative_nullable(
        template_id, table, out_column, order_column, question_fmt,
        desc=False, difficulty=difficulty, filter_column=filter_column,
        clean=clean, ranks=ranks,
    )


def group_top(
    template_id: str,
    table: str,
    group_column: str,
    question_fmt: str,
    difficulty: str = "moderate",
    filter_column: Optional[str] = None,
    clean: bool = False,
    ranks: tuple[int, ...] = (1,),
) -> TemplateSpec:
    """"Which <group> has the most rows?" → GROUP BY + ORDER BY COUNT(*).

    ``filter_column`` and/or ``ranks`` ("{rank}" placeholder → LIMIT 1
    OFFSET k) give the template distinct questions per split.
    """

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        where = ""
        mentions: tuple[ValueMention, ...] = ()
        fields: dict[str, str] = {}
        if filter_column is not None:
            value = str(ctx.sample_value(table, filter_column, rng))
            mention = _mention(value, rng, table, filter_column, clean)
            where = f"WHERE {qcol(table, filter_column)} = '{value}' "
            mentions = (mention,)
            fields["value"] = mention.surface
        rank = int(pick(rng, ranks))
        if "{rank}" in question_fmt:
            fields["rank"] = _ORDINALS[rank]
        offset = f" OFFSET {rank - 1}" if rank > 1 else ""
        question = question_fmt.format(**fields) if fields else question_fmt
        sql = (
            f"SELECT {qcol(table, group_column)} FROM {quote_identifier(table)} "
            f"{where}"
            f"GROUP BY {qcol(table, group_column)} "
            f"ORDER BY COUNT(*) DESC LIMIT 1{offset}"
        )
        return QuestionDraft(question=question, sql=sql, mentions=mentions)

    return TemplateSpec(template_id, difficulty, maker, traits=())


def evidence_formula_count(
    template_id: str,
    table: str,
    column: str,
    term: str,
    lo: float,
    hi: float,
    question_fmt: str,
    difficulty: str = "challenging",
) -> TemplateSpec:
    """Counting rows matching a domain term defined by an evidence formula
    ("normal X refers to col > lo AND col < hi") — ``evidence_formula``.

    The bounds are jittered per draw (the evidence states the exact
    formula, so every variant stays well-defined) to yield distinct
    parameterizations for every split.
    """

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        scale = float(pick(rng, (0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3)))
        lo_v, hi_v = lo * scale, hi * scale
        lo_text = int(lo_v) if float(lo_v).is_integer() or abs(lo_v) >= 10 else round(lo_v, 2)
        hi_text = int(hi_v) if float(hi_v).is_integer() or abs(hi_v) >= 10 else round(hi_v, 2)
        if isinstance(lo_text, int):
            lo_text = int(lo_v)
        if isinstance(hi_text, int):
            hi_text = int(hi_v)
        sql = (
            f"SELECT COUNT(*) FROM {quote_identifier(table)} "
            f"WHERE {qcol(table, column)} > {lo_text} AND {qcol(table, column)} < {hi_text}"
        )
        evidence = (
            f"{term} refers to {column} > {lo_text} AND {column} < {hi_text}"
        )
        return QuestionDraft(
            question=question_fmt.format(term=term),
            sql=sql,
            evidence=evidence,
        )

    return TemplateSpec(template_id, difficulty, maker, traits=("evidence_formula",))


def multi_select_where(
    template_id: str,
    table: str,
    out_columns: Sequence[str],
    filter_column: str,
    question_fmt: str,
    difficulty: str = "moderate",
    clean: bool = False,
) -> TemplateSpec:
    """Multiple output columns — exercises the SELECT-shape channel and
    Info Alignment's SELECT-style hints."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        value = str(ctx.sample_value(table, filter_column, rng))
        mention = _mention(value, rng, table, filter_column, clean)
        outs = ", ".join(qcol(table, column) for column in out_columns)
        sql = (
            f"SELECT {outs} FROM {quote_identifier(table)} "
            f"WHERE {qcol(table, filter_column)} = '{value}'"
        )
        return QuestionDraft(
            question=question_fmt.format(value=mention.surface),
            sql=sql,
            mentions=(mention,),
        )

    return TemplateSpec(template_id, difficulty, maker, traits=())


def join_list_dirty(
    template_id: str,
    out_table: str,
    out_column: str,
    filter_table: str,
    filter_column: str,
    question_fmt: str,
    distinct: bool = True,
    difficulty: str = "challenging",
    clean: bool = False,
) -> TemplateSpec:
    """Cross-table listing with a dirty filter value; DISTINCT when the
    join fans out (traits: ``needs_distinct`` when distinct)."""

    traits = ("needs_distinct",) if distinct else ()

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        value = str(ctx.sample_value(filter_table, filter_column, rng))
        mention = _mention(value, rng, filter_table, filter_column, clean)
        head = "DISTINCT " if distinct else ""
        return _assembled_draft(
            ctx,
            rng,
            question_fmt.format(value=mention.surface),
            select=f"{head}{qcol(out_table, out_column)}",
            where=f"{qcol(filter_table, filter_column)} = '{value}'",
            mentions=(mention,),
        )

    return TemplateSpec(template_id, difficulty, maker, traits=traits)


def join_superlative_dirty(
    template_id: str,
    out_table: str,
    out_column: str,
    filter_table: str,
    filter_column: str,
    order_table: str,
    order_column: str,
    question_fmt: str,
    desc: bool = True,
    difficulty: str = "challenging",
    clean: bool = False,
) -> TemplateSpec:
    """Join + dirty filter + nullable superlative: the challenging-bucket
    archetype combining three pitfalls at once."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        value = str(ctx.sample_value(filter_table, filter_column, rng))
        mention = _mention(value, rng, filter_table, filter_column, clean)
        direction = "DESC" if desc else "ASC"
        return _assembled_draft(
            ctx,
            rng,
            question_fmt.format(value=mention.surface),
            select=f"{qcol(out_table, out_column)}",
            where=(
                f"{qcol(filter_table, filter_column)} = '{value}' "
                f"AND {qcol(order_table, order_column)} IS NOT NULL"
            ),
            order_by=f"{qcol(order_table, order_column)} {direction}",
            limit=1,
            mentions=(mention,),
        )

    return TemplateSpec(
        template_id,
        difficulty,
        maker,
        traits=("max_vs_limit", "nullable_min"),
    )


def group_having_count(
    template_id: str,
    table: str,
    group_column: str,
    question_fmt: str,
    difficulty: str = "moderate",
    thresholds: Sequence[int] = (2, 3, 4, 5),
) -> TemplateSpec:
    """"Which <groups> appear at least {n} times?" → GROUP BY + HAVING."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        threshold = int(pick(rng, thresholds))
        sql = (
            f"SELECT {qcol(table, group_column)} FROM {quote_identifier(table)} "
            f"GROUP BY {qcol(table, group_column)} "
            f"HAVING COUNT(*) >= {threshold}"
        )
        return QuestionDraft(question=question_fmt.format(n=threshold), sql=sql)

    return TemplateSpec(template_id, difficulty, maker, traits=())


def date_between_count(
    template_id: str,
    table: str,
    date_column: str,
    question_fmt: str,
    difficulty: str = "moderate",
    year_pairs: Sequence[tuple[int, int]] = (
        (1990, 2000), (1995, 2005), (2000, 2010), (1985, 1995), (2005, 2015),
        (1992, 1998), (2002, 2012), (1988, 2004), (1996, 2014), (2008, 2016),
    ),
) -> TemplateSpec:
    """Count rows in a year range via two strftime bounds
    (``date_format`` trick, doubled)."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        lo, hi = pick(rng, year_pairs)
        sql = (
            f"SELECT COUNT(*) FROM {quote_identifier(table)} "
            f"WHERE STRFTIME('%Y', {qcol(table, date_column)}) >= '{lo}' "
            f"AND STRFTIME('%Y', {qcol(table, date_column)}) <= '{hi}'"
        )
        return QuestionDraft(question=question_fmt.format(lo=lo, hi=hi), sql=sql)

    return TemplateSpec(template_id, difficulty, maker, traits=("date_format",))


def top_k_list(
    template_id: str,
    table: str,
    out_column: str,
    order_column: str,
    question_fmt: str,
    difficulty: str = "moderate",
    ks: Sequence[int] = (2, 3, 5, 8, 10),
    desc: bool = True,
) -> TemplateSpec:
    """"List the top {k} <noun> by <x>" → ORDER BY ... LIMIT k with the
    IS NOT NULL guard (style traits)."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        k = int(pick(rng, ks))
        direction = "DESC" if desc else "ASC"
        sql = (
            f"SELECT {qcol(table, out_column)} FROM {quote_identifier(table)} "
            f"WHERE {qcol(table, order_column)} IS NOT NULL "
            f"ORDER BY {qcol(table, order_column)} {direction} LIMIT {k}"
        )
        return QuestionDraft(question=question_fmt.format(k=k), sql=sql)

    return TemplateSpec(
        template_id, difficulty, maker, traits=("max_vs_limit", "nullable_min")
    )


def count_not_equal(
    template_id: str,
    table: str,
    column: str,
    question_fmt: str,
    difficulty: str = "simple",
    clean: bool = False,
) -> TemplateSpec:
    """"How many <noun> are NOT {value}?" → WHERE col <> value (dirty)."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        value = str(ctx.sample_value(table, column, rng))
        mention = _mention(value, rng, table, column, clean)
        sql = (
            f"SELECT COUNT(*) FROM {quote_identifier(table)} "
            f"WHERE {qcol(table, column)} <> '{value}'"
        )
        return QuestionDraft(
            question=question_fmt.format(value=mention.surface),
            sql=sql,
            mentions=(mention,),
        )

    return TemplateSpec(template_id, difficulty, maker, traits=())


def count_two_filters(
    template_id: str,
    table: str,
    column_a: str,
    column_b: str,
    question_fmt: str,
    difficulty: str = "moderate",
    clean: bool = False,
) -> TemplateSpec:
    """Count with a conjunction of two (potentially dirty) value filters —
    two independent value mentions stress values retrieval."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        value_a = str(ctx.sample_value(table, column_a, rng))
        value_b = str(ctx.sample_value(table, column_b, rng))
        mention_a = _mention(value_a, rng, table, column_a, clean)
        mention_b = _mention(value_b, rng, table, column_b, clean)
        sql = (
            f"SELECT COUNT(*) FROM {quote_identifier(table)} "
            f"WHERE {qcol(table, column_a)} = '{value_a}' "
            f"AND {qcol(table, column_b)} = '{value_b}'"
        )
        return QuestionDraft(
            question=question_fmt.format(
                value_a=mention_a.surface, value_b=mention_b.surface
            ),
            sql=sql,
            mentions=(mention_a, mention_b),
        )

    return TemplateSpec(template_id, difficulty, maker, traits=())


def join_avg_dirty(
    template_id: str,
    agg_table: str,
    agg_column: str,
    filter_table: str,
    filter_column: str,
    question_fmt: str,
    difficulty: str = "challenging",
    clean: bool = False,
) -> TemplateSpec:
    """Cross-table average with a dirty filter value — join + value
    retrieval in one question."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        value = str(ctx.sample_value(filter_table, filter_column, rng))
        mention = _mention(value, rng, filter_table, filter_column, clean)
        return _assembled_draft(
            ctx,
            rng,
            question_fmt.format(value=mention.surface),
            select=f"AVG({qcol(agg_table, agg_column)})",
            where=f"{qcol(filter_table, filter_column)} = '{value}'",
            mentions=(mention,),
        )

    return TemplateSpec(template_id, difficulty, maker, traits=())


def count_in_two(
    template_id: str,
    table: str,
    column: str,
    question_fmt: str,
    difficulty: str = "simple",
    clean: bool = False,
) -> TemplateSpec:
    """"How many <noun> are {a} or {b}?" → WHERE col IN (a, b) with two
    value mentions."""

    def maker(ctx: DomainContext, rng: np.random.Generator) -> Optional[QuestionDraft]:
        values = ctx.column_values(table, column)
        if len(values) < 2:
            return None
        first = str(values[int(rng.integers(len(values)))])
        second = str(values[int(rng.integers(len(values)))])
        if first == second:
            return None
        mention_a = _mention(first, rng, table, column, clean)
        mention_b = _mention(second, rng, table, column, clean)
        sql = (
            f"SELECT COUNT(*) FROM {quote_identifier(table)} "
            f"WHERE {qcol(table, column)} IN ('{first}', '{second}')"
        )
        return QuestionDraft(
            question=question_fmt.format(
                value_a=mention_a.surface, value_b=mention_b.surface
            ),
            sql=sql,
            mentions=(mention_a, mention_b),
        )

    return TemplateSpec(template_id, difficulty, maker, traits=())
