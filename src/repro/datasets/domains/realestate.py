"""Real-estate domain — agents, listings and sales."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="realestate",
    description="A property brokerage: agents, listings and closed sales.",
    tables=(
        Table(
            name="Agent",
            description="Licensed agents.",
            columns=(
                Column("AgentID", "INTEGER", "agent id", is_primary=True),
                Column("Name", "TEXT", "agent name, stored upper-case"),
                Column("Office", "TEXT", "home office",
                       value_examples=("DOWNTOWN BRANCH", "HARBOR OFFICE", "WESTSIDE DESK")),
                Column("Licensed", "DATE", "license date"),
            ),
        ),
        Table(
            name="Listing",
            description="Properties on the market.",
            columns=(
                Column("ListingID", "INTEGER", "listing id", is_primary=True),
                Column("AgentID", "INTEGER", "listing agent"),
                Column("Neighborhood", "TEXT", "neighborhood"),
                Column("PropertyType", "TEXT", "property type",
                       value_examples=("SINGLE FAMILY", "CONDO", "TOWNHOUSE", "DUPLEX")),
                Column("Listed", "DATE", "listing date"),
                Column("AskingPrice", "REAL", "asking price"),
                Column("SquareMeters", "REAL", "living area (nullable: unverified)"),
            ),
        ),
        Table(
            name="Sale",
            description="Closed transactions.",
            columns=(
                Column("SaleID", "INTEGER", "sale id", is_primary=True),
                Column("ListingID", "INTEGER", "sold listing"),
                Column("Closed", "DATE", "closing date"),
                Column("SalePrice", "REAL", "final sale price"),
                Column("DaysOnMarket", "INTEGER", "days between listing and close"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Listing", "AgentID", "Agent", "AgentID"),
        ForeignKey("Sale", "ListingID", "Listing", "ListingID"),
    ),
)

_OFFICES = ("DOWNTOWN BRANCH", "HARBOR OFFICE", "WESTSIDE DESK", "NORTH GATE")
_HOODS = ("ORCHARD HILLS", "RIVER BEND", "OLD QUARTER", "MEADOWBROOK", "STATION ROW")
_TYPES = ("SINGLE FAMILY", "CONDO", "TOWNHOUSE", "DUPLEX")


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    names = common.person_names(rng, 90)
    licensed = common.random_dates(rng, 90, 1995, 2022)
    agents = [
        (aid, names[aid - 1], common.pick(rng, _OFFICES), licensed[aid - 1])
        for aid in range(1, 91)
    ]
    listings = []
    listed = common.random_dates(rng, 700, 2015, 2023)
    lid = 1
    for aid in range(1, 91):
        for _ in range(int(rng.integers(2, 9))):
            listings.append(
                (lid, aid, common.pick(rng, _HOODS), common.pick(rng, _TYPES),
                 listed[lid % len(listed)],
                 round(float(rng.uniform(120_000, 2_400_000)), 0),
                 round(float(rng.uniform(35, 420)), 1) if rng.random() < 0.86 else None)
            )
            lid += 1
    sales = []
    closed = common.random_dates(rng, 700, 2016, 2023)
    sid = 1
    for listing in listings:
        if rng.random() < 0.6:
            sales.append(
                (sid, listing[0], closed[sid % len(closed)],
                 round(listing[5] * float(rng.uniform(0.85, 1.12)), 0),
                 int(rng.integers(3, 220)))
            )
            sid += 1
    return {"Agent": agents, "Listing": listings, "Sale": sales}


TEMPLATES = (
    common.count_where_dirty(
        "count_type", "Listing", "PropertyType",
        "How many listings are {value} properties?",
    ),
    common.list_where_dirty(
        "agents_in_office", "Agent", "Name", "Office",
        "List the names of agents based at the {value}.",
    ),
    common.numeric_agg_where(
        "avg_price_hood", "Listing", "AVG", "AskingPrice", "Neighborhood",
        "What is the average asking price in {value}?",
    ),
    common.count_join_distinct(
        "agents_selling_type", "Agent", "AgentID", "Listing", "PropertyType",
        "How many different agents have listed a {value}?",
    ),
    common.date_year_count(
        "licensed_since", "Agent", "Licensed",
        "How many agents were licensed in {year} or {direction}?",
        year_pool=(1998, 2001, 2004, 2007, 2010, 2013, 2016, 2019),
    ),
    common.superlative_nullable(
        "largest_home", "Listing", "ListingID", "SquareMeters",
        "Which {value} listing has the largest living area?",
        filter_column="PropertyType",
    ),
    common.min_nullable(
        "smallest_home", "Listing", "ListingID", "SquareMeters",
        "Which {value} listing has the smallest verified living area?",
        filter_column="PropertyType",
    ),
    common.group_top(
        "busiest_hood", "Listing", "Neighborhood",
        "Which neighborhood has the {rank}most listings?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.evidence_formula_count(
        "luxury_listings", "Listing", "AskingPrice", "a luxury listing",
        1_200_000, 2_400_000,
        "How many listings qualify as {term}?",
    ),
    common.multi_select_where(
        "hood_and_price", "Listing", ("Neighborhood", "AskingPrice"),
        "PropertyType",
        "Show the neighborhood and asking price of every {value} listing.",
    ),
    common.join_list_dirty(
        "offices_selling_type", "Agent", "Office", "Listing", "PropertyType",
        "List the distinct offices whose agents listed a {value}.",
    ),
    common.join_superlative_dirty(
        "fastest_sale_by_type", "Sale", "SaleID", "Listing", "PropertyType",
        "Sale", "DaysOnMarket",
        "Among {value} sales, which closed fastest?",
        desc=False,
    ),
    common.group_having_count(
        "hot_neighborhoods", "Listing", "Neighborhood",
        "Which neighborhoods have at least {n} listings?",
        thresholds=(70, 85, 100, 115),
    ),
    common.date_between_count(
        "closed_between", "Sale", "Closed",
        "How many sales closed between {lo} and {hi}?",
        year_pairs=((2016, 2018), (2017, 2019), (2018, 2020), (2019, 2021),
                    (2020, 2022), (2016, 2020), (2017, 2021), (2018, 2022),
                    (2016, 2019), (2019, 2023)),
    ),
    common.top_k_list(
        "biggest_homes", "Listing", "ListingID", "SquareMeters",
        "List the {k} largest listings by living area.",
    ),
    common.count_not_equal(
        "not_type", "Listing", "PropertyType",
        "How many listings are not {value} properties?",
    ),
    common.join_avg_dirty(
        "avg_days_by_type", "Sale", "DaysOnMarket", "Listing", "PropertyType",
        "What is the average days-on-market for {value} sales?",
    ),
)

DOMAIN = DomainSpec(
    name="realestate",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
